#!/usr/bin/env python3
"""Diff freshly recorded BENCH_*.json files against the committed baselines.

Usage: bench_diff.py <baseline_dir> <current_dir> [--fail-ratio 2.0] [--warn-ratio 1.3]

The recorder (`cargo run --release -p ava-bench --bin bench_baseline`) emits
one BENCH_<suite>.json per suite; this script compares the noise-resistant
`min_ns` of every benchmark against the committed baseline. CI runners are
noisy and differ from the machines baselines were recorded on, so the gate
is deliberately generous: only a >2x `min_ns` slowdown fails, anything above
the warn ratio is reported but does not fail the job. `mean_ns` is also
compared at the warn ratio (warn-only, never failing): a drifting mean with
a stable min usually means new allocation or cache pressure on the hot path
rather than an algorithmic regression. A benchmark present in the
baseline but missing from the fresh run fails (coverage must not silently
shrink); new benchmarks are reported as candidates for re-baselining.
"""

import argparse
import json
import pathlib
import sys


def load_suite(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "ava-bench-baseline/v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {b["name"]: b for b in doc["benchmarks"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir", type=pathlib.Path)
    ap.add_argument("current_dir", type=pathlib.Path)
    ap.add_argument("--fail-ratio", type=float, default=2.0,
                    help="fail when current min_ns exceeds baseline by this factor")
    ap.add_argument("--warn-ratio", type=float, default=1.3,
                    help="warn (but pass) above this factor")
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        sys.exit(f"no BENCH_*.json baselines found in {args.baseline_dir}")

    failures, warnings, notes = [], [], []
    for base_path in baselines:
        cur_path = args.current_dir / base_path.name
        if not cur_path.exists():
            failures.append(f"{base_path.name}: suite was not recorded in {args.current_dir}")
            continue
        base, cur = load_suite(base_path), load_suite(cur_path)
        for name, b in base.items():
            c = cur.get(name)
            if c is None:
                failures.append(f"{name}: benchmark disappeared from the fresh run")
                continue
            ratio = c["min_ns"] / max(b["min_ns"], 1e-9)
            line = (f"{name}: {b['min_ns']:.0f} ns -> {c['min_ns']:.0f} ns "
                    f"({ratio:.2f}x)")
            if ratio > args.fail_ratio:
                failures.append(line)
            elif ratio > args.warn_ratio:
                warnings.append(line)
            mean_ratio = c["mean_ns"] / max(b["mean_ns"], 1e-9)
            if mean_ratio > args.warn_ratio:
                warnings.append(
                    f"{name}: mean {b['mean_ns']:.0f} ns -> {c['mean_ns']:.0f} ns "
                    f"({mean_ratio:.2f}x mean-only; not gated)")
        for name in sorted(set(cur) - set(base)):
            notes.append(f"{name}: new benchmark (not in baseline; consider re-recording)")
    for cur_path in sorted(args.current_dir.glob("BENCH_*.json")):
        if not (args.baseline_dir / cur_path.name).exists():
            notes.append(f"{cur_path.name}: new suite with no committed baseline "
                         f"(not gated; commit it to {args.baseline_dir})")

    for prefix, lines in (("NOTE", notes), ("WARN", warnings), ("FAIL", failures)):
        for line in lines:
            print(f"{prefix}  {line}")
    total = sum(len(load_suite(p)) for p in baselines)
    print(f"compared {total} benchmarks across {len(baselines)} suites: "
          f"{len(failures)} failures, {len(warnings)} warnings")
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main()
