//! # ava-isa — vector ISA substrate for the AVA reproduction
//!
//! This crate defines the RISC-V-V-flavoured vector instruction set used by
//! every other crate in the workspace: logical vector registers, element
//! types, the vector instruction structure (memory, arithmetic, reduction,
//! mask and configuration operations), vector-length / LMUL configuration,
//! and the [`Program`] container that the code generator produces and the
//! simulator consumes.
//!
//! The ISA is deliberately *vector-length agnostic* (VLA): programs describe
//! operations on whole application vectors, the `vsetvl`-style
//! [`VectorContext`] decides how many elements each dynamic instruction
//! processes, and the microarchitecture (see `ava-vpu`) decides how the
//! register file backing those elements is organised.
//!
//! One element is always a 64-bit word (`f64` or `i64`), matching footnote 2
//! of the paper: the baseline MVL of 16 elements is a 1024-bit register and
//! the largest MVL of 128 elements is an 8192-bit register.
//!
//! ```
//! use ava_isa::{Program, VReg, VecInstr, VectorContext};
//!
//! let ctx = VectorContext::with_mvl(16);
//! let mut prog = Program::new("axpy-ish");
//! prog.push(VecInstr::vload(VReg::new(1), 0x1000));
//! prog.push(VecInstr::vload(VReg::new(2), 0x2000));
//! prog.push(VecInstr::vfmacc(VReg::new(2), 2.0, VReg::new(1)));
//! prog.push(VecInstr::vstore(VReg::new(2), 0x2000));
//! assert_eq!(prog.len(), 4);
//! assert_eq!(ctx.mvl(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod instr;
pub mod opcode;
pub mod program;
pub mod reg;
pub mod value;

pub use config::{
    Lmul, VectorContext, MAX_MVL_ELEMS, MIN_MVL_ELEMS, NUM_LOGICAL_VREGS, PAPER_MAX_MVL_ELEMS,
};
pub use instr::{InstrRole, MemAccess, Operand, VecInstr, VlMode};
pub use opcode::{ExecClass, InstrKind, Opcode};
pub use program::{Program, ProgramStats};
pub use reg::VReg;
pub use value::Element;
