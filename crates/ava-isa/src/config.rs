//! Vector-length and register-grouping configuration.
//!
//! [`VectorContext`] models the `vsetvl`-style dynamic state of a vector
//! machine: the hardware maximum vector length (MVL), the currently
//! requested application vector length (VL) and the RISC-V register-grouping
//! factor (LMUL). The AVA microarchitecture reconfigures the MVL in hardware
//! (Table I of the paper), whereas the RG baseline reaches longer effective
//! vectors by raising LMUL at the cost of architectural registers.

/// Number of architectural (logical) vector registers defined by the ISA.
pub const NUM_LOGICAL_VREGS: usize = 32;

/// Smallest supported maximum vector length, in 64-bit elements (the
/// paper's baseline short-vector design: 16 elements = 1024 bits).
pub const MIN_MVL_ELEMS: usize = 16;

/// Largest maximum vector length the paper evaluates, in 64-bit elements
/// (128 elements = 8192 bits, the long-vector configuration of Table I).
pub const PAPER_MAX_MVL_ELEMS: usize = 128;

/// Largest supported maximum vector length, in 64-bit elements. The paper
/// stops at [`PAPER_MAX_MVL_ELEMS`]; the simulator extrapolates Table I up
/// to 512 elements (32 Kbit registers) for the MVL-sensitivity studies.
pub const MAX_MVL_ELEMS: usize = 512;

/// RISC-V V-extension register grouping factor (LMUL).
///
/// Grouping multiplies the effective register width by the factor while
/// dividing the number of *architectural* registers available to the
/// compiler by the same factor (32, 16, 8, 4 registers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lmul {
    /// No grouping: 32 architectural registers.
    #[default]
    M1,
    /// Pairs of registers: 16 architectural registers.
    M2,
    /// Groups of four: 8 architectural registers.
    M4,
    /// Groups of eight: 4 architectural registers.
    M8,
}

impl Lmul {
    /// The grouping factor as an integer (1, 2, 4 or 8).
    #[must_use]
    pub fn factor(self) -> usize {
        match self {
            Lmul::M1 => 1,
            Lmul::M2 => 2,
            Lmul::M4 => 4,
            Lmul::M8 => 8,
        }
    }

    /// Number of architectural registers the compiler may use under this
    /// grouping factor (`32 / factor`).
    #[must_use]
    pub fn architectural_registers(self) -> usize {
        NUM_LOGICAL_VREGS / self.factor()
    }

    /// Builds an `Lmul` from its integer factor.
    #[must_use]
    pub fn from_factor(factor: usize) -> Option<Self> {
        match factor {
            1 => Some(Lmul::M1),
            2 => Some(Lmul::M2),
            4 => Some(Lmul::M4),
            8 => Some(Lmul::M8),
            _ => None,
        }
    }

    /// All supported grouping factors in ascending order.
    #[must_use]
    pub fn all() -> [Lmul; 4] {
        [Lmul::M1, Lmul::M2, Lmul::M4, Lmul::M8]
    }
}

impl std::fmt::Display for Lmul {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LMUL{}", self.factor())
    }
}

/// Dynamic vector-machine state: maximum vector length, requested vector
/// length and register grouping.
///
/// ```
/// use ava_isa::{VectorContext, Lmul};
/// let mut ctx = VectorContext::with_mvl(64);
/// assert_eq!(ctx.set_vl(1000), 64);    // clamped to MVL
/// assert_eq!(ctx.set_vl(10), 10);
/// ctx.set_lmul(Lmul::M4);
/// assert_eq!(ctx.effective_mvl(), 256); // grouping widens the register
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorContext {
    mvl: usize,
    vl: usize,
    lmul: Lmul,
}

impl VectorContext {
    /// Creates a context for a machine whose registers hold `mvl` 64-bit
    /// elements each, with VL initialised to MVL and LMUL=1.
    ///
    /// # Panics
    ///
    /// Panics if `mvl` is outside `16..=512` or not a multiple of 16 (the
    /// granularity supported by the AVA physical register file; Table I
    /// covers 16..=128, the rest is the simulator's extrapolation range).
    #[must_use]
    pub fn with_mvl(mvl: usize) -> Self {
        assert!(
            (MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&mvl) && mvl.is_multiple_of(MIN_MVL_ELEMS),
            "MVL must be a multiple of 16 in 16..=512, got {mvl}"
        );
        Self {
            mvl,
            vl: mvl,
            lmul: Lmul::M1,
        }
    }

    /// The hardware maximum vector length in elements, ignoring grouping.
    #[must_use]
    pub fn mvl(&self) -> usize {
        self.mvl
    }

    /// The maximum number of elements a single instruction may process under
    /// the current grouping factor (`mvl * lmul`).
    #[must_use]
    pub fn effective_mvl(&self) -> usize {
        self.mvl * self.lmul.factor()
    }

    /// Currently requested vector length (elements per instruction).
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Current register grouping factor.
    #[must_use]
    pub fn lmul(&self) -> Lmul {
        self.lmul
    }

    /// Sets the register grouping factor, clamping VL to the new effective
    /// maximum.
    pub fn set_lmul(&mut self, lmul: Lmul) {
        self.lmul = lmul;
        self.vl = self.vl.min(self.effective_mvl());
    }

    /// Requests `requested` elements, returning the granted VL
    /// (`min(requested, effective_mvl)`), exactly like `vsetvl`.
    pub fn set_vl(&mut self, requested: usize) -> usize {
        self.vl = requested.min(self.effective_mvl());
        self.vl
    }

    /// Number of whole strips needed to process `n` application elements:
    /// `ceil(n / effective_mvl)`. This is the trip count of a stripmined loop.
    #[must_use]
    pub fn strips_for(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            n.div_ceil(self.effective_mvl())
        }
    }
}

impl Default for VectorContext {
    fn default() -> Self {
        Self::with_mvl(MIN_MVL_ELEMS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lmul_factors_and_register_budgets() {
        assert_eq!(Lmul::M1.architectural_registers(), 32);
        assert_eq!(Lmul::M2.architectural_registers(), 16);
        assert_eq!(Lmul::M4.architectural_registers(), 8);
        assert_eq!(Lmul::M8.architectural_registers(), 4);
    }

    #[test]
    fn lmul_from_factor_roundtrips() {
        for l in Lmul::all() {
            assert_eq!(Lmul::from_factor(l.factor()), Some(l));
        }
        assert_eq!(Lmul::from_factor(3), None);
        assert_eq!(Lmul::from_factor(16), None);
    }

    #[test]
    fn context_accepts_table1_mvls() {
        for mvl in [16, 32, 48, 64, 80, 96, 112, 128] {
            let ctx = VectorContext::with_mvl(mvl);
            assert_eq!(ctx.mvl(), mvl);
            assert_eq!(ctx.vl(), mvl);
        }
    }

    #[test]
    fn context_accepts_the_extrapolation_range() {
        for mvl in [192, 256, 384, 512] {
            let ctx = VectorContext::with_mvl(mvl);
            assert_eq!(ctx.mvl(), mvl);
            assert_eq!(ctx.vl(), mvl);
        }
        const { assert!(PAPER_MAX_MVL_ELEMS < MAX_MVL_ELEMS) };
    }

    #[test]
    #[should_panic(expected = "MVL must be")]
    fn context_rejects_non_multiple() {
        let _ = VectorContext::with_mvl(40);
    }

    #[test]
    #[should_panic(expected = "MVL must be")]
    fn context_rejects_too_large() {
        let _ = VectorContext::with_mvl(1024);
    }

    #[test]
    fn set_vl_clamps_to_effective_mvl() {
        let mut ctx = VectorContext::with_mvl(16);
        assert_eq!(ctx.set_vl(100), 16);
        ctx.set_lmul(Lmul::M8);
        assert_eq!(ctx.set_vl(100), 100);
        assert_eq!(ctx.set_vl(1000), 128);
    }

    #[test]
    fn set_lmul_shrinks_vl_if_needed() {
        let mut ctx = VectorContext::with_mvl(16);
        ctx.set_lmul(Lmul::M8);
        ctx.set_vl(128);
        ctx.set_lmul(Lmul::M1);
        assert_eq!(ctx.vl(), 16);
    }

    #[test]
    fn strips_for_is_ceiling_division() {
        let ctx = VectorContext::with_mvl(16);
        assert_eq!(ctx.strips_for(0), 0);
        assert_eq!(ctx.strips_for(1), 1);
        assert_eq!(ctx.strips_for(16), 1);
        assert_eq!(ctx.strips_for(17), 2);
        assert_eq!(ctx.strips_for(160), 10);
    }

    #[test]
    fn default_is_short_vector_baseline() {
        let ctx = VectorContext::default();
        assert_eq!(ctx.mvl(), 16);
        assert_eq!(ctx.lmul(), Lmul::M1);
    }
}
