//! Vector programs: ordered dynamic instruction sequences plus static
//! statistics about them.

use crate::instr::{InstrRole, VecInstr};
use crate::opcode::InstrKind;
use crate::reg::VReg;

/// Static statistics over a [`Program`], used both by tests and by the
/// Figure 3 instruction-mix charts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Vector arithmetic instructions (everything issued to the arithmetic queue).
    pub arithmetic: usize,
    /// Ordinary vector loads (excluding spill reloads).
    pub loads: usize,
    /// Ordinary vector stores (excluding spill stores).
    pub stores: usize,
    /// Compiler-generated spill reloads.
    pub spill_loads: usize,
    /// Compiler-generated spill stores.
    pub spill_stores: usize,
    /// `vsetvl` configuration instructions.
    pub config: usize,
}

impl ProgramStats {
    /// Total vector memory instructions (loads + stores + spills).
    #[must_use]
    pub fn memory(&self) -> usize {
        self.loads + self.stores + self.spill_loads + self.spill_stores
    }

    /// Total instructions that occupy issue-queue slots
    /// (arithmetic + memory, excluding `vsetvl`).
    #[must_use]
    pub fn issued(&self) -> usize {
        self.arithmetic + self.memory()
    }

    /// Fraction of issued instructions that are memory operations.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.issued() == 0 {
            0.0
        } else {
            self.memory() as f64 / self.issued() as f64
        }
    }
}

/// An ordered sequence of dynamic vector instructions, as handed to the
/// decoupled VPU by the scalar core.
///
/// ```
/// use ava_isa::{Program, VecInstr, VReg};
/// let mut p = Program::new("demo");
/// p.push(VecInstr::setvl(16));
/// p.push(VecInstr::vload(VReg::new(1), 0));
/// p.push(VecInstr::vstore(VReg::new(1), 0x100));
/// let s = p.stats();
/// assert_eq!(s.loads, 1);
/// assert_eq!(s.stores, 1);
/// assert_eq!(s.config, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    name: String,
    instrs: Vec<VecInstr>,
}

impl Program {
    /// Creates an empty program with a human-readable name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instrs: Vec::new(),
        }
    }

    /// The program's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: VecInstr) {
        self.instrs.push(instr);
    }

    /// Appends every instruction from `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = VecInstr>) {
        self.instrs.extend(iter);
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterator over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, VecInstr> {
        self.instrs.iter()
    }

    /// The instructions as a slice.
    #[must_use]
    pub fn instructions(&self) -> &[VecInstr] {
        &self.instrs
    }

    /// Computes static instruction-mix statistics.
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats::default();
        for i in &self.instrs {
            match i.kind() {
                InstrKind::Config => s.config += 1,
                InstrKind::Arithmetic => s.arithmetic += 1,
                InstrKind::Memory => match (i.opcode.is_load(), i.role) {
                    (true, InstrRole::SpillLoad) => s.spill_loads += 1,
                    (false, InstrRole::SpillStore) => s.spill_stores += 1,
                    (true, _) => s.loads += 1,
                    (false, _) => s.stores += 1,
                },
            }
        }
        s
    }

    /// The set of distinct logical registers referenced (read or written) by
    /// the program — the register pressure the compiler had to fit into the
    /// architectural register budget.
    #[must_use]
    pub fn used_registers(&self) -> Vec<VReg> {
        let mut seen = [false; crate::NUM_LOGICAL_VREGS];
        for i in &self.instrs {
            if let Some(d) = i.dst {
                seen[d.index()] = true;
            }
            for r in i.source_regs() {
                seen[r.index()] = true;
            }
        }
        (0..crate::NUM_LOGICAL_VREGS as u8)
            .filter(|&i| seen[i as usize])
            .map(VReg::new)
            .collect()
    }
}

impl FromIterator<VecInstr> for Program {
    fn from_iter<T: IntoIterator<Item = VecInstr>>(iter: T) -> Self {
        let mut p = Program::new("anonymous");
        p.extend(iter);
        p
    }
}

impl Extend<VecInstr> for Program {
    fn extend<T: IntoIterator<Item = VecInstr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a VecInstr;
    type IntoIter = std::slice::Iter<'a, VecInstr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl IntoIterator for Program {
    type Item = VecInstr;
    type IntoIter = std::vec::IntoIter<VecInstr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrRole;
    use crate::opcode::Opcode;

    fn sample() -> Program {
        let mut p = Program::new("sample");
        p.push(VecInstr::setvl(16));
        p.push(VecInstr::vload(VReg::new(1), 0x0));
        p.push(VecInstr::vload(VReg::new(2), 0x100));
        p.push(VecInstr::binary(
            Opcode::VFAdd,
            VReg::new(3),
            VReg::new(1),
            VReg::new(2),
        ));
        p.push(VecInstr::vstore(VReg::new(3), 0x200));
        p.push(
            VecInstr::vstore(VReg::new(3), 0x8000)
                .with_full_mvl()
                .with_role(InstrRole::SpillStore),
        );
        p.push(
            VecInstr::vload(VReg::new(3), 0x8000)
                .with_full_mvl()
                .with_role(InstrRole::SpillLoad),
        );
        p
    }

    #[test]
    fn stats_classify_each_category() {
        let s = sample().stats();
        assert_eq!(s.config, 1);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.spill_loads, 1);
        assert_eq!(s.spill_stores, 1);
        assert_eq!(s.arithmetic, 1);
        assert_eq!(s.memory(), 5);
        assert_eq!(s.issued(), 6);
    }

    #[test]
    fn memory_fraction_matches_hand_count() {
        let s = sample().stats();
        assert!((s.memory_fraction() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(ProgramStats::default().memory_fraction(), 0.0);
    }

    #[test]
    fn used_registers_deduplicates_and_sorts() {
        let p = sample();
        assert_eq!(
            p.used_registers(),
            vec![VReg::new(1), VReg::new(2), VReg::new(3)]
        );
    }

    #[test]
    fn from_iterator_and_extend_agree() {
        let instrs = vec![
            VecInstr::vload(VReg::new(1), 0),
            VecInstr::vstore(VReg::new(1), 8),
        ];
        let a: Program = instrs.clone().into_iter().collect();
        let mut b = Program::new("anonymous");
        b.extend(instrs);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn iteration_preserves_program_order() {
        let p = sample();
        let ops: Vec<_> = p.iter().map(|i| i.opcode).collect();
        assert_eq!(ops[0], Opcode::SetVl);
        assert_eq!(ops[4], Opcode::VStore);
    }
}
