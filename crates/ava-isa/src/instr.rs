//! Vector instruction representation.
//!
//! A [`VecInstr`] is one dynamic vector instruction as seen by the decoupled
//! VPU: an opcode, an optional destination register, up to three source
//! operands (registers or scalar immediates), and — for memory operations —
//! an address descriptor. Programs are sequences of these instructions (see
//! [`crate::Program`]).

use std::fmt;

use crate::opcode::{InstrKind, Opcode};
use crate::reg::VReg;
use crate::value::Element;

/// A source operand: either a logical vector register or a scalar value
/// broadcast to every element (the `.vf` / `.vx` instruction forms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A logical vector register.
    Reg(VReg),
    /// A scalar immediate broadcast across the vector.
    Scalar(Element),
}

impl Operand {
    /// The register, if this operand is a register.
    #[must_use]
    pub fn reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Scalar(_) => None,
        }
    }

    /// Convenience constructor for a floating-point scalar operand.
    #[must_use]
    pub fn scalar_f64(v: f64) -> Self {
        Operand::Scalar(Element::from_f64(v))
    }

    /// Convenience constructor for an integer scalar operand.
    #[must_use]
    pub fn scalar_i64(v: i64) -> Self {
        Operand::Scalar(Element::from_i64(v))
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Scalar(e) => write!(f, "#{}", e.as_f64()),
        }
    }
}

/// Address descriptor for vector memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Base byte address of element 0.
    pub base: u64,
    /// Stride in bytes between consecutive elements (8 for unit stride).
    pub stride: i64,
    /// For indexed (gather/scatter) accesses, the register holding the
    /// per-element indices; addresses are `base + 8 * index[i]`.
    pub index_reg: Option<VReg>,
}

impl MemAccess {
    /// Unit-stride access starting at `base`.
    #[must_use]
    pub fn unit(base: u64) -> Self {
        Self {
            base,
            stride: 8,
            index_reg: None,
        }
    }

    /// Strided access with `stride` bytes between elements.
    #[must_use]
    pub fn strided(base: u64, stride: i64) -> Self {
        Self {
            base,
            stride,
            index_reg: None,
        }
    }

    /// Indexed access where `index_reg` holds 64-bit element indices.
    #[must_use]
    pub fn indexed(base: u64, index_reg: VReg) -> Self {
        Self {
            base,
            stride: 8,
            index_reg: Some(index_reg),
        }
    }
}

/// Which vector length a dynamic instruction executes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VlMode {
    /// Use the vector length currently configured by the last `vsetvl`.
    #[default]
    Current,
    /// Force the full maximum vector length. The compiler emits spill code
    /// this way because it cannot know the application vector length
    /// (paper §II.A); the microarchitecture's swap operations behave the
    /// same way.
    FullMvl,
}

/// Provenance of an instruction: the statistics in Figure 3 distinguish
/// ordinary vector memory operations from compiler-generated spill code (the
/// swap operations generated inside the AVA pipeline are counted separately
/// by the VPU itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrRole {
    /// Ordinary application instruction.
    #[default]
    Normal,
    /// Compiler-inserted reload of a spilled logical register.
    SpillLoad,
    /// Compiler-inserted spill of a logical register to the stack.
    SpillStore,
}

/// One dynamic vector instruction.
///
/// Construct instructions through the provided constructors
/// ([`VecInstr::vload`], [`VecInstr::binary`], [`VecInstr::vfmacc`], ...)
/// rather than by filling fields, so operand-count invariants hold.
///
/// ```
/// use ava_isa::{VecInstr, VReg, Opcode};
/// let i = VecInstr::binary(Opcode::VFAdd, VReg::new(6), VReg::new(5), VReg::new(4));
/// assert_eq!(i.dst, Some(VReg::new(6)));
/// assert_eq!(i.source_regs().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VecInstr {
    /// The operation.
    pub opcode: Opcode,
    /// Destination logical register (absent for stores and `vsetvl`).
    pub dst: Option<VReg>,
    /// Source operands in operand order.
    pub srcs: Vec<Operand>,
    /// Address descriptor for memory operations.
    pub mem: Option<MemAccess>,
    /// Vector length selection for this instruction.
    pub vl_mode: VlMode,
    /// Requested application vector length for `vsetvl`.
    pub setvl_request: Option<usize>,
    /// Provenance (normal vs compiler spill code).
    pub role: InstrRole,
}

impl VecInstr {
    fn base(opcode: Opcode, dst: Option<VReg>, srcs: Vec<Operand>) -> Self {
        Self {
            opcode,
            dst,
            srcs,
            mem: None,
            vl_mode: VlMode::Current,
            setvl_request: None,
            role: InstrRole::Normal,
        }
    }

    /// `vsetvl`: request `avl` elements for subsequent instructions.
    #[must_use]
    pub fn setvl(avl: usize) -> Self {
        let mut i = Self::base(Opcode::SetVl, None, vec![]);
        i.setvl_request = Some(avl);
        i
    }

    /// Unit-stride vector load into `dst` from `base`.
    #[must_use]
    pub fn vload(dst: VReg, base: u64) -> Self {
        let mut i = Self::base(Opcode::VLoad, Some(dst), vec![]);
        i.mem = Some(MemAccess::unit(base));
        i
    }

    /// Unit-stride vector store of `src` to `base`.
    #[must_use]
    pub fn vstore(src: VReg, base: u64) -> Self {
        let mut i = Self::base(Opcode::VStore, None, vec![Operand::Reg(src)]);
        i.mem = Some(MemAccess::unit(base));
        i
    }

    /// Strided vector load.
    #[must_use]
    pub fn vload_strided(dst: VReg, base: u64, stride: i64) -> Self {
        let mut i = Self::base(Opcode::VLoadStrided, Some(dst), vec![]);
        i.mem = Some(MemAccess::strided(base, stride));
        i
    }

    /// Strided vector store.
    #[must_use]
    pub fn vstore_strided(src: VReg, base: u64, stride: i64) -> Self {
        let mut i = Self::base(Opcode::VStoreStrided, None, vec![Operand::Reg(src)]);
        i.mem = Some(MemAccess::strided(base, stride));
        i
    }

    /// Indexed gather: `dst[i] = mem[base + 8 * idx[i]]`.
    #[must_use]
    pub fn vload_indexed(dst: VReg, base: u64, idx: VReg) -> Self {
        let mut i = Self::base(Opcode::VLoadIndexed, Some(dst), vec![Operand::Reg(idx)]);
        i.mem = Some(MemAccess::indexed(base, idx));
        i
    }

    /// Indexed scatter: `mem[base + 8 * idx[i]] = src[i]`.
    #[must_use]
    pub fn vstore_indexed(src: VReg, base: u64, idx: VReg) -> Self {
        let mut i = Self::base(
            Opcode::VStoreIndexed,
            None,
            vec![Operand::Reg(src), Operand::Reg(idx)],
        );
        i.mem = Some(MemAccess::indexed(base, idx));
        i
    }

    /// Generic two-source arithmetic instruction `dst = src0 op src1`.
    #[must_use]
    pub fn binary(
        opcode: Opcode,
        dst: VReg,
        src0: impl Into<Operand>,
        src1: impl Into<Operand>,
    ) -> Self {
        Self::base(opcode, Some(dst), vec![src0.into(), src1.into()])
    }

    /// Generic one-source arithmetic instruction `dst = op src`.
    #[must_use]
    pub fn unary(opcode: Opcode, dst: VReg, src: impl Into<Operand>) -> Self {
        Self::base(opcode, Some(dst), vec![src.into()])
    }

    /// Fused multiply-add with a scalar multiplier: `dst += scalar * src`
    /// (the `vfmacc.vf` form used by Axpy).
    #[must_use]
    pub fn vfmacc(dst: VReg, scalar: f64, src: VReg) -> Self {
        Self::base(
            Opcode::VFMacc,
            Some(dst),
            vec![
                Operand::scalar_f64(scalar),
                Operand::Reg(src),
                Operand::Reg(dst),
            ],
        )
    }

    /// Fused multiply-add with three register operands:
    /// `dst = src0 * src1 + acc` where `acc` is the old destination value.
    #[must_use]
    pub fn vfmacc_vv(dst: VReg, src0: VReg, src1: VReg) -> Self {
        Self::base(
            Opcode::VFMacc,
            Some(dst),
            vec![Operand::Reg(src0), Operand::Reg(src1), Operand::Reg(dst)],
        )
    }

    /// Merge/select: `dst[i] = mask[i] ? on_true[i] : on_false[i]`.
    #[must_use]
    pub fn vmerge(
        dst: VReg,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
        mask: VReg,
    ) -> Self {
        Self::base(
            Opcode::VMerge,
            Some(dst),
            vec![on_true.into(), on_false.into(), Operand::Reg(mask)],
        )
    }

    /// Broadcast a scalar to every element of `dst`.
    #[must_use]
    pub fn vsplat(dst: VReg, value: f64) -> Self {
        Self::base(
            Opcode::VMvSplat,
            Some(dst),
            vec![Operand::scalar_f64(value)],
        )
    }

    /// Vector-register copy.
    #[must_use]
    pub fn vmv(dst: VReg, src: VReg) -> Self {
        Self::base(Opcode::VMv, Some(dst), vec![Operand::Reg(src)])
    }

    /// Index vector: `dst[i] = i`.
    #[must_use]
    pub fn vid(dst: VReg) -> Self {
        Self::base(Opcode::VId, Some(dst), vec![])
    }

    /// Sum reduction of `src` (+ scalar seed) into element 0 of `dst`.
    #[must_use]
    pub fn vfredsum(dst: VReg, src: VReg) -> Self {
        Self::base(Opcode::VFRedSum, Some(dst), vec![Operand::Reg(src)])
    }

    /// Marks this instruction as running at full MVL regardless of the
    /// current vector length (spill and swap semantics). Returns `self` for
    /// chaining.
    #[must_use]
    pub fn with_full_mvl(mut self) -> Self {
        self.vl_mode = VlMode::FullMvl;
        self
    }

    /// Tags the instruction with a spill role. Returns `self` for chaining.
    #[must_use]
    pub fn with_role(mut self, role: InstrRole) -> Self {
        self.role = role;
        self
    }

    /// The queue/kind classification of this instruction.
    #[must_use]
    pub fn kind(&self) -> InstrKind {
        self.opcode.kind()
    }

    /// Iterator over the logical registers read by this instruction
    /// (register sources plus the index register of indexed accesses).
    pub fn source_regs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.srcs.iter().filter_map(Operand::reg)
    }

    /// True if the instruction writes a register destination.
    #[must_use]
    pub fn has_dst(&self) -> bool {
        self.dst.is_some()
    }

    /// True if this instruction is compiler-generated spill code.
    #[must_use]
    pub fn is_spill(&self) -> bool {
        matches!(self.role, InstrRole::SpillLoad | InstrRole::SpillStore)
    }
}

impl fmt::Display for VecInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in &self.srcs {
            write!(f, ", {s}")?;
        }
        if let Some(m) = &self.mem {
            write!(f, " @{:#x}", m.base)?;
            if m.stride != 8 {
                write!(f, " stride={}", m.stride)?;
            }
        }
        if let Some(avl) = self.setvl_request {
            write!(f, " avl={avl}")?;
        }
        if self.is_spill() {
            write!(f, " ; spill")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_have_dst_and_mem_but_no_reg_sources() {
        let i = VecInstr::vload(VReg::new(4), 0x1000);
        assert!(i.has_dst());
        assert!(i.mem.is_some());
        assert_eq!(i.source_regs().count(), 0);
        assert_eq!(i.kind(), InstrKind::Memory);
    }

    #[test]
    fn stores_have_no_dst_but_read_the_data_register() {
        let i = VecInstr::vstore(VReg::new(4), 0x1000);
        assert!(!i.has_dst());
        assert_eq!(i.source_regs().collect::<Vec<_>>(), vec![VReg::new(4)]);
    }

    #[test]
    fn indexed_access_reads_the_index_register() {
        let i = VecInstr::vload_indexed(VReg::new(1), 0x0, VReg::new(9));
        assert_eq!(i.source_regs().collect::<Vec<_>>(), vec![VReg::new(9)]);
        assert_eq!(i.mem.unwrap().index_reg, Some(VReg::new(9)));
        let s = VecInstr::vstore_indexed(VReg::new(2), 0x0, VReg::new(9));
        assert_eq!(s.source_regs().count(), 2);
    }

    #[test]
    fn fmacc_reads_its_own_destination() {
        let i = VecInstr::vfmacc(VReg::new(2), 2.0, VReg::new(1));
        let srcs: Vec<_> = i.source_regs().collect();
        assert!(srcs.contains(&VReg::new(2)));
        assert!(srcs.contains(&VReg::new(1)));
    }

    #[test]
    fn setvl_is_config_and_carries_request() {
        let i = VecInstr::setvl(100);
        assert_eq!(i.kind(), InstrKind::Config);
        assert_eq!(i.setvl_request, Some(100));
        assert!(!i.has_dst());
    }

    #[test]
    fn spill_tagging_and_full_mvl() {
        let i = VecInstr::vstore(VReg::new(3), 0x20)
            .with_full_mvl()
            .with_role(InstrRole::SpillStore);
        assert!(i.is_spill());
        assert_eq!(i.vl_mode, VlMode::FullMvl);
        assert!(i.to_string().contains("spill"));
    }

    #[test]
    fn display_contains_mnemonic_and_registers() {
        let i = VecInstr::binary(Opcode::VFAdd, VReg::new(6), VReg::new(5), VReg::new(4));
        let s = i.to_string();
        assert!(s.contains("vfadd.v"));
        assert!(s.contains("v6"));
        assert!(s.contains("v5"));
        assert!(s.contains("v4"));
    }

    #[test]
    fn merge_reads_three_registers_when_all_are_registers() {
        let i = VecInstr::vmerge(VReg::new(1), VReg::new(2), VReg::new(3), VReg::new(4));
        assert_eq!(i.source_regs().count(), 3);
    }

    #[test]
    fn scalar_operands_are_not_register_sources() {
        let i = VecInstr::binary(
            Opcode::VFMul,
            VReg::new(1),
            Operand::scalar_f64(3.0),
            VReg::new(2),
        );
        assert_eq!(i.source_regs().collect::<Vec<_>>(), vec![VReg::new(2)]);
    }
}
