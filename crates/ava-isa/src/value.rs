//! Element values held by vector registers.
//!
//! The reproduction follows the paper's convention that one element is a
//! 64-bit word. Elements are stored as raw 64-bit patterns and interpreted
//! as `f64` or `i64` (or a 0/1 mask) by each operation; this mirrors how a
//! real vector register file is type-agnostic storage.

use std::fmt;

/// One 64-bit vector element, stored as a raw bit pattern.
///
/// ```
/// use ava_isa::Element;
/// let e = Element::from_f64(1.5);
/// assert_eq!(e.as_f64(), 1.5);
/// let m = Element::from_bool(true);
/// assert!(m.as_bool());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Element(u64);

impl Element {
    /// The all-zero element (0.0 as a float, 0 as an integer, false as a mask).
    pub const ZERO: Element = Element(0);

    /// Builds an element from raw bits.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Raw 64-bit pattern.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Builds an element from a double-precision float.
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        Self(v.to_bits())
    }

    /// Interprets the element as a double-precision float.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Builds an element from a signed 64-bit integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        Self(v as u64)
    }

    /// Interprets the element as a signed 64-bit integer.
    #[must_use]
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Builds a mask element (1 for true, 0 for false).
    #[must_use]
    pub fn from_bool(v: bool) -> Self {
        Self(u64::from(v))
    }

    /// Interprets the element as a mask bit (non-zero means true).
    #[must_use]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<f64> for Element {
    fn from(v: f64) -> Self {
        Self::from_f64(v)
    }
}

impl From<i64> for Element {
    fn from(v: i64) -> Self {
        Self::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, -1.25, 3.5e300, f64::INFINITY, -0.0] {
            assert_eq!(Element::from_f64(v).as_f64(), v);
        }
    }

    #[test]
    fn nan_preserves_bits() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(Element::from_f64(nan).bits(), nan.to_bits());
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(Element::from_i64(v).as_i64(), v);
        }
    }

    #[test]
    fn bool_roundtrip_and_zero() {
        assert!(Element::from_bool(true).as_bool());
        assert!(!Element::from_bool(false).as_bool());
        assert_eq!(Element::ZERO.as_i64(), 0);
        assert_eq!(Element::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn display_is_hex_and_nonempty() {
        assert_eq!(Element::from_bits(0xff).to_string(), "0x00000000000000ff");
    }
}
