//! Logical (architectural) vector register names.
//!
//! The vector ISA exposes 32 logical vector registers `v0..v31`
//! ([`crate::NUM_LOGICAL_VREGS`]). The AVA microarchitecture preserves all
//! 32 of them regardless of the configured maximum vector length, whereas
//! the RISC-V Register-Grouping baseline divides them by the LMUL factor.

use std::fmt;

use crate::config::NUM_LOGICAL_VREGS;

/// A logical (architectural) vector register, `v0` through `v31`.
///
/// `VReg` is a validated newtype: it can only hold indices below
/// [`NUM_LOGICAL_VREGS`].
///
/// ```
/// use ava_isa::VReg;
/// let r = VReg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u8);

impl VReg {
    /// Creates a logical vector register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32` (the architectural register count).
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_LOGICAL_VREGS,
            "logical vector register index {index} out of range (0..{NUM_LOGICAL_VREGS})"
        );
        Self(index)
    }

    /// Creates a logical vector register, returning `None` if out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        if (index as usize) < NUM_LOGICAL_VREGS {
            Some(Self(index))
        } else {
            None
        }
    }

    /// The register index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all 32 logical registers in ascending order.
    pub fn all() -> impl Iterator<Item = VReg> {
        (0..NUM_LOGICAL_VREGS as u8).map(VReg)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<VReg> for usize {
    fn from(r: VReg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_all_architectural_registers() {
        for i in 0..32u8 {
            assert_eq!(VReg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = VReg::new(32);
    }

    #[test]
    fn try_new_mirrors_new() {
        assert_eq!(VReg::try_new(31), Some(VReg::new(31)));
        assert_eq!(VReg::try_new(32), None);
        assert_eq!(VReg::try_new(255), None);
    }

    #[test]
    fn display_uses_risc_v_names() {
        assert_eq!(VReg::new(0).to_string(), "v0");
        assert_eq!(VReg::new(31).to_string(), "v31");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<_> = VReg::all().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], VReg::new(0));
        assert_eq!(regs[31], VReg::new(31));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VReg::new(3) < VReg::new(4));
    }
}
