//! Vector opcodes, their functional-unit classes and queue assignment.

/// The broad class of a vector instruction, used by the two-stage issue unit
/// to select between the arithmetic and memory queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Operates on register operands only; issued through the arithmetic queue.
    Arithmetic,
    /// Touches memory (loads, stores, gathers, scatters, swaps, spills);
    /// issued through the memory queue.
    Memory,
    /// Machine-configuration operation (`vsetvl`); consumed by the front end
    /// and never occupies an issue-queue slot.
    Config,
}

/// Functional-unit class; determines execution start-up latency and whether
/// the operation pipelines one element per lane per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Register moves, splats, merges, slides.
    Move,
    /// Integer ALU operations.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/sub/min/max/compare/abs/neg.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Fused multiply-add.
    FpFma,
    /// Floating-point divide (long latency, not fully pipelined).
    FpDiv,
    /// Floating-point square root (long latency, not fully pipelined).
    FpSqrt,
    /// Transcendental approximation unit (exp/log); long latency.
    FpTrans,
    /// Reductions across the whole vector.
    Reduction,
    /// Vector memory access.
    Memory,
    /// Configuration (no functional unit).
    Config,
}

impl ExecClass {
    /// Start-up latency in VPU cycles before the first result element is
    /// produced. After start-up, pipelined classes retire `lanes` elements
    /// per cycle; non-pipelined classes (div/sqrt/trans) retire `lanes`
    /// elements every [`ExecClass::recurrence`] cycles.
    #[must_use]
    pub fn startup_latency(self) -> u64 {
        match self {
            ExecClass::Move => 1,
            ExecClass::IntAlu => 2,
            ExecClass::IntMul => 3,
            ExecClass::FpAdd => 4,
            ExecClass::FpMul => 4,
            ExecClass::FpFma => 5,
            ExecClass::FpDiv => 12,
            ExecClass::FpSqrt => 12,
            ExecClass::FpTrans => 8,
            ExecClass::Reduction => 4,
            ExecClass::Memory => 0,
            ExecClass::Config => 0,
        }
    }

    /// Initiation interval between element groups for this class: 1 for
    /// fully pipelined units, larger for iterative units (divide, square
    /// root, transcendental).
    #[must_use]
    pub fn recurrence(self) -> u64 {
        match self {
            ExecClass::FpDiv | ExecClass::FpSqrt => 4,
            ExecClass::FpTrans => 2,
            _ => 1,
        }
    }

    /// True if the class is executed on the floating-point datapath
    /// (used by the energy model to attribute FPU dynamic energy).
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            ExecClass::FpAdd
                | ExecClass::FpMul
                | ExecClass::FpFma
                | ExecClass::FpDiv
                | ExecClass::FpSqrt
                | ExecClass::FpTrans
                | ExecClass::Reduction
        )
    }
}

/// Every vector operation understood by the simulator.
///
/// The set is a pragmatic subset of the RISC-V V extension (plus `exp`/`log`
/// approximation ops used by the financial kernels), sufficient to express
/// the six RiVEC workloads evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ------------------------------------------------------------- memory
    /// Unit-stride load from a base address.
    VLoad,
    /// Unit-stride store to a base address.
    VStore,
    /// Constant-stride load.
    VLoadStrided,
    /// Constant-stride store.
    VStoreStrided,
    /// Indexed gather: element i loaded from `base + 8 * index[i]`.
    VLoadIndexed,
    /// Indexed scatter: element i stored to `base + 8 * index[i]`.
    VStoreIndexed,

    // ------------------------------------------------------- fp arithmetic
    /// Floating-point addition.
    VFAdd,
    /// Floating-point subtraction.
    VFSub,
    /// Floating-point multiplication.
    VFMul,
    /// Floating-point division.
    VFDiv,
    /// Floating-point square root (unary).
    VFSqrt,
    /// Fused multiply-add: `dst = src0 * src1 + src2`.
    VFMacc,
    /// Fused multiply-subtract: `dst = src0 * src1 - src2`.
    VFMsac,
    /// Floating-point minimum.
    VFMin,
    /// Floating-point maximum.
    VFMax,
    /// Floating-point negation (unary).
    VFNeg,
    /// Floating-point absolute value (unary).
    VFAbs,
    /// Natural exponential approximation (unary).
    VFExp,
    /// Natural logarithm approximation (unary).
    VFLn,

    // ------------------------------------------------------ int arithmetic
    /// Integer addition.
    VAdd,
    /// Integer subtraction.
    VSub,
    /// Integer multiplication.
    VMul,
    /// Bitwise and.
    VAnd,
    /// Bitwise or.
    VOr,
    /// Bitwise xor.
    VXor,
    /// Logical shift left.
    VSll,
    /// Logical shift right.
    VSrl,
    /// Integer minimum.
    VMin,
    /// Integer maximum.
    VMax,

    // ----------------------------------------------------------- compares
    /// Set mask where `src0 < src1` (floating point).
    VMFLt,
    /// Set mask where `src0 <= src1` (floating point).
    VMFLe,
    /// Set mask where `src0 > src1` (floating point).
    VMFGt,
    /// Set mask where `src0 >= src1` (floating point).
    VMFGe,
    /// Set mask where `src0 == src1` (floating point).
    VMFEq,
    /// Set mask where `src0 < src1` (signed integer).
    VMSLt,
    /// Set mask where `src0 == src1` (integer).
    VMSEq,

    // ------------------------------------------------------ moves & select
    /// Vector-vector copy.
    VMv,
    /// Broadcast a scalar to every element.
    VMvSplat,
    /// Element index vector: `dst[i] = i`.
    VId,
    /// Select: `dst[i] = mask[i] ? src0[i] : src1[i]`
    /// (mask is `src2`).
    VMerge,
    /// Slide elements up by one (element 0 receives the scalar operand).
    VSlide1Up,
    /// Slide elements down by one (last element receives the scalar operand).
    VSlide1Down,

    // ---------------------------------------------------------- reductions
    /// Sum reduction; result written to element 0 of the destination.
    VFRedSum,
    /// Max reduction; result written to element 0 of the destination.
    VFRedMax,
    /// Min reduction; result written to element 0 of the destination.
    VFRedMin,

    // --------------------------------------------------------------- config
    /// `vsetvl`: set the vector length for subsequent instructions.
    SetVl,
}

impl Opcode {
    /// Every opcode, in declaration order. The canonical iteration set for
    /// exhaustive checks and for serializers that map opcodes to and from
    /// their mnemonics.
    pub const ALL: &'static [Opcode] = &[
        Opcode::VLoad,
        Opcode::VStore,
        Opcode::VLoadStrided,
        Opcode::VStoreStrided,
        Opcode::VLoadIndexed,
        Opcode::VStoreIndexed,
        Opcode::VFAdd,
        Opcode::VFSub,
        Opcode::VFMul,
        Opcode::VFDiv,
        Opcode::VFSqrt,
        Opcode::VFMacc,
        Opcode::VFMsac,
        Opcode::VFMin,
        Opcode::VFMax,
        Opcode::VFNeg,
        Opcode::VFAbs,
        Opcode::VFExp,
        Opcode::VFLn,
        Opcode::VAdd,
        Opcode::VSub,
        Opcode::VMul,
        Opcode::VAnd,
        Opcode::VOr,
        Opcode::VXor,
        Opcode::VSll,
        Opcode::VSrl,
        Opcode::VMin,
        Opcode::VMax,
        Opcode::VMFLt,
        Opcode::VMFLe,
        Opcode::VMFGt,
        Opcode::VMFGe,
        Opcode::VMFEq,
        Opcode::VMSLt,
        Opcode::VMSEq,
        Opcode::VMv,
        Opcode::VMvSplat,
        Opcode::VId,
        Opcode::VMerge,
        Opcode::VSlide1Up,
        Opcode::VSlide1Down,
        Opcode::VFRedSum,
        Opcode::VFRedMax,
        Opcode::VFRedMin,
        Opcode::SetVl,
    ];

    /// The opcode with the given [`Opcode::mnemonic`], or `None`. Mnemonics
    /// are unique (pinned by test), so this inverts `mnemonic` exactly —
    /// the lookup serializers use to parse a program back from text.
    #[must_use]
    pub fn from_mnemonic(mnemonic: &str) -> Option<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .find(|op| op.mnemonic() == mnemonic)
    }

    /// Queue/kind classification for the two-stage issue unit.
    #[must_use]
    pub fn kind(self) -> InstrKind {
        match self {
            Opcode::VLoad
            | Opcode::VStore
            | Opcode::VLoadStrided
            | Opcode::VStoreStrided
            | Opcode::VLoadIndexed
            | Opcode::VStoreIndexed => InstrKind::Memory,
            Opcode::SetVl => InstrKind::Config,
            _ => InstrKind::Arithmetic,
        }
    }

    /// Functional-unit class used for timing and energy accounting.
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        use Opcode::*;
        match self {
            VLoad | VStore | VLoadStrided | VStoreStrided | VLoadIndexed | VStoreIndexed => {
                ExecClass::Memory
            }
            VFAdd | VFSub | VFMin | VFMax | VFNeg | VFAbs => ExecClass::FpAdd,
            VMFLt | VMFLe | VMFGt | VMFGe | VMFEq => ExecClass::FpAdd,
            VFMul => ExecClass::FpMul,
            VFMacc | VFMsac => ExecClass::FpFma,
            VFDiv => ExecClass::FpDiv,
            VFSqrt => ExecClass::FpSqrt,
            VFExp | VFLn => ExecClass::FpTrans,
            VAdd | VSub | VAnd | VOr | VXor | VSll | VSrl | VMin | VMax | VMSLt | VMSEq => {
                ExecClass::IntAlu
            }
            VMul => ExecClass::IntMul,
            VMv | VMvSplat | VId | VMerge | VSlide1Up | VSlide1Down => ExecClass::Move,
            VFRedSum | VFRedMax | VFRedMin => ExecClass::Reduction,
            SetVl => ExecClass::Config,
        }
    }

    /// True for memory writes (stores and scatters), which have no register
    /// destination.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Opcode::VStore | Opcode::VStoreStrided | Opcode::VStoreIndexed
        )
    }

    /// True for memory reads (loads and gathers).
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::VLoad | Opcode::VLoadStrided | Opcode::VLoadIndexed
        )
    }

    /// Short assembly-like mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            VLoad => "vle.v",
            VStore => "vse.v",
            VLoadStrided => "vlse.v",
            VStoreStrided => "vsse.v",
            VLoadIndexed => "vlxe.v",
            VStoreIndexed => "vsxe.v",
            VFAdd => "vfadd.v",
            VFSub => "vfsub.v",
            VFMul => "vfmul.v",
            VFDiv => "vfdiv.v",
            VFSqrt => "vfsqrt.v",
            VFMacc => "vfmacc.v",
            VFMsac => "vfmsac.v",
            VFMin => "vfmin.v",
            VFMax => "vfmax.v",
            VFNeg => "vfneg.v",
            VFAbs => "vfabs.v",
            VFExp => "vfexp.v",
            VFLn => "vfln.v",
            VAdd => "vadd.v",
            VSub => "vsub.v",
            VMul => "vmul.v",
            VAnd => "vand.v",
            VOr => "vor.v",
            VXor => "vxor.v",
            VSll => "vsll.v",
            VSrl => "vsrl.v",
            VMin => "vmin.v",
            VMax => "vmax.v",
            VMFLt => "vmflt.v",
            VMFLe => "vmfle.v",
            VMFGt => "vmfgt.v",
            VMFGe => "vmfge.v",
            VMFEq => "vmfeq.v",
            VMSLt => "vmslt.v",
            VMSEq => "vmseq.v",
            VMv => "vmv.v",
            VMvSplat => "vmv.v.x",
            VId => "vid.v",
            VMerge => "vmerge.v",
            VSlide1Up => "vslide1up.v",
            VSlide1Down => "vslide1down.v",
            VFRedSum => "vfredsum.v",
            VFRedMax => "vfredmax.v",
            VFRedMin => "vfredmin.v",
            SetVl => "vsetvl",
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[Opcode] = Opcode::ALL;

    #[test]
    fn memory_opcodes_go_to_the_memory_queue() {
        for op in ALL {
            let is_mem = op.is_load() || op.is_store();
            assert_eq!(
                op.kind() == InstrKind::Memory,
                is_mem,
                "kind mismatch for {op}"
            );
        }
    }

    #[test]
    fn only_setvl_is_config() {
        for op in ALL {
            assert_eq!(op.kind() == InstrKind::Config, matches!(op, Opcode::SetVl));
        }
    }

    #[test]
    fn loads_and_stores_are_disjoint() {
        for op in ALL {
            assert!(!(op.is_load() && op.is_store()), "{op} is both");
        }
    }

    #[test]
    fn exec_class_latencies_are_positive_for_arithmetic() {
        for op in ALL {
            if op.kind() == InstrKind::Arithmetic {
                assert!(op.exec_class().startup_latency() >= 1, "{op}");
                assert!(op.exec_class().recurrence() >= 1, "{op}");
            }
        }
    }

    #[test]
    fn fp_classification_matches_datapath() {
        assert!(Opcode::VFMacc.exec_class().is_fp());
        assert!(Opcode::VFRedSum.exec_class().is_fp());
        assert!(!Opcode::VAdd.exec_class().is_fp());
        assert!(!Opcode::VLoad.exec_class().is_fp());
    }

    #[test]
    fn mnemonics_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for op in ALL {
            assert!(!op.mnemonic().is_empty());
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn from_mnemonic_inverts_mnemonic_for_every_opcode() {
        for &op in ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("not-an-opcode"), None);
        assert_eq!(Opcode::from_mnemonic(""), None);
    }

    #[test]
    fn div_and_sqrt_are_not_fully_pipelined() {
        assert!(ExecClass::FpDiv.recurrence() > 1);
        assert!(ExecClass::FpSqrt.recurrence() > 1);
        assert_eq!(ExecClass::FpFma.recurrence(), 1);
    }
}
