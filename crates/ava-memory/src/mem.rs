//! Functional, byte-addressable main memory with a bump allocator.

use std::collections::HashMap;

/// Size of an internal storage page in bytes. Pages are allocated lazily so
/// the simulated address space can be large and sparse.
const PAGE_SIZE: usize = 4096;

/// Base address handed out by the allocator. Address 0 is left unmapped so
/// that an accidental null-based access is easy to spot in tests.
const ALLOC_BASE: u64 = 0x1_0000;

/// A sparse, byte-addressable functional memory.
///
/// All values default to zero. Reads and writes may touch any address; pages
/// are materialised on demand. An embedded bump allocator hands out
/// non-overlapping, 64-byte-aligned buffers for workloads and for the AVA
/// M-VRF (the paper's `set_virtual_vrf` intrinsic performs the equivalent
/// `malloc`).
///
/// ```
/// use ava_memory::MainMemory;
/// let mut m = MainMemory::new();
/// let a = m.alloc(64);
/// m.write_u64(a, 0xdead_beef);
/// assert_eq!(m.read_u64(a), 0xdead_beef);
/// assert_eq!(m.read_u64(a + 8), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Vec<u8>>,
    next_alloc: u64,
    allocated_bytes: u64,
}

impl MainMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pages: HashMap::new(),
            next_alloc: ALLOC_BASE,
            allocated_bytes: 0,
        }
    }

    /// Allocates `bytes` bytes and returns the base address. Allocations are
    /// 64-byte (cache-line) aligned and never overlap.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc;
        let rounded = bytes.div_ceil(64) * 64;
        self.next_alloc += rounded.max(64);
        self.allocated_bytes += rounded.max(64);
        base
    }

    /// Total bytes handed out by [`MainMemory::alloc`].
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// The address range `[start, end)` covered by all allocations so far.
    #[must_use]
    pub fn allocated_range(&self) -> (u64, u64) {
        (ALLOC_BASE, self.next_alloc)
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr / PAGE_SIZE as u64;
        let off = (addr % PAGE_SIZE as u64) as usize;
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = addr / PAGE_SIZE as u64;
        let off = (addr % PAGE_SIZE as u64) as usize;
        self.pages.entry(page).or_insert_with(|| vec![0; PAGE_SIZE])[off] = value;
    }

    /// Reads a little-endian 64-bit word (need not be aligned).
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit word (need not be aligned).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads an `i64`.
    #[must_use]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Copies a slice of doubles into memory starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }

    /// Reads `n` doubles starting at `addr`.
    #[must_use]
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Number of distinct pages that have been touched (for memory-footprint
    /// assertions in tests).
    #[must_use]
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_f64(0x9999), 0.0);
    }

    #[test]
    fn u64_roundtrip_aligned_and_unaligned() {
        let mut m = MainMemory::new();
        m.write_u64(0x100, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x100), 0x0123_4567_89ab_cdef);
        m.write_u64(0x103, u64::MAX);
        assert_eq!(m.read_u64(0x103), u64::MAX);
    }

    #[test]
    fn f64_and_i64_roundtrip() {
        let mut m = MainMemory::new();
        m.write_f64(0x200, -1234.5);
        m.write_i64(0x208, -77);
        assert_eq!(m.read_f64(0x200), -1234.5);
        assert_eq!(m.read_i64(0x208), -77);
    }

    #[test]
    fn writes_crossing_page_boundaries_work() {
        let mut m = MainMemory::new();
        let addr = PAGE_SIZE as u64 - 4;
        m.write_u64(addr, 0xaabb_ccdd_eeff_0011);
        assert_eq!(m.read_u64(addr), 0xaabb_ccdd_eeff_0011);
        assert!(m.touched_pages() >= 2);
    }

    #[test]
    fn alloc_returns_aligned_non_overlapping_buffers() {
        let mut m = MainMemory::new();
        let a = m.alloc(100);
        let b = m.alloc(1);
        let c = m.alloc(4096);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 128); // 100 rounded to 128
        assert!(c >= b + 64);
        assert_eq!(m.allocated_bytes(), 128 + 64 + 4096);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut m = MainMemory::new();
        let a = m.alloc(8 * 5);
        let vals = [1.0, 2.5, -3.0, 0.0, 1e30];
        m.write_f64_slice(a, &vals);
        assert_eq!(m.read_f64_slice(a, 5), vals.to_vec());
    }

    #[test]
    fn allocations_start_above_the_null_page() {
        let mut m = MainMemory::new();
        assert!(m.alloc(8) >= ALLOC_BASE);
    }
}
