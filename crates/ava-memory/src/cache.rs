//! Set-associative cache timing model with LRU replacement.
//!
//! The cache is a *timing* model only: data always lives in the functional
//! [`crate::MainMemory`]; the cache tracks which lines would be resident to
//! decide hit/miss latencies and to count dirty write-backs (which consume
//! DRAM bandwidth in the hierarchy model).

use crate::stats::CacheStats;

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (the paper uses 512-bit = 64 B lines).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles for a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's 32 KB L1 data cache: 64 B lines, 8-way, 4-cycle latency.
    #[must_use]
    pub fn l1d() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency: 4,
        }
    }

    /// The paper's 1 MB L2 cache: 64 B lines, 16-way, 12-cycle latency.
    #[must_use]
    pub fn l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency: 12,
        }
    }

    /// Number of sets implied by the configuration.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last access, for LRU.
    last_use: u64,
}

/// Outcome of a single line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Whether a dirty victim line had to be written back to the next level.
    pub writeback: bool,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// ```
/// use ava_memory::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one set
    /// (size must be at least `line_bytes * ways`).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            config,
            sets: vec![vec![Line::default(); config.ways]; sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Hit latency of this level in cycles.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.config.hit_latency
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses the line containing `addr`, allocating it on a miss.
    /// Returns whether it hit and whether a dirty victim was evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            line.dirty |= is_write;
            if is_write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: false,
            };
        }

        // Miss: pick an invalid way or the LRU way.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_use + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let victim = &mut set[victim_idx];
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: clock,
        };
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// True if the line containing `addr` is currently resident (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Clears the hit/miss counters without touching cache contents (used
    /// after a warm-up pass so measurements start from zero).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line and clears dirty state (statistics are kept).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 3,
        })
    }

    #[test]
    fn paper_configurations_have_expected_geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 1024);
        assert_eq!(CacheConfig::l2().hit_latency, 12);
        assert_eq!(CacheConfig::l1d().hit_latency, 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(0x3f, false).hit, "same line");
        assert!(!c.access(0x40, false).hit, "next line");
        assert_eq!(c.stats().read_misses, 2);
        assert_eq!(c.stats().read_hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = tiny();
        // Three lines mapping to set 0 (set = line % 4): line numbers 0, 4, 8.
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recently used
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (LRU), which is dirty
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, true);
        // Force eviction of line 0 by touching two more lines of set 0.
        c.access(4 * 64, false);
        let out = c.access(8 * 64, false);
        assert!(out.writeback);
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = tiny();
        c.access(0x0, true);
        c.flush();
        assert!(!c.contains(0x0));
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_set_configuration_is_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        });
    }

    #[test]
    fn working_set_larger_than_capacity_misses() {
        let mut c = tiny();
        // 16 distinct lines > 8-line capacity: a second pass still misses.
        for i in 0..16u64 {
            c.access(i * 64, false);
        }
        let misses_before = c.stats().read_misses;
        for i in 0..16u64 {
            c.access(i * 64, false);
        }
        assert!(c.stats().read_misses > misses_before);
    }
}
