//! The composed memory hierarchy: functional memory + L1D + L2 + DRAM plus
//! the vector memory unit's 512-bit L2 port.
//!
//! Two kinds of clients use the hierarchy:
//!
//! * the scalar core, whose loads/stores go through the L1 data cache;
//! * the vector memory unit (VMU), which — as in the paper's platform —
//!   bypasses the L1 and talks to the L2 directly over a 512-bit bus.
//!
//! All *data* always lives in the functional [`MainMemory`]; caches and DRAM
//! only produce timing and statistics.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::mem::MainMemory;
use crate::port::BusPort;
use crate::stats::MemoryStats;

/// Static configuration of the whole hierarchy (Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache configuration (scalar side).
    pub l1d: CacheConfig,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Width in bytes of the VMU-to-L2 interface (512 bits = 64 B).
    pub vmu_bus_bytes: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram: DramConfig::default(),
            vmu_bus_bytes: 64,
        }
    }
}

/// Timing outcome of one vector memory request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessTiming {
    /// Cycles from issue until the request fully completes.
    pub total_cycles: u64,
    /// Cycles the VMU bus / L2 port is occupied (limits back-to-back throughput).
    pub occupancy_cycles: u64,
    /// Distinct cache lines touched.
    pub lines_touched: u64,
    /// Lines that hit in the L2.
    pub l2_hits: u64,
    /// Lines that missed in the L2 and were fetched from DRAM.
    pub l2_misses: u64,
}

/// The composed functional + timing memory system.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    memory: MainMemory,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    vmu_port: BusPort,
    stats: MemoryStats,
}

impl MemoryHierarchy {
    /// Creates a hierarchy with the given configuration and empty caches.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            config,
            memory: MainMemory::new(),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            vmu_port: BusPort::new(config.vmu_bus_bytes),
            stats: MemoryStats::default(),
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Allocates a buffer in the simulated address space.
    pub fn allocate(&mut self, bytes: u64) -> u64 {
        self.memory.alloc(bytes)
    }

    /// Shared read access to the functional memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Mutable access to the functional memory (used by workload set-up code
    /// to initialise input arrays without perturbing cache state).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    // ------------------------------------------------------------------
    // Functional accessors (no timing side effects)
    // ------------------------------------------------------------------

    /// Reads an `f64` from the functional memory.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.memory.read_f64(addr)
    }

    /// Writes an `f64` to the functional memory.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.memory.write_f64(addr, value);
    }

    /// Reads a `u64` from the functional memory.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    /// Writes a `u64` to the functional memory.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.memory.write_u64(addr, value);
    }

    // ------------------------------------------------------------------
    // Timing accessors
    // ------------------------------------------------------------------

    /// Timing of a scalar load/store through L1 → L2 → DRAM.
    pub fn scalar_access(&mut self, addr: u64, is_write: bool) -> u64 {
        let l1 = self.l1d.access(addr, is_write);
        let mut latency = self.l1d.hit_latency();
        if !l1.hit {
            let l2 = self.l2.access(addr, is_write);
            latency += self.l2.hit_latency();
            if !l2.hit {
                latency += self.dram.access(addr, self.config.l2.line_bytes as u64);
                self.stats.dram_accesses += 1;
                self.stats.dram_bytes += self.config.l2.line_bytes as u64;
            }
        }
        self.stats.l1d = *self.l1d.stats();
        self.stats.l2 = *self.l2.stats();
        latency
    }

    /// Timing of a vector memory request covering the explicit set of
    /// element addresses `element_addrs` (8 bytes per element). Used for
    /// strided and indexed accesses where elements may touch scattered lines.
    pub fn vector_access_elements(
        &mut self,
        element_addrs: &[u64],
        is_write: bool,
    ) -> AccessTiming {
        let line = self.config.l2.line_bytes as u64;
        let mut lines: Vec<u64> = element_addrs.iter().map(|a| a / line).collect();
        lines.sort_unstable();
        lines.dedup();
        self.vector_access_lines(&lines, element_addrs.len() as u64 * 8, is_write)
    }

    /// Timing of a unit-stride vector request of `bytes` bytes at `base`.
    pub fn vector_access(&mut self, base: u64, bytes: u64, is_write: bool) -> AccessTiming {
        if bytes == 0 {
            return AccessTiming::default();
        }
        let line = self.config.l2.line_bytes as u64;
        let first = base / line;
        let last = (base + bytes - 1) / line;
        let lines: Vec<u64> = (first..=last).collect();
        self.vector_access_lines(&lines, bytes, is_write)
    }

    fn vector_access_lines(&mut self, lines: &[u64], bytes: u64, is_write: bool) -> AccessTiming {
        if lines.is_empty() {
            return AccessTiming::default();
        }
        let line_bytes = self.config.l2.line_bytes as u64;
        let mut hits = 0;
        let mut misses = 0;
        for &l in lines {
            let addr = l * line_bytes;
            if self.l2.access(addr, is_write).hit {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        // DRAM latency: one row activation for the request plus
        // bandwidth-limited streaming of the missed bytes.
        let dram_cycles = if misses > 0 {
            let missed_bytes = misses * line_bytes;
            self.stats.dram_accesses += misses;
            self.stats.dram_bytes += missed_bytes;
            self.dram.access(lines[0] * line_bytes, missed_bytes)
        } else {
            0
        };
        // The VMU port moves whole lines and is occupied for however many
        // cycles the configured bus width needs for them (one cycle per
        // 64 B line on the paper's 512-bit interface).
        let moved_bytes = lines.len() as u64 * line_bytes;
        let occupancy = self.vmu_port.occupancy_cycles_for(moved_bytes);
        let total = self.l2.hit_latency() + dram_cycles + occupancy;

        self.stats.vmu_bytes += bytes;
        self.stats.vector_requests += 1;
        self.stats.l1d = *self.l1d.stats();
        self.stats.l2 = *self.l2.stats();

        AccessTiming {
            total_cycles: total,
            occupancy_cycles: occupancy,
            lines_touched: lines.len() as u64,
            l2_hits: hits,
            l2_misses: misses,
        }
    }

    /// Aggregate statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        let mut s = self.stats;
        s.l1d = *self.l1d.stats();
        s.l2 = *self.l2.stats();
        s
    }

    /// Invalidates both caches (used between benchmark iterations).
    pub fn flush_caches(&mut self) {
        self.l1d.flush();
        self.l2.flush();
    }

    /// Brings every line of the allocated address range into the L2 and then
    /// clears all statistics. This models measuring a region of interest
    /// with warm caches, as the paper's gem5 runs do; data sets larger than
    /// the L2 naturally still miss during the measured run.
    pub fn warm_caches(&mut self) {
        let (start, end) = self.memory.allocated_range();
        self.warm_caches_range(start, end);
    }

    /// Warms only `[start, end)` (and clears statistics), for callers whose
    /// allocation mixes measured data with auxiliary arenas that must stay
    /// cold — e.g. the simulator's spill arena, which is MVL-wide per slot
    /// and would otherwise evict the application's working set from small
    /// L2 configurations before the run even starts.
    pub fn warm_caches_range(&mut self, start: u64, end: u64) {
        self.warm_caches_ranges(&[(start, end)]);
    }

    /// Warms every `[start, end)` range of `ranges`, in order, then clears
    /// all statistics once. This is the planner-driven warm-up path: the
    /// simulator derives the ranges from the workload's planned data layout
    /// (every buffer the run touches), so auxiliary regions — the spill
    /// arena, dead placeholder buffers of pipelined composites — stay cold
    /// without any hand-maintained address bookkeeping.
    pub fn warm_caches_ranges(&mut self, ranges: &[(u64, u64)]) {
        let line = self.config.l2.line_bytes as u64;
        for &(start, end) in ranges {
            let mut addr = start;
            while addr < end {
                let _ = self.l2.access(addr, false);
                addr += line;
            }
        }
        self.reset_stats();
    }

    /// Clears every statistics counter (caches, DRAM, VMU traffic) without
    /// changing cache contents or functional memory.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.stats = MemoryStats::default();
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::new(HierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_reads_and_writes_roundtrip() {
        let mut h = MemoryHierarchy::default();
        let a = h.allocate(128);
        h.write_f64(a, 2.25);
        h.write_u64(a + 8, 99);
        assert_eq!(h.read_f64(a), 2.25);
        assert_eq!(h.read_u64(a + 8), 99);
    }

    #[test]
    fn vector_access_counts_lines_correctly() {
        let mut h = MemoryHierarchy::default();
        // 16 elements * 8 bytes = 128 bytes = 2 lines when aligned.
        let t = h.vector_access(0x1_0000, 128, false);
        assert_eq!(t.lines_touched, 2);
        assert_eq!(t.occupancy_cycles, 2);
        // Unaligned base straddles one extra line.
        let t2 = h.vector_access(0x1_0000 + 8, 128, false);
        assert_eq!(t2.lines_touched, 3);
    }

    #[test]
    fn second_access_hits_in_l2_and_is_faster() {
        let mut h = MemoryHierarchy::default();
        let cold = h.vector_access(0x2_0000, 1024, false);
        let warm = h.vector_access(0x2_0000, 1024, false);
        assert!(cold.l2_misses > 0);
        assert_eq!(warm.l2_misses, 0);
        assert!(warm.total_cycles < cold.total_cycles);
        assert!(warm.total_cycles >= 12, "at least the L2 latency");
    }

    #[test]
    fn strided_elements_touch_more_lines_than_unit_stride() {
        let mut h = MemoryHierarchy::default();
        let unit: Vec<u64> = (0..16u64).map(|i| 0x4_0000 + 8 * i).collect();
        let strided: Vec<u64> = (0..16u64).map(|i| 0x8_0000 + 512 * i).collect();
        let a = h.vector_access_elements(&unit, false);
        let b = h.vector_access_elements(&strided, false);
        assert_eq!(a.lines_touched, 2);
        assert_eq!(b.lines_touched, 16);
        assert!(b.total_cycles > a.total_cycles);
    }

    #[test]
    fn scalar_accesses_use_the_l1() {
        let mut h = MemoryHierarchy::default();
        let cold = h.scalar_access(0x3_0000, false);
        let warm = h.scalar_access(0x3_0000, false);
        assert!(cold > warm);
        assert_eq!(warm, 4, "L1 hit latency");
        assert_eq!(h.stats().l1d.read_hits, 1);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut h = MemoryHierarchy::default();
        let t = h.vector_access(0x100, 0, false);
        assert_eq!(t.total_cycles, 0);
        assert_eq!(t.lines_touched, 0);
    }

    #[test]
    fn stats_track_vmu_traffic() {
        let mut h = MemoryHierarchy::default();
        h.vector_access(0x5_0000, 256, true);
        h.vector_access(0x5_0000, 256, false);
        let s = h.stats();
        assert_eq!(s.vector_requests, 2);
        assert_eq!(s.vmu_bytes, 512);
        assert!(s.dram_bytes > 0);
    }

    #[test]
    fn flush_caches_forces_misses_again() {
        let mut h = MemoryHierarchy::default();
        h.vector_access(0x6_0000, 64, false);
        h.flush_caches();
        let t = h.vector_access(0x6_0000, 64, false);
        assert_eq!(t.l2_misses, 1);
    }
}
