//! Fixed-latency, bandwidth-limited DRAM timing model.
//!
//! The paper's platform uses 2 GB of DDR3 behind the L2. For the relative
//! comparisons in the evaluation what matters is that misses in the L2 pay a
//! substantially larger latency than L2 hits and that sustained bandwidth is
//! finite; this model captures both with a row-buffer-friendly open-page
//! approximation: accesses that stay within the currently open row are
//! cheaper than accesses that open a new row.

/// DRAM timing configuration (in VPU cycles at 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency of an access that hits the open row.
    pub row_hit_latency: u64,
    /// Latency of an access that must open a new row.
    pub row_miss_latency: u64,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Bytes transferred per cycle once streaming (peak bandwidth).
    pub bytes_per_cycle: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR3-1600 behind a 1 GHz VPU clock: ~60 cycles to open a row,
        // ~30 cycles for an open-row access, 2 KB rows, 12.8 GB/s ≈ 12 B/cycle.
        Self {
            row_hit_latency: 30,
            row_miss_latency: 60,
            row_bytes: 2048,
            bytes_per_cycle: 12,
        }
    }
}

/// DRAM timing model.
///
/// ```
/// use ava_memory::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(0, 64);
/// let second = d.access(64, 64);
/// assert!(second <= first, "open-row access is not slower");
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    open_row: Option<u64>,
    accesses: u64,
    row_misses: u64,
    bytes: u64,
}

impl Dram {
    /// Creates a DRAM model with the given timing parameters.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.bytes_per_cycle > 0,
            "DRAM bandwidth must be non-zero"
        );
        Self {
            config,
            open_row: None,
            accesses: 0,
            row_misses: 0,
            bytes: 0,
        }
    }

    /// The timing configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Latency in cycles to fetch `bytes` bytes starting at `addr`.
    pub fn access(&mut self, addr: u64, bytes: u64) -> u64 {
        self.accesses += 1;
        self.bytes += bytes;
        let row = addr / self.config.row_bytes;
        let latency = if self.open_row == Some(row) {
            self.config.row_hit_latency
        } else {
            self.row_misses += 1;
            self.open_row = Some(row);
            self.config.row_miss_latency
        };
        latency + bytes.div_ceil(self.config.bytes_per_cycle)
    }

    /// Total accesses served.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that had to open a new row.
    #[must_use]
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Total bytes transferred.
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_opens_a_row() {
        let mut d = Dram::default();
        let lat = d.access(0x100, 64);
        assert!(lat >= DramConfig::default().row_miss_latency);
        assert_eq!(d.row_misses(), 1);
    }

    #[test]
    fn same_row_accesses_are_cheaper() {
        let mut d = Dram::default();
        let a = d.access(0, 64);
        let b = d.access(128, 64);
        assert!(b < a);
        assert_eq!(d.row_misses(), 1);
    }

    #[test]
    fn crossing_rows_reopens() {
        let mut d = Dram::default();
        d.access(0, 64);
        d.access(4096, 64); // different 2 KB row
        assert_eq!(d.row_misses(), 2);
    }

    #[test]
    fn larger_transfers_take_longer() {
        let mut d = Dram::default();
        d.access(0, 64);
        let small = d.access(64, 64);
        let large = d.access(128, 640);
        assert!(large > small);
    }

    #[test]
    fn statistics_accumulate() {
        let mut d = Dram::default();
        d.access(0, 64);
        d.access(64, 64);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.bytes_transferred(), 128);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_is_rejected() {
        let _ = Dram::new(DramConfig {
            bytes_per_cycle: 0,
            ..DramConfig::default()
        });
    }
}
