//! Bandwidth-limited bus port.
//!
//! The vector memory unit talks to the L2 over a 512-bit (64-byte-per-cycle)
//! interface (Table II). [`BusPort`] serialises transfers over such a link:
//! each transfer occupies the port for `ceil(bytes / width)` cycles, and a
//! request that arrives while the port is busy waits for it to drain.

/// A simple occupancy tracker for a fixed-width bus.
///
/// ```
/// use ava_memory::BusPort;
/// let mut port = BusPort::new(64);
/// // A 128-byte transfer requested at cycle 10 holds the port for 2 cycles.
/// let done = port.request(10, 128);
/// assert_eq!(done, 12);
/// // A transfer requested earlier than the port frees must wait.
/// assert_eq!(port.request(11, 64), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusPort {
    width_bytes: u64,
    busy_until: u64,
    total_bytes: u64,
    busy_cycles: u64,
}

impl BusPort {
    /// Creates a port transferring `width_bytes` per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is zero.
    #[must_use]
    pub fn new(width_bytes: u64) -> Self {
        assert!(width_bytes > 0, "bus width must be non-zero");
        Self {
            width_bytes,
            busy_until: 0,
            total_bytes: 0,
            busy_cycles: 0,
        }
    }

    /// Bytes moved per cycle.
    #[must_use]
    pub fn width_bytes(&self) -> u64 {
        self.width_bytes
    }

    /// Cycles a transfer of `bytes` occupies the port (at least one).
    #[must_use]
    pub fn occupancy_cycles_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.width_bytes).max(1)
    }

    /// Requests a transfer of `bytes` at time `now`; returns the cycle at
    /// which the transfer completes (start waits for any earlier transfer).
    pub fn request(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.busy_until);
        let occupancy = self.occupancy_cycles_for(bytes);
        self.busy_until = start + occupancy;
        self.total_bytes += bytes;
        self.busy_cycles += occupancy;
        self.busy_until
    }

    /// The first cycle at which the port is free.
    #[must_use]
    pub fn free_at(&self) -> u64 {
        self.busy_until
    }

    /// Total bytes transferred so far.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles the port has been occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Utilisation relative to an observation window of `elapsed` cycles.
    #[must_use]
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_transfer_takes_one_cycle() {
        let mut p = BusPort::new(64);
        assert_eq!(p.request(0, 64), 1);
        assert_eq!(p.request(100, 1), 101);
    }

    #[test]
    fn back_to_back_transfers_serialise() {
        let mut p = BusPort::new(64);
        assert_eq!(p.request(0, 256), 4);
        assert_eq!(p.request(0, 64), 5);
        assert_eq!(p.free_at(), 5);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut p = BusPort::new(64);
        p.request(0, 64);
        assert_eq!(p.request(50, 64), 51);
        assert_eq!(p.busy_cycles(), 2);
        assert!(p.utilisation(51) < 0.1);
    }

    #[test]
    fn statistics_accumulate() {
        let mut p = BusPort::new(8);
        p.request(0, 24);
        p.request(0, 8);
        assert_eq!(p.total_bytes(), 32);
        assert_eq!(p.busy_cycles(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        let _ = BusPort::new(0);
    }

    #[test]
    fn utilisation_handles_zero_window() {
        let p = BusPort::new(64);
        assert_eq!(p.utilisation(0), 0.0);
    }
}
