//! Statistics counters for the memory system.

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed (write-allocate).
    pub write_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Hit rate in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }
}

/// Aggregate statistics for the whole hierarchy, used by the energy model
/// (every L2 access and DRAM transfer costs dynamic energy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// L1 data cache counters (scalar-side accesses).
    pub l1d: CacheStats,
    /// Shared L2 counters (vector-memory-unit and L1 refill accesses).
    pub l2: CacheStats,
    /// Accesses that reached DRAM.
    pub dram_accesses: u64,
    /// Bytes transferred to/from DRAM.
    pub dram_bytes: u64,
    /// Bytes moved over the vector memory unit's L2 port.
    pub vmu_bytes: u64,
    /// Vector memory requests served (one per dynamic vector memory instruction).
    pub vector_requests: u64,
}

impl CacheStats {
    /// Counter-wise difference `self - baseline` (used for per-phase
    /// breakdowns, where a phase's traffic is the delta between the
    /// snapshots taken around its program segment).
    #[must_use]
    pub fn delta_since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits - baseline.read_hits,
            read_misses: self.read_misses - baseline.read_misses,
            write_hits: self.write_hits - baseline.write_hits,
            write_misses: self.write_misses - baseline.write_misses,
            writebacks: self.writebacks - baseline.writebacks,
        }
    }
}

impl MemoryStats {
    /// Counter-wise difference `self - baseline`.
    #[must_use]
    pub fn delta_since(&self, baseline: &MemoryStats) -> MemoryStats {
        MemoryStats {
            l1d: self.l1d.delta_since(&baseline.l1d),
            l2: self.l2.delta_since(&baseline.l2),
            dram_accesses: self.dram_accesses - baseline.dram_accesses,
            dram_bytes: self.dram_bytes - baseline.dram_bytes,
            vmu_bytes: self.vmu_bytes - baseline.vmu_bytes,
            vector_requests: self.vector_requests - baseline.vector_requests,
        }
    }

    /// Merges counters from another snapshot into this one.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l1d.read_hits += other.l1d.read_hits;
        self.l1d.read_misses += other.l1d.read_misses;
        self.l1d.write_hits += other.l1d.write_hits;
        self.l1d.write_misses += other.l1d.write_misses;
        self.l1d.writebacks += other.l1d.writebacks;
        self.l2.read_hits += other.l2.read_hits;
        self.l2.read_misses += other.l2.read_misses;
        self.l2.write_hits += other.l2.write_hits;
        self.l2.write_misses += other.l2.write_misses;
        self.l2.writebacks += other.l2.writebacks;
        self.dram_accesses += other.dram_accesses;
        self.dram_bytes += other.dram_bytes;
        self.vmu_bytes += other.vmu_bytes;
        self.vector_requests += other.vector_requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_totals() {
        let s = CacheStats {
            read_hits: 10,
            read_misses: 5,
            write_hits: 3,
            write_misses: 2,
            writebacks: 1,
        };
        assert_eq!(s.accesses(), 20);
        assert_eq!(s.hits(), 13);
        assert_eq!(s.misses(), 7);
        assert!((s.hit_rate() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let one = MemoryStats {
            l1d: CacheStats {
                read_hits: 1,
                read_misses: 2,
                write_hits: 3,
                write_misses: 4,
                writebacks: 5,
            },
            l2: CacheStats {
                read_hits: 6,
                read_misses: 7,
                write_hits: 8,
                write_misses: 9,
                writebacks: 10,
            },
            dram_accesses: 11,
            dram_bytes: 12,
            vmu_bytes: 13,
            vector_requests: 14,
        };
        let mut acc = one;
        acc.merge(&one);
        assert_eq!(acc.l1d.read_hits, 2);
        assert_eq!(acc.l2.writebacks, 20);
        assert_eq!(acc.dram_bytes, 24);
        assert_eq!(acc.vector_requests, 28);
    }
}
