//! # ava-memory — memory-system substrate for the AVA reproduction
//!
//! The paper evaluates its vector processor attached to a conventional
//! memory hierarchy (32 KB L1 caches, a 1 MB L2 with 12-cycle latency and
//! 512-bit lines, and DDR3 main memory; Table II). This crate provides that
//! substrate:
//!
//! * [`MainMemory`] — a sparse, byte-addressable *functional* memory with a
//!   bump allocator, used both as the simulation's backing store and as the
//!   home of the AVA Memory Vector Register File (M-VRF).
//! * [`Cache`] — a set-associative, write-back/write-allocate cache model
//!   with LRU replacement and hit/miss statistics.
//! * [`Dram`] — a fixed-latency, bandwidth-limited main-memory timing model.
//! * [`MemoryHierarchy`] — composes the functional memory with an L1D, a
//!   shared L2 and DRAM, and answers both functional accesses and timing
//!   queries ("how many cycles does a 128-element unit-stride access cost
//!   through the L2 port?").
//!
//! ```
//! use ava_memory::{MemoryHierarchy, HierarchyConfig};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let buf = mem.allocate(1024);
//! mem.write_f64(buf, 3.5);
//! assert_eq!(mem.read_f64(buf), 3.5);
//! let t = mem.vector_access(buf, 16 * 8, false);
//! assert!(t.total_cycles >= 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mem;
pub mod port;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{AccessTiming, HierarchyConfig, MemoryHierarchy};
pub use mem::MainMemory;
pub use port::BusPort;
pub use stats::{CacheStats, MemoryStats};
