//! The Physical Vector Register File (P-VRF).
//!
//! Functionally, the P-VRF is an array of physical registers each holding
//! `mvl` 64-bit elements. Structurally (for the area/energy model and the
//! documentation of Figure 1), it is implemented as eight 4R-2W SRAM banks
//! of 1 KB each, one per lane; the read/write control iterates
//! `MVL / lanes` times per access, which is why reconfiguring the MVL needs
//! no extra routing (paper §III.B).

use ava_isa::Element;

/// The physical vector register file.
///
/// ```
/// use ava_vpu::vrf::PhysicalVrf;
/// use ava_isa::Element;
/// let mut vrf = PhysicalVrf::new(8, 16, 8);
/// vrf.write(3, &[Element::from_f64(1.0); 16]);
/// assert_eq!(vrf.read(3)[0].as_f64(), 1.0);
/// assert_eq!(vrf.capacity_bytes(), 8 * 16 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalVrf {
    regs: Vec<Vec<Element>>,
    mvl: usize,
    lanes: usize,
    /// Per-element read accesses performed (energy accounting).
    read_elems: u64,
    /// Per-element write accesses performed (energy accounting).
    write_elems: u64,
}

impl PhysicalVrf {
    /// Creates a P-VRF with `num_regs` registers of `mvl` elements each,
    /// distributed over `lanes` banks.
    #[must_use]
    pub fn new(num_regs: usize, mvl: usize, lanes: usize) -> Self {
        assert!(num_regs >= 1 && mvl >= 1 && lanes >= 1);
        Self {
            regs: vec![vec![Element::ZERO; mvl]; num_regs],
            mvl,
            lanes,
            read_elems: 0,
            write_elems: 0,
        }
    }

    /// Number of physical registers.
    #[must_use]
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// Elements per register.
    #[must_use]
    pub fn mvl(&self) -> usize {
        self.mvl
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.regs.len() * self.mvl * 8
    }

    /// Number of lane banks.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles the banked register file needs to stream one whole register
    /// (`ceil(mvl / lanes)` — one element per lane per cycle).
    #[must_use]
    pub fn access_cycles(&self, vl: usize) -> u64 {
        (vl.div_ceil(self.lanes)) as u64
    }

    /// Reads the whole register (element accesses are counted for energy).
    pub fn read(&mut self, preg: usize) -> &[Element] {
        self.read_elems += self.mvl as u64;
        &self.regs[preg]
    }

    /// Reads the first `vl` elements of a register.
    pub fn read_vl(&mut self, preg: usize, vl: usize) -> &[Element] {
        let vl = vl.min(self.mvl);
        self.read_elems += vl as u64;
        &self.regs[preg][..vl]
    }

    /// Writes `values` into the register starting at element 0; elements
    /// beyond `values.len()` keep their previous contents (body/tail
    /// semantics are not modelled beyond this).
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the register.
    pub fn write(&mut self, preg: usize, values: &[Element]) {
        assert!(values.len() <= self.mvl, "write longer than register");
        self.write_elems += values.len() as u64;
        self.regs[preg][..values.len()].copy_from_slice(values);
    }

    /// Element read count so far (energy accounting).
    #[must_use]
    pub fn read_elems(&self) -> u64 {
        self.read_elems
    }

    /// Element write count so far (energy accounting).
    #[must_use]
    pub fn write_elems(&self) -> u64 {
        self.write_elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_the_baseline_configuration() {
        // 64 registers x 16 elements x 8 bytes = 8 KB over 8 lanes.
        let vrf = PhysicalVrf::new(64, 16, 8);
        assert_eq!(vrf.capacity_bytes(), 8 * 1024);
        assert_eq!(vrf.num_regs(), 64);
        assert_eq!(vrf.mvl(), 16);
        assert_eq!(vrf.lanes(), 8);
        assert_eq!(vrf.access_cycles(16), 2);
        assert_eq!(vrf.access_cycles(128), 16);
        assert_eq!(vrf.access_cycles(1), 1);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut vrf = PhysicalVrf::new(4, 8, 8);
        let vals: Vec<Element> = (0..8).map(|i| Element::from_f64(i as f64)).collect();
        vrf.write(2, &vals);
        assert_eq!(vrf.read(2), vals.as_slice());
    }

    #[test]
    fn partial_writes_preserve_the_tail() {
        let mut vrf = PhysicalVrf::new(2, 8, 8);
        vrf.write(0, &[Element::from_f64(9.0); 8]);
        vrf.write(0, &[Element::from_f64(1.0); 4]);
        let r = vrf.read(0).to_vec();
        assert_eq!(r[3].as_f64(), 1.0);
        assert_eq!(r[4].as_f64(), 9.0);
    }

    #[test]
    fn access_counters_accumulate() {
        let mut vrf = PhysicalVrf::new(2, 16, 8);
        vrf.write(0, &[Element::ZERO; 16]);
        let _ = vrf.read_vl(0, 4);
        let _ = vrf.read(0);
        assert_eq!(vrf.write_elems(), 16);
        assert_eq!(vrf.read_elems(), 20);
    }

    #[test]
    #[should_panic(expected = "longer than register")]
    fn oversized_writes_panic() {
        let mut vrf = PhysicalVrf::new(1, 4, 8);
        vrf.write(0, &[Element::ZERO; 5]);
    }
}
