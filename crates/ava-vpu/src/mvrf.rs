//! The Memory Vector Register File (M-VRF).
//!
//! The M-VRF is an ordinary region of memory (reserved by the
//! `set_virtual_vrf` intrinsic in the paper; by an allocation in the memory
//! hierarchy here) holding one full-MVL slot per Virtual Vector Register.
//! VVRs that do not fit in the P-VRF live here; the Swap Mechanism moves
//! them back and forth with Swap-Store / Swap-Load memory operations, which
//! travel through the same vector memory unit as ordinary vector accesses
//! and therefore consume real bandwidth and energy.

use ava_isa::Element;
use ava_memory::MemoryHierarchy;

/// The memory-resident second level of the vector register file.
///
/// ```
/// use ava_vpu::mvrf::MemoryVrf;
/// use ava_memory::MemoryHierarchy;
/// use ava_isa::Element;
/// let mut mem = MemoryHierarchy::default();
/// let mvrf = MemoryVrf::allocate(&mut mem, 64, 32);
/// mvrf.store(&mut mem, 7, &[Element::from_f64(2.5); 32]);
/// assert_eq!(mvrf.load(&mem, 7, 32)[31].as_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryVrf {
    base: u64,
    num_vvrs: usize,
    mvl: usize,
}

impl MemoryVrf {
    /// Reserves space for `num_vvrs` registers of `mvl` elements in the
    /// simulated memory (the paper's `set_virtual_vrf` intrinsic).
    #[must_use]
    pub fn allocate(mem: &mut MemoryHierarchy, num_vvrs: usize, mvl: usize) -> Self {
        let bytes = (num_vvrs * mvl * 8) as u64;
        let base = mem.allocate(bytes.max(8));
        Self {
            base,
            num_vvrs,
            mvl,
        }
    }

    /// Base address of the M-VRF region.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        (self.num_vvrs * self.mvl * 8) as u64
    }

    /// Address of the slot backing a VVR.
    ///
    /// # Panics
    ///
    /// Panics if `vvr` is out of range.
    #[must_use]
    pub fn slot_addr(&self, vvr: u16) -> u64 {
        assert!((vvr as usize) < self.num_vvrs, "VVR {vvr} out of range");
        self.base + (vvr as u64) * (self.mvl as u64) * 8
    }

    /// Writes a VVR's contents to its slot (the data movement of a
    /// Swap-Store).
    pub fn store(&self, mem: &mut MemoryHierarchy, vvr: u16, values: &[Element]) {
        let addr = self.slot_addr(vvr);
        for (i, v) in values.iter().enumerate() {
            mem.write_u64(addr + 8 * i as u64, v.bits());
        }
    }

    /// Reads `vl` elements of a VVR's slot (the data movement of a
    /// Swap-Load).
    #[must_use]
    pub fn load(&self, mem: &MemoryHierarchy, vvr: u16, vl: usize) -> Vec<Element> {
        let mut out = Vec::with_capacity(vl);
        self.load_into(mem, vvr, vl, &mut out);
        out
    }

    /// Reads `vl` elements of a VVR's slot into `out` (cleared first),
    /// reusing the buffer's capacity; the Swap-Load hot path stages through
    /// one such buffer instead of allocating per swap.
    pub fn load_into(&self, mem: &MemoryHierarchy, vvr: u16, vl: usize, out: &mut Vec<Element>) {
        let addr = self.slot_addr(vvr);
        out.clear();
        out.extend((0..vl).map(|i| Element::from_bits(mem.read_u64(addr + 8 * i as u64))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_sized_by_mvl() {
        let mut mem = MemoryHierarchy::default();
        let m = MemoryVrf::allocate(&mut mem, 64, 128);
        assert_eq!(m.size_bytes(), 64 * 128 * 8);
        assert_eq!(m.slot_addr(1) - m.slot_addr(0), 128 * 8);
        assert_eq!(m.slot_addr(63) - m.base(), 63 * 128 * 8);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let mut mem = MemoryHierarchy::default();
        let m = MemoryVrf::allocate(&mut mem, 8, 16);
        let vals: Vec<Element> = (0..16).map(|i| Element::from_f64(i as f64 * 1.5)).collect();
        m.store(&mut mem, 3, &vals);
        assert_eq!(m.load(&mem, 3, 16), vals);
        // Neighbouring slots are untouched.
        assert_eq!(m.load(&mem, 2, 16), vec![Element::ZERO; 16]);
        assert_eq!(m.load(&mem, 4, 16), vec![Element::ZERO; 16]);
    }

    #[test]
    fn distinct_mvrfs_do_not_overlap() {
        let mut mem = MemoryHierarchy::default();
        let a = MemoryVrf::allocate(&mut mem, 4, 16);
        let b = MemoryVrf::allocate(&mut mem, 4, 16);
        assert!(a.slot_addr(3) + 16 * 8 <= b.base());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let mut mem = MemoryHierarchy::default();
        let m = MemoryVrf::allocate(&mut mem, 4, 16);
        let _ = m.slot_addr(4);
    }
}
