//! The Swap Logic: victim selection for P-VRF ↔ M-VRF transfers.
//!
//! When the pre-issue stage needs a physical register but none is free, the
//! Swap Logic selects the resident VVR with the lowest Register Access
//! Counter value that is not a source (or the destination) of the current
//! instruction, and creates a Swap-Store to push its contents to the M-VRF
//! (paper §III.C). Values whose RAC already reached zero are reclaimed
//! *without* a Swap-Store (aggressive register reclamation).

use crate::rac::Rac;
use crate::rename::RenamedReg;
use crate::vrf_mapping::VrfMapping;

/// What the Swap Logic decided to do to obtain a free physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDecision {
    /// A physical register was already free; no action needed.
    AlreadyFree,
    /// The victim VVR's counter is zero, so its register can be reclaimed
    /// without writing anything to memory.
    Reclaim(RenamedReg),
    /// The victim VVR is still live; a Swap-Store to the M-VRF is required
    /// before its physical register can be reused.
    SwapStore(RenamedReg),
}

/// Stateless victim-selection logic (the state lives in the RAC and the
/// VRF-Mapping engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapLogic;

impl SwapLogic {
    /// Creates the swap logic.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Decides how to obtain one free physical register, given the current
    /// mapping state and RAC counters. `protected` lists the VVRs that must
    /// not be evicted (the current instruction's sources and destination, to
    /// avoid deadlock).
    ///
    /// Returns `None` when no physical register can be freed (every resident
    /// VVR is protected) — the caller must stall.
    #[must_use]
    pub fn plan_free_register(
        &self,
        mapping: &VrfMapping,
        rac: &Rac,
        protected: &[RenamedReg],
    ) -> Option<SwapDecision> {
        if mapping.has_free_physical() {
            return Some(SwapDecision::AlreadyFree);
        }
        let resident = mapping.resident_vvrs();
        let victim = rac.lowest_count_among(resident.iter(), protected)?;
        if rac.is_reclaimable(victim) {
            Some(SwapDecision::Reclaim(victim))
        } else {
            Some(SwapDecision::SwapStore(victim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(num_physical: usize) -> (VrfMapping, Rac) {
        (VrfMapping::new(64, num_physical), Rac::new(64))
    }

    #[test]
    fn free_register_needs_no_swap() {
        let (mapping, rac) = setup(4);
        let d = SwapLogic::new().plan_free_register(&mapping, &rac, &[]);
        assert_eq!(d, Some(SwapDecision::AlreadyFree));
    }

    #[test]
    fn zero_count_victims_are_reclaimed_without_store() {
        let (mut mapping, mut rac) = setup(2);
        mapping.allocate_physical(1).unwrap();
        mapping.allocate_physical(2).unwrap();
        rac.increment(2); // VVR 2 still has readers; VVR 1 does not.
        let d = SwapLogic::new().plan_free_register(&mapping, &rac, &[]);
        assert_eq!(d, Some(SwapDecision::Reclaim(1)));
    }

    #[test]
    fn live_victims_require_a_swap_store() {
        let (mut mapping, mut rac) = setup(2);
        mapping.allocate_physical(1).unwrap();
        mapping.allocate_physical(2).unwrap();
        rac.increment(1);
        rac.increment(1);
        rac.increment(2);
        // Both live; VVR 2 has the lower count so it is the victim.
        let d = SwapLogic::new().plan_free_register(&mapping, &rac, &[]);
        assert_eq!(d, Some(SwapDecision::SwapStore(2)));
    }

    #[test]
    fn protected_vvrs_are_never_selected() {
        let (mut mapping, mut rac) = setup(2);
        mapping.allocate_physical(1).unwrap();
        mapping.allocate_physical(2).unwrap();
        rac.increment(1);
        rac.increment(2);
        rac.increment(2);
        // VVR 1 would normally be the victim (lower count), but it is a
        // source of the current instruction.
        let d = SwapLogic::new().plan_free_register(&mapping, &rac, &[1]);
        assert_eq!(d, Some(SwapDecision::SwapStore(2)));
    }

    #[test]
    fn all_protected_means_stall() {
        let (mut mapping, mut rac) = setup(2);
        mapping.allocate_physical(1).unwrap();
        mapping.allocate_physical(2).unwrap();
        rac.increment(1);
        rac.increment(2);
        let d = SwapLogic::new().plan_free_register(&mapping, &rac, &[1, 2]);
        assert_eq!(d, None);
    }
}
