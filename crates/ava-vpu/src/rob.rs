//! Reorder buffer timing model.
//!
//! Vector instructions are tracked in a reorder buffer from dispatch to
//! in-order commit (paper Figure 1). The model answers two questions: when
//! can a new instruction be admitted (a slot must be free), and when does a
//! given instruction commit (in order, after it has executed).

use std::collections::VecDeque;

/// Reorder-buffer occupancy and commit-time tracker.
///
/// ```
/// use ava_vpu::rob::ReorderBuffer;
/// let mut rob = ReorderBuffer::new(2);
/// assert_eq!(rob.admit_time(10), 10);
/// let c1 = rob.push(10, 20);
/// let c2 = rob.push(11, 15);          // completes early but commits after c1
/// assert_eq!(c1, 20);
/// assert_eq!(c2, 21);
/// // Both slots are taken until the oldest commits.
/// assert_eq!(rob.admit_time(12), 20);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    capacity: usize,
    /// Commit times of the youngest `capacity` instructions, oldest first.
    commit_times: VecDeque<u64>,
    last_commit: u64,
    total_committed: u64,
}

impl ReorderBuffer {
    /// Creates an empty reorder buffer with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "reorder buffer needs at least one entry");
        Self {
            capacity,
            commit_times: VecDeque::with_capacity(capacity),
            last_commit: 0,
            total_committed: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest cycle at which a new instruction arriving at `at` can claim
    /// a slot: immediately if the buffer has spare capacity, otherwise when
    /// the instruction `capacity` positions older commits.
    #[must_use]
    pub fn admit_time(&self, at: u64) -> u64 {
        if self.commit_times.len() < self.capacity {
            at
        } else {
            let oldest = self.commit_times[self.commit_times.len() - self.capacity];
            at.max(oldest)
        }
    }

    /// Records an instruction that was dispatched at `dispatch` and finishes
    /// execution at `completion`; returns its in-order commit time
    /// (one commit per cycle).
    pub fn push(&mut self, dispatch: u64, completion: u64) -> u64 {
        let commit = completion.max(dispatch).max(self.last_commit + 1);
        self.last_commit = commit;
        self.total_committed += 1;
        self.commit_times.push_back(commit);
        if self.commit_times.len() > self.capacity {
            self.commit_times.pop_front();
        }
        commit
    }

    /// Commit time of the youngest instruction pushed so far (the cycle at
    /// which the whole program has drained once every instruction is pushed).
    #[must_use]
    pub fn last_commit(&self) -> u64 {
        self.last_commit
    }

    /// Total instructions committed.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.total_committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_are_in_order_even_when_completion_is_not() {
        let mut rob = ReorderBuffer::new(8);
        let c1 = rob.push(0, 100);
        let c2 = rob.push(1, 5);
        let c3 = rob.push(2, 6);
        assert_eq!(c1, 100);
        assert_eq!(c2, 101);
        assert_eq!(c3, 102);
        assert_eq!(rob.last_commit(), 102);
        assert_eq!(rob.committed(), 3);
    }

    #[test]
    fn admission_stalls_when_full() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(0, 50);
        rob.push(0, 60);
        // Buffer full: a new instruction arriving at cycle 5 waits for the
        // instruction two-back (commit at 50).
        assert_eq!(rob.admit_time(5), 50);
        rob.push(50, 70);
        // Entries two-back is now the one committing at 60.
        assert_eq!(rob.admit_time(55), 60);
    }

    #[test]
    fn commit_rate_is_one_per_cycle() {
        let mut rob = ReorderBuffer::new(16);
        let a = rob.push(0, 10);
        let b = rob.push(0, 10);
        let c = rob.push(0, 10);
        assert_eq!((a, b, c), (10, 11, 12));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = ReorderBuffer::new(0);
    }
}
