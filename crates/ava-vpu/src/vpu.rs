//! The decoupled VPU model: functional + cycle-level simulation of a vector
//! program on one configuration (AVA, NATIVE or RG).
//!
//! The model processes the dynamic vector instruction stream in program
//! order and computes, for every instruction, the cycle at which each
//! pipeline stage would handle it, honouring the structural resources of the
//! design: the one-instruction-per-cycle front end, the renamed-register
//! pools (VVRs or physical registers), the physical-register file and its
//! Swap Mechanism (AVA), the two decoupled in-order issue queues, the single
//! arithmetic and single memory pipeline, the reorder buffer, and the shared
//! memory hierarchy. Every instruction is also executed *functionally*, so
//! workloads validate numerically against their scalar references.

use ava_isa::{
    Element, InstrKind, InstrRole, MemAccess, Opcode, Operand, Program, VReg, VecInstr, VlMode,
};
use ava_memory::{AccessTiming, MemoryHierarchy};

use crate::config::{RenameMode, VpuConfig};
use crate::exec::{execute_into, OperandValue};
use crate::issue::IssueQueue;
use crate::mvrf::MemoryVrf;
use crate::rac::Rac;
use crate::rename::{RenameUnit, RenamedReg};
use crate::rob::ReorderBuffer;
use crate::stats::VpuStats;
use crate::vrf::PhysicalVrf;
use crate::vrf_mapping::{Location, VrfMapping};

/// Result of running one program on one VPU configuration.
#[derive(Debug, Clone)]
pub struct VpuRunResult {
    /// Configuration name the program ran on.
    pub config_name: String,
    /// Total VPU cycles until the last instruction committed.
    pub cycles: u64,
    /// Instruction and energy-relevant event counters.
    pub stats: VpuStats,
}

impl VpuRunResult {
    /// Execution time in seconds at the VPU clock frequency (1 GHz).
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / 1.0e9
    }
}

/// The decoupled vector processing unit.
///
/// See the crate-level documentation for a usage example.
#[derive(Debug, Clone)]
pub struct Vpu {
    config: VpuConfig,
    // -------- structural state --------
    rename: RenameUnit,
    mapping: VrfMapping,
    rac: Rac,
    pvrf: PhysicalVrf,
    mvrf: Option<MemoryVrf>,
    rob: ReorderBuffer,
    arith_q: IssueQueue,
    mem_q: IssueQueue,
    // -------- timing state --------
    frontend_free: u64,
    arith_unit_free: u64,
    mem_unit_free: u64,
    /// Cycle at which each renamed register's current value is available.
    value_ready: Vec<u64>,
    /// Cycle at which each renamed register becomes allocatable again after
    /// being released (old destination freed at commit).
    renamed_free_at: Vec<u64>,
    /// Cycle at which each physical register may be overwritten by a new
    /// producer (previous readers done / swap-store drained / commit).
    preg_writable: Vec<u64>,
    /// Latest completion among readers of each physical register's value.
    preg_readers_done: Vec<u64>,
    /// Whether the M-VRF slot of each VVR already holds the current value
    /// (a VVR is written once, so a second eviction needs no Swap-Store).
    mvrf_clean: Vec<bool>,
    // -------- scratch buffers (reused across instructions) --------
    /// This instruction's logical source registers.
    src_regs_buf: Vec<VReg>,
    /// Renamed registers that must not be evicted mid-instruction.
    protected_buf: Vec<RenamedReg>,
    /// Physical register of each register source, in operand order.
    src_pregs_buf: Vec<usize>,
    /// Functional values of each source operand (register operands only).
    operand_bufs: Vec<Vec<Element>>,
    /// Functional result strip of the executing instruction.
    strip_buf: Vec<Element>,
    /// Per-element addresses of strided/indexed accesses.
    addr_buf: Vec<u64>,
    /// Swap-Load staging buffer (M-VRF -> P-VRF transfers).
    swap_buf: Vec<Element>,
    // -------- architectural state --------
    vl: usize,
    stats: VpuStats,
    finish_time: u64,
}

impl Vpu {
    /// Builds a VPU for `config`. For AVA configurations this reserves the
    /// M-VRF backing store in the memory hierarchy (the paper's
    /// `set_virtual_vrf` step).
    #[must_use]
    pub fn new(config: VpuConfig, mem: &mut MemoryHierarchy) -> Self {
        let pregs = config.physical_regs();
        let pool = config.rename_pool();
        let mvrf = match config.mode {
            RenameMode::Ava => Some(MemoryVrf::allocate(mem, config.vvr_count, config.mvl)),
            RenameMode::Native => None,
        };
        Self {
            rename: RenameUnit::new(pool),
            mapping: VrfMapping::new(pool, pregs),
            rac: Rac::new(pool),
            pvrf: PhysicalVrf::new(pregs, config.mvl, config.lanes),
            mvrf,
            rob: ReorderBuffer::new(config.rob_entries),
            arith_q: IssueQueue::new(config.arith_queue_entries),
            mem_q: IssueQueue::new(config.mem_queue_entries),
            frontend_free: 0,
            arith_unit_free: 0,
            mem_unit_free: 0,
            value_ready: vec![0; pool],
            renamed_free_at: vec![0; pool],
            preg_writable: vec![0; pregs],
            preg_readers_done: vec![0; pregs],
            mvrf_clean: vec![false; pool],
            src_regs_buf: Vec::new(),
            protected_buf: Vec::new(),
            src_pregs_buf: Vec::new(),
            operand_bufs: Vec::new(),
            strip_buf: Vec::new(),
            addr_buf: Vec::new(),
            swap_buf: Vec::new(),
            vl: config.mvl,
            stats: VpuStats::default(),
            finish_time: 0,
            config,
        }
    }

    /// The configuration this VPU was built with.
    #[must_use]
    pub fn config(&self) -> &VpuConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &VpuStats {
        &self.stats
    }

    /// Runs a program to completion, returning cycle count and statistics.
    /// The VPU keeps its architectural state afterwards, so several programs
    /// can be run back to back on the same instance.
    pub fn run(&mut self, program: &Program, mem: &mut MemoryHierarchy) -> VpuRunResult {
        self.run_range(program, 0..program.len(), mem)
    }

    /// Runs the instructions `range` of `program`, returning the cycle count
    /// and statistics of that segment alone. Because the VPU keeps all its
    /// state between calls, running a program as consecutive segments is
    /// observationally identical to one [`Vpu::run`] over the whole program
    /// — the per-segment results simply partition the totals. The simulator
    /// uses this to report per-phase breakdowns of multi-kernel composites
    /// without perturbing the single-program timing model.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn run_range(
        &mut self,
        program: &Program,
        range: std::ops::Range<usize>,
        mem: &mut MemoryHierarchy,
    ) -> VpuRunResult {
        let start_stats = self.stats;
        let start_time = self.finish_time;
        for instr in &program.instructions()[range] {
            self.step(instr, mem);
        }
        let mut stats = self.stats;
        subtract_stats(&mut stats, &start_stats);
        VpuRunResult {
            config_name: self.config.name.clone(),
            cycles: self.finish_time.saturating_sub(start_time),
            stats,
        }
    }

    // ------------------------------------------------------------------
    // Per-instruction processing
    // ------------------------------------------------------------------

    fn step(&mut self, instr: &VecInstr, mem: &mut MemoryHierarchy) {
        // Front end: one instruction per cycle, gated by ROB occupancy.
        let dispatch = self.rob.admit_time(self.frontend_free);
        self.frontend_free = dispatch + self.config.frontend_cycles_per_instr;

        if instr.kind() == InstrKind::Config {
            let requested = instr.setvl_request.unwrap_or(self.config.mvl);
            self.vl = requested.min(self.config.mvl);
            self.stats.config_instrs += 1;
            let commit = self.rob.push(dispatch, dispatch + 1);
            self.finish_time = self.finish_time.max(commit);
            return;
        }

        let vl_eff = match instr.vl_mode {
            VlMode::Current => self.vl,
            VlMode::FullMvl => self.config.mvl,
        };

        // ---------------- first-level renaming ----------------
        self.src_regs_buf.clear();
        self.src_regs_buf.extend(instr.source_regs());
        let renamed = self
            .rename
            .rename(instr.dst, &self.src_regs_buf)
            .unwrap_or_else(|e| panic!("rename failed for `{instr}`: {e}"));
        let mut rename_time = dispatch;
        if let Some(d) = renamed.dst {
            // The renamed register popped from the FRL may still be draining
            // (it is released functionally at processing time but only
            // becomes available at the releasing instruction's commit).
            let free_at = self.renamed_free_at[d as usize];
            if free_at > rename_time {
                self.stats.rename_stall_cycles += free_at - rename_time;
                rename_time = free_at;
            }
        }

        // RAC bookkeeping (rename-time updates, §III.C).
        if self.config.mode == RenameMode::Ava {
            if let Some(d) = renamed.dst {
                self.rac.increment(d);
            }
            for &s in &renamed.srcs {
                self.rac.increment(s);
            }
            if let Some(old) = renamed.old_dst {
                self.rac.decrement(old);
            }
        }

        // ---------------- pre-issue: VVR -> physical mapping ----------------
        // The scratch vectors are moved out of `self` for the duration of
        // the instruction (the swap path needs `&mut self`) and moved back
        // at the end, so the steady state allocates nothing.
        let mut preissue_time = rename_time + 1;
        let mut protected = std::mem::take(&mut self.protected_buf);
        protected.clear();
        protected.extend_from_slice(&renamed.srcs);
        if let Some(d) = renamed.dst {
            protected.push(d);
        }

        // Map (and if needed swap in) every source VVR, then the destination.
        let mut src_pregs = std::mem::take(&mut self.src_pregs_buf);
        src_pregs.clear();
        let dst_preg = match self.config.mode {
            RenameMode::Native => {
                // Renamed registers *are* physical registers.
                src_pregs.extend(renamed.srcs.iter().map(|&r| r as usize));
                renamed.dst.map(|d| d as usize)
            }
            RenameMode::Ava => {
                for &vvr in &renamed.srcs {
                    let preg = self.ensure_resident(vvr, &protected, &mut preissue_time, mem);
                    src_pregs.push(preg);
                }
                renamed
                    .dst
                    .map(|vvr| self.allocate_preg_for(vvr, &protected, &mut preissue_time, mem))
            }
        };

        // ---------------- functional execution ----------------
        let result = self.execute_functional(instr, &src_pregs, vl_eff, mem);

        // ---------------- issue + execute timing ----------------
        let mut data_ready = preissue_time;
        for &s in &renamed.srcs {
            data_ready = data_ready.max(self.value_ready[s as usize]);
        }
        let operands_ready = data_ready;

        let (_start, chain_ready, mut completion) = match instr.kind() {
            InstrKind::Memory => {
                let timing = self.memory_timing(instr, &result, vl_eff, mem);
                // Stores issue as soon as their address is ready: the data is
                // streamed from the register file while it is being produced
                // (chaining through the store data path), so the issue gate
                // only covers the address phase. Loads and arithmetic wait
                // for their operands.
                let issue_gate = if instr.opcode.is_store() {
                    preissue_time
                } else {
                    operands_ready
                };
                self.schedule_memory(preissue_time, issue_gate, &timing)
            }
            InstrKind::Arithmetic => {
                self.schedule_arith(instr.opcode, preissue_time, operands_ready, vl_eff)
            }
            InstrKind::Config => unreachable!("config handled above"),
        };
        if instr.opcode.is_store() {
            // A store cannot complete before the data it writes exists.
            completion = completion.max(data_ready + 1);
        }
        if let Some(p) = dst_preg {
            // The destination's physical register may still be draining (its
            // previous value awaiting commit or a swap-store); execution can
            // start, but the writeback — and therefore completion — waits.
            completion = completion.max(self.preg_writable[p] + 1);
        }

        // Record value/production times and reader times. Dependent
        // instructions may *chain* on the producer as soon as its first
        // element group is available, not only at full completion.
        if let Some(d) = renamed.dst {
            self.value_ready[d as usize] = chain_ready;
        }
        for &p in &src_pregs {
            self.preg_readers_done[p] = self.preg_readers_done[p].max(completion);
        }

        // Commit in order; release the old destination at commit.
        let commit = self.rob.push(dispatch, completion);
        self.finish_time = self.finish_time.max(commit);
        if let Some(old) = renamed.old_dst {
            self.release_renamed(old, commit);
        }
        if self.config.mode == RenameMode::Ava {
            // Source-read decrements. The hardware applies them at commit for
            // recovery safety; the model applies them as soon as the reading
            // instruction is processed, which lets the counters reflect
            // "no remaining consumers" with the same precision the in-order
            // pipeline would observe.
            for &s in &renamed.srcs {
                self.rac.decrement(s);
            }
        }

        // Write back functional results (the strip buffer holds them).
        if result.has_dst && renamed.dst.is_some() {
            let preg = dst_preg.expect("destination must have a physical register");
            self.pvrf.write(preg, &self.strip_buf);
            let elems = self.strip_buf.len();
            self.count_writeback(elems);
        }

        self.count_instruction(instr, vl_eff, &src_pregs);

        // Return the scratch vectors for the next instruction.
        self.protected_buf = protected;
        self.src_pregs_buf = src_pregs;
    }

    // ------------------------------------------------------------------
    // AVA swap mechanism
    // ------------------------------------------------------------------

    /// Ensures `vvr` is resident in the P-VRF, generating a Swap-Load (and a
    /// preceding Swap-Store if no register is free). Returns its physical
    /// register.
    fn ensure_resident(
        &mut self,
        vvr: RenamedReg,
        protected: &[RenamedReg],
        preissue_time: &mut u64,
        mem: &mut MemoryHierarchy,
    ) -> usize {
        match self.mapping.location(vvr) {
            Location::Physical(p) => p,
            Location::Memory => {
                let _free_ready = self.free_one_preg(protected, *preissue_time, mem);
                let preg = self
                    .mapping
                    .allocate_physical(vvr)
                    .expect("a physical register was just freed");
                // Swap-Load: M-VRF -> P-VRF, through the vector memory unit,
                // staged through the reusable swap buffer.
                let mvrf = self.mvrf.expect("AVA configurations have an M-VRF");
                let slot = mvrf.slot_addr(vvr);
                let mut values = std::mem::take(&mut self.swap_buf);
                mvrf.load_into(mem, vvr, self.config.mvl, &mut values);
                self.pvrf.write(preg, &values);
                self.swap_buf = values;
                let timing = mem.vector_access(slot, (self.config.mvl * 8) as u64, false);
                // Rule 2 (§III.C): the Swap-Load data may not overwrite the
                // physical register before the previous consumers have read
                // it. The fetch itself may start earlier (the incoming data
                // waits in the memory unit), so the gate applies to the
                // write-back side, not to the memory-queue issue slot.
                let ready = (*preissue_time).max(self.value_ready[vvr as usize]);
                let gate = self.preg_writable[preg].max(self.preg_readers_done[preg]);
                let (_, chain_ready, completion) =
                    self.schedule_memory(*preissue_time, ready, &timing);
                let chain_ready = chain_ready.max(gate + 1);
                let completion = completion.max(gate + 1);
                self.stats.swap_loads += 1;
                self.stats.vrf_write_elems += self.config.mvl as u64;
                // Consumers may chain on the Swap-Load as its data streams in;
                // the physical register is fully reusable only at completion.
                self.value_ready[vvr as usize] = chain_ready;
                self.preg_writable[preg] = completion;
                preg
            }
            Location::Unmapped => {
                panic!("VVR {vvr} read before any instruction produced it")
            }
        }
    }

    /// Allocates a physical register for a destination VVR, swapping a
    /// victim out to the M-VRF if necessary.
    fn allocate_preg_for(
        &mut self,
        vvr: RenamedReg,
        protected: &[RenamedReg],
        preissue_time: &mut u64,
        mem: &mut MemoryHierarchy,
    ) -> usize {
        // A destination VVR that is still mapped (e.g. an accumulator
        // written through `vfmacc` reading its own old value) keeps its
        // register.
        if let Location::Physical(p) = self.mapping.location(vvr) {
            return p;
        }
        if self.mapping.location(vvr) == Location::Memory {
            // The old contents are irrelevant (it is being overwritten), but
            // the mapping must move back to the P-VRF.
            return self.ensure_resident(vvr, protected, preissue_time, mem);
        }
        let _ = self.free_one_preg(protected, *preissue_time, mem);
        self.mapping
            .allocate_physical(vvr)
            .expect("a physical register was just freed")
    }

    /// Makes sure at least one physical register is free, emitting a
    /// Swap-Store or reclaiming a dead value if needed. Returns the cycle at
    /// which the freed register becomes writable.
    fn free_one_preg(
        &mut self,
        protected: &[RenamedReg],
        preissue_time: u64,
        mem: &mut MemoryHierarchy,
    ) -> u64 {
        if self.mapping.has_free_physical() {
            return preissue_time;
        }
        // Reclaimable victim (RAC == 0): free the register with no memory
        // traffic at all (aggressive register reclamation). Among the dead
        // values, prefer one whose consumers have already drained from the
        // execution pipeline so the recycled register is usable immediately.
        let reclaim = self
            .mapping
            .resident_vvrs()
            .into_iter()
            .filter(|v| !protected.contains(v) && self.rac.is_reclaimable(*v))
            .min_by_key(|&v| {
                let preg = self
                    .mapping
                    .physical_of(v)
                    .expect("resident VVR has a register");
                (
                    self.preg_readers_done[preg].max(self.value_ready[v as usize]),
                    v,
                )
            });
        if let Some(victim) = reclaim {
            let preg = self
                .mapping
                .physical_of(victim)
                .expect("reclaim victim is resident");
            self.mapping.release(victim);
            self.stats.aggressive_reclaims += 1;
            self.preg_writable[preg] = self.preg_writable[preg].max(self.preg_readers_done[preg]);
            return self.preg_writable[preg];
        }

        // Otherwise a swap is needed. The RAC identifies the least-referenced
        // candidates; among those, prefer a victim whose value already exists
        // and whose consumers have drained, so the Swap-Store (and the new
        // owner's write) stall the memory queue as little as possible.
        let victim = self
            .mapping
            .resident_vvrs()
            .into_iter()
            .filter(|v| !protected.contains(v))
            .min_by_key(|&v| {
                let preg = self
                    .mapping
                    .physical_of(v)
                    .expect("resident VVR has a register");
                let blocking = self.value_ready[v as usize].max(self.preg_readers_done[preg]);
                (u64::from(self.rac.count(v)), blocking, v)
            })
            .unwrap_or_else(|| {
                panic!(
                    "swap deadlock: every resident VVR is a source of the current instruction \
                     (physical registers: {}, protected: {})",
                    self.mapping.num_physical(),
                    protected.len()
                )
            });

        let preg = self
            .mapping
            .physical_of(victim)
            .expect("swap victim is resident");
        let mvrf = self.mvrf.expect("AVA configurations have an M-VRF");
        let completion = if self.mvrf_clean[victim as usize] {
            // The M-VRF already holds an up-to-date copy (each VVR is written
            // exactly once), so this eviction needs no Swap-Store.
            self.preg_readers_done[preg].max(preissue_time)
        } else {
            // Functional move: P-VRF -> M-VRF, straight from the register
            // file slice (no staging copy needed on the store side).
            mvrf.store(mem, victim, self.pvrf.read(preg));
            let slot = mvrf.slot_addr(victim);
            let timing = mem.vector_access(slot, (self.config.mvl * 8) as u64, true);
            // The Swap-Store reads the victim's value; it cannot start
            // before the value exists.
            let ready = preissue_time.max(self.value_ready[victim as usize]);
            let (_, _, completion) = self.schedule_memory(preissue_time, ready, &timing);
            self.stats.swap_stores += 1;
            self.stats.vrf_read_elems += self.config.mvl as u64;
            self.mvrf_clean[victim as usize] = true;
            completion
        };
        self.mapping.move_to_memory(victim);
        // Rule 1 (§III.C): the new owner may write the physical register
        // only once the Swap-Store has executed (or, for a clean victim,
        // once its consumers have read it).
        self.preg_writable[preg] = completion.max(self.preg_readers_done[preg]);
        completion
    }

    /// Releases a renamed register (old destination) at commit time.
    fn release_renamed(&mut self, reg: RenamedReg, commit: u64) {
        self.rename.release(reg);
        self.renamed_free_at[reg as usize] = commit;
        if self.config.mode == RenameMode::Ava {
            // The VVR id will be reused; clear its counter and invalidate
            // its M-VRF copy.
            self.rac.clear(reg);
            self.mvrf_clean[reg as usize] = false;
            if let Some(preg) = self.mapping.physical_of(reg) {
                self.preg_writable[preg] = commit.max(self.preg_readers_done[preg]);
            }
            self.mapping.release(reg);
        } else {
            let preg = reg as usize;
            self.preg_writable[preg] = commit.max(self.preg_readers_done[preg]);
        }
    }

    // ------------------------------------------------------------------
    // Timing helpers
    // ------------------------------------------------------------------

    /// Schedules an arithmetic instruction. Returns
    /// `(issue_start, chain_ready, completion)`: `chain_ready` is when the
    /// first result elements exist (dependents may chain on it), while
    /// `completion` is when the last element retires.
    fn schedule_arith(
        &mut self,
        opcode: Opcode,
        enter: u64,
        ready: u64,
        vl: usize,
    ) -> (u64, u64, u64) {
        let class = opcode.exec_class();
        let enter = self.arith_q.admit_time(enter);
        // A full queue back-pressures the in-order front end: nothing
        // younger can be renamed/pre-issued until this instruction has a
        // queue slot.
        self.frontend_free = self.frontend_free.max(enter);
        let start = self
            .arith_q
            .in_order_issue_time(ready.max(enter).max(self.arith_unit_free));
        let groups = vl.div_ceil(self.config.lanes) as u64;
        let occupancy = (groups * class.recurrence()).max(1);
        let chain_ready = start + class.startup_latency() + 1;
        let completion = start + class.startup_latency() + occupancy;
        self.arith_unit_free = start + occupancy;
        self.arith_q.record(enter, start);
        self.stats.arith_busy_cycles += occupancy;
        self.stats.queue_stall_cycles += enter.saturating_sub(ready.min(enter));
        (start, chain_ready, completion)
    }

    /// Schedules a memory instruction. Returns
    /// `(issue_start, chain_ready, completion)`; `chain_ready` is when the
    /// first data beat returns from the L2/DRAM so dependents can chain.
    fn schedule_memory(
        &mut self,
        enter: u64,
        ready: u64,
        timing: &AccessTiming,
    ) -> (u64, u64, u64) {
        let enter = self.mem_q.admit_time(enter);
        // Queue-full back-pressure reaches the front end (paper §III.C: the
        // pre-issue stage stalls until its queue has a free slot).
        self.frontend_free = self.frontend_free.max(enter);
        let start = self
            .mem_q
            .in_order_issue_time(ready.max(enter).max(self.mem_unit_free));
        let occupancy = self.config.mem_op_overhead + timing.occupancy_cycles.max(1);
        let latency_to_first = timing
            .total_cycles
            .saturating_sub(timing.occupancy_cycles)
            .max(1);
        let chain_ready = start + self.config.mem_op_overhead + latency_to_first + 1;
        let completion = start + self.config.mem_op_overhead + timing.total_cycles.max(1);
        self.mem_unit_free = start + occupancy;
        self.mem_q.record(enter, start);
        self.stats.mem_busy_cycles += occupancy;
        (start, chain_ready, completion)
    }

    fn memory_timing(
        &mut self,
        instr: &VecInstr,
        result: &FunctionalResult,
        vl: usize,
        mem: &mut MemoryHierarchy,
    ) -> AccessTiming {
        let access = instr
            .mem
            .expect("memory instruction carries an address descriptor");
        let is_write = instr.opcode.is_store();
        match instr.opcode {
            Opcode::VLoad | Opcode::VStore => {
                mem.vector_access(access.base, (vl * 8) as u64, is_write)
            }
            Opcode::VLoadStrided | Opcode::VStoreStrided => {
                self.addr_buf.clear();
                self.addr_buf.extend(
                    (0..vl).map(|i| (access.base as i64 + access.stride * i as i64) as u64),
                );
                mem.vector_access_elements(&self.addr_buf, is_write)
            }
            Opcode::VLoadIndexed | Opcode::VStoreIndexed => {
                assert!(
                    result.has_addrs,
                    "indexed access computed element addresses"
                );
                mem.vector_access_elements(&self.addr_buf, is_write)
            }
            _ => unreachable!("not a memory opcode"),
        }
    }

    // ------------------------------------------------------------------
    // Functional execution
    // ------------------------------------------------------------------

    /// Reads the functional value of every register operand into the
    /// per-slot scratch buffers (scalar slots are just cleared); the buffers
    /// are reused across instructions.
    fn read_operand_values(&mut self, instr: &VecInstr, src_pregs: &[usize], vl: usize) {
        while self.operand_bufs.len() < instr.srcs.len() {
            self.operand_bufs.push(Vec::new());
        }
        let mut preg_iter = src_pregs.iter();
        for (i, op) in instr.srcs.iter().enumerate() {
            match op {
                Operand::Reg(_) => {
                    let preg = *preg_iter
                        .next()
                        .expect("source register without a physical mapping");
                    let values = self.pvrf.read_vl(preg, vl);
                    self.operand_bufs[i].clear();
                    self.operand_bufs[i].extend_from_slice(values);
                }
                Operand::Scalar(_) => self.operand_bufs[i].clear(),
            }
        }
    }

    /// Functionally executes one instruction. Result data lands in the
    /// reusable scratch buffers: destination values in `strip_buf` (when
    /// `has_dst`), per-element addresses in `addr_buf` (when `has_addrs`).
    fn execute_functional(
        &mut self,
        instr: &VecInstr,
        src_pregs: &[usize],
        vl: usize,
        mem: &mut MemoryHierarchy,
    ) -> FunctionalResult {
        self.read_operand_values(instr, src_pregs, vl);

        match instr.opcode {
            Opcode::VLoad | Opcode::VLoadStrided => {
                let m = instr.mem.expect("load carries an address");
                self.strip_buf.clear();
                self.strip_buf.extend((0..vl).map(|i| {
                    let addr = (m.base as i64 + effective_stride(&m) * i as i64) as u64;
                    Element::from_bits(mem.read_u64(addr))
                }));
                FunctionalResult::DST
            }
            Opcode::VLoadIndexed => {
                let m = instr.mem.expect("gather carries an address");
                let idx = &self.operand_bufs[0];
                self.addr_buf.clear();
                self.addr_buf.extend((0..vl).map(|i| {
                    m.base
                        .wrapping_add((idx[i].as_i64() as u64).wrapping_mul(8))
                }));
                self.strip_buf.clear();
                self.strip_buf.extend(
                    self.addr_buf
                        .iter()
                        .map(|&a| Element::from_bits(mem.read_u64(a))),
                );
                FunctionalResult::DST_AND_ADDRS
            }
            Opcode::VStore | Opcode::VStoreStrided => {
                let m = instr.mem.expect("store carries an address");
                let data = &self.operand_bufs[0];
                for i in 0..vl {
                    let addr = (m.base as i64 + effective_stride(&m) * i as i64) as u64;
                    mem.write_u64(addr, data.get(i).copied().unwrap_or(Element::ZERO).bits());
                }
                FunctionalResult::NONE
            }
            Opcode::VStoreIndexed => {
                let m = instr.mem.expect("scatter carries an address");
                let idx = &self.operand_bufs[1];
                self.addr_buf.clear();
                self.addr_buf.extend((0..vl).map(|i| {
                    m.base
                        .wrapping_add((idx[i].as_i64() as u64).wrapping_mul(8))
                }));
                let data = &self.operand_bufs[0];
                for (i, &a) in self.addr_buf.iter().enumerate() {
                    mem.write_u64(a, data.get(i).copied().unwrap_or(Element::ZERO).bits());
                }
                FunctionalResult::ADDRS
            }
            Opcode::SetVl => FunctionalResult::NONE,
            _ => {
                let mut ops = [OperandValue::Scalar(Element::ZERO); crate::rename::MAX_SRCS];
                let n = instr.srcs.len();
                for (i, op) in instr.srcs.iter().enumerate() {
                    ops[i] = match op {
                        Operand::Reg(_) => OperandValue::Vector(&self.operand_bufs[i]),
                        Operand::Scalar(s) => OperandValue::Scalar(*s),
                    };
                }
                execute_into(instr.opcode, &ops[..n], vl, &mut self.strip_buf);
                FunctionalResult::DST
            }
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    fn count_writeback(&mut self, elems: usize) {
        self.stats.vrf_write_elems += elems as u64;
    }

    fn count_instruction(&mut self, instr: &VecInstr, vl: usize, src_pregs: &[usize]) {
        self.stats.vrf_read_elems += (src_pregs.len() * vl) as u64;
        match instr.kind() {
            InstrKind::Arithmetic => {
                self.stats.arith_instrs += 1;
                let class = instr.opcode.exec_class();
                if class.is_fp() {
                    self.stats.fpu_ops += vl as u64;
                } else {
                    self.stats.int_ops += vl as u64;
                }
            }
            InstrKind::Memory => match (instr.opcode.is_load(), instr.role) {
                (true, InstrRole::SpillLoad) => self.stats.spill_loads += 1,
                (false, InstrRole::SpillStore) => self.stats.spill_stores += 1,
                (true, _) => self.stats.vloads += 1,
                (false, _) => self.stats.vstores += 1,
            },
            InstrKind::Config => self.stats.config_instrs += 1,
        }
    }
}

/// Effective per-element stride of a memory descriptor (unit stride = 8).
fn effective_stride(m: &MemAccess) -> i64 {
    if m.stride == 0 {
        8
    } else {
        m.stride
    }
}

/// Outcome of functionally executing one instruction. The data itself lives
/// in the VPU's reusable scratch buffers (`strip_buf` / `addr_buf`); these
/// flags say which of them the instruction filled.
#[derive(Clone, Copy)]
struct FunctionalResult {
    has_dst: bool,
    has_addrs: bool,
}

impl FunctionalResult {
    const NONE: Self = Self {
        has_dst: false,
        has_addrs: false,
    };
    const DST: Self = Self {
        has_dst: true,
        has_addrs: false,
    };
    const ADDRS: Self = Self {
        has_dst: false,
        has_addrs: true,
    };
    const DST_AND_ADDRS: Self = Self {
        has_dst: true,
        has_addrs: true,
    };
}

fn subtract_stats(stats: &mut VpuStats, baseline: &VpuStats) {
    stats.arith_instrs -= baseline.arith_instrs;
    stats.vloads -= baseline.vloads;
    stats.vstores -= baseline.vstores;
    stats.spill_loads -= baseline.spill_loads;
    stats.spill_stores -= baseline.spill_stores;
    stats.swap_loads -= baseline.swap_loads;
    stats.swap_stores -= baseline.swap_stores;
    stats.config_instrs -= baseline.config_instrs;
    stats.aggressive_reclaims -= baseline.aggressive_reclaims;
    stats.rename_stall_cycles -= baseline.rename_stall_cycles;
    stats.queue_stall_cycles -= baseline.queue_stall_cycles;
    stats.vrf_read_elems -= baseline.vrf_read_elems;
    stats.vrf_write_elems -= baseline.vrf_write_elems;
    stats.fpu_ops -= baseline.fpu_ops;
    stats.int_ops -= baseline.int_ops;
    stats.arith_busy_cycles -= baseline.arith_busy_cycles;
    stats.mem_busy_cycles -= baseline.mem_busy_cycles;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Program;

    /// Builds `a[i] = a[i] * 2 + b[i]` over `n` elements as a stripmined
    /// program for the given MVL, using two logical registers.
    fn axpy_like(mem: &mut MemoryHierarchy, n: usize, mvl: usize) -> (Program, u64, u64) {
        let a = mem.allocate((n * 8) as u64);
        let b = mem.allocate((n * 8) as u64);
        for i in 0..n {
            mem.write_f64(a + 8 * i as u64, i as f64);
            mem.write_f64(b + 8 * i as u64, 100.0 + i as f64);
        }
        let mut p = Program::new("axpy-like");
        let mut done = 0usize;
        while done < n {
            let vl = mvl.min(n - done);
            p.push(VecInstr::setvl(vl));
            let off = (8 * done) as u64;
            p.push(VecInstr::vload(VReg::new(1), a + off));
            p.push(VecInstr::vload(VReg::new(2), b + off));
            p.push(VecInstr::vfmacc(VReg::new(2), 2.0, VReg::new(1)));
            p.push(VecInstr::vstore(VReg::new(2), a + off));
            done += vl;
        }
        (p, a, b)
    }

    fn check_axpy(mem: &MemoryHierarchy, a: u64, n: usize) {
        for i in 0..n {
            let expect = 2.0 * i as f64 + (100.0 + i as f64);
            assert_eq!(mem.read_f64(a + 8 * i as u64), expect, "element {i}");
        }
    }

    #[test]
    fn native_runs_functionally_correct() {
        let mut mem = MemoryHierarchy::default();
        let (p, a, _) = axpy_like(&mut mem, 64, 16);
        let mut vpu = Vpu::new(VpuConfig::native_x(1), &mut mem);
        let r = vpu.run(&p, &mut mem);
        check_axpy(&mem, a, 64);
        assert!(r.cycles > 0);
        assert_eq!(r.stats.vloads, 8);
        assert_eq!(r.stats.vstores, 4);
        assert_eq!(r.stats.arith_instrs, 4);
        assert_eq!(r.stats.swap_ops(), 0);
    }

    #[test]
    fn segmented_runs_partition_a_single_run_exactly() {
        let mut mem1 = MemoryHierarchy::default();
        let (p, a, _) = axpy_like(&mut mem1, 256, 16);
        let mut mem2 = mem1.clone();
        let mut whole = Vpu::new(VpuConfig::ava_x(1), &mut mem1);
        let total = whole.run(&p, &mut mem1);

        let mut seg = Vpu::new(VpuConfig::ava_x(1), &mut mem2);
        let mid = p.len() / 2;
        let first = seg.run_range(&p, 0..mid, &mut mem2);
        let second = seg.run_range(&p, mid..p.len(), &mut mem2);
        check_axpy(&mem2, a, 256);
        assert_eq!(total.cycles, first.cycles + second.cycles);
        assert_eq!(total.stats.vloads, first.stats.vloads + second.stats.vloads);
        assert_eq!(
            total.stats.arith_busy_cycles,
            first.stats.arith_busy_cycles + second.stats.arith_busy_cycles
        );
    }

    #[test]
    fn ava_x1_matches_native_behaviour() {
        let mut mem = MemoryHierarchy::default();
        let (p, a, _) = axpy_like(&mut mem, 64, 16);
        let mut vpu = Vpu::new(VpuConfig::ava_x(1), &mut mem);
        let r = vpu.run(&p, &mut mem);
        check_axpy(&mem, a, 64);
        assert_eq!(
            r.stats.swap_ops(),
            0,
            "64 physical registers never overflow"
        );
    }

    #[test]
    fn longer_vectors_reduce_cycles_for_high_dlp() {
        let n = 2048;
        let mut cycles = Vec::new();
        for x in [1usize, 4, 8] {
            let mut mem = MemoryHierarchy::default();
            let (p, a, _) = axpy_like(&mut mem, n, 16 * x);
            let mut vpu = Vpu::new(VpuConfig::native_x(x), &mut mem);
            let r = vpu.run(&p, &mut mem);
            check_axpy(&mem, a, n);
            cycles.push(r.cycles);
        }
        assert!(cycles[1] < cycles[0], "X4 faster than X1: {cycles:?}");
        assert!(
            cycles[2] <= cycles[1],
            "X8 at least as fast as X4: {cycles:?}"
        );
        let speedup = cycles[0] as f64 / cycles[2] as f64;
        assert!(
            speedup > 1.5 && speedup < 3.5,
            "X8 speedup {speedup} outside the plausible range"
        );
    }

    #[test]
    fn ava_x8_is_functionally_correct_with_tiny_register_file() {
        // MVL=128 leaves only 8 physical registers. Load 12 disjoint blocks
        // of 128 elements into 12 logical registers, sum them, store the
        // result: the Swap Mechanism must spill/refill VVRs, yet the result
        // must match the scalar sum.
        let regs = 12usize;
        let vl = 128usize;
        let mut mem = MemoryHierarchy::default();
        let input = mem.allocate((regs * vl * 8) as u64);
        let out = mem.allocate((vl * 8) as u64);
        for i in 0..regs * vl {
            mem.write_f64(input + 8 * i as u64, (i % 97) as f64 + 0.5);
        }
        let mut p = Program::new("pressure");
        p.push(VecInstr::setvl(vl));
        for r in 0..regs {
            p.push(VecInstr::vload(
                VReg::new(1 + r as u8),
                input + (8 * r * vl) as u64,
            ));
        }
        for r in 1..regs {
            p.push(VecInstr::binary(
                Opcode::VFAdd,
                VReg::new(1),
                VReg::new(1),
                VReg::new(1 + r as u8),
            ));
        }
        p.push(VecInstr::vstore(VReg::new(1), out));

        let mut vpu = Vpu::new(VpuConfig::ava_x(8), &mut mem);
        let r = vpu.run(&p, &mut mem);
        assert!(
            r.stats.swap_ops() > 0,
            "8 physical registers cannot hold 12 live values without swaps"
        );
        for i in 0..vl {
            let expected: f64 = (0..regs)
                .map(|reg| ((reg * vl + i) % 97) as f64 + 0.5)
                .sum();
            assert_eq!(mem.read_f64(out + 8 * i as u64), expected, "element {i}");
        }
    }

    #[test]
    fn spill_code_is_counted_separately() {
        let mut mem = MemoryHierarchy::default();
        let buf = mem.allocate(16 * 8);
        let mut p = Program::new("spilly");
        p.push(VecInstr::setvl(16));
        p.push(VecInstr::vload(VReg::new(1), buf));
        p.push(
            VecInstr::vstore(VReg::new(1), buf + 4096)
                .with_full_mvl()
                .with_role(InstrRole::SpillStore),
        );
        p.push(
            VecInstr::vload(VReg::new(2), buf + 4096)
                .with_full_mvl()
                .with_role(InstrRole::SpillLoad),
        );
        p.push(VecInstr::vstore(VReg::new(2), buf));
        let mut vpu = Vpu::new(VpuConfig::native_x(1), &mut mem);
        let r = vpu.run(&p, &mut mem);
        assert_eq!(r.stats.spill_stores, 1);
        assert_eq!(r.stats.spill_loads, 1);
        assert_eq!(r.stats.vloads, 1);
        assert_eq!(r.stats.vstores, 1);
    }

    #[test]
    fn setvl_clamps_to_the_hardware_mvl() {
        let mut mem = MemoryHierarchy::default();
        let buf = mem.allocate(256 * 8);
        for i in 0..256u64 {
            mem.write_f64(buf + 8 * i, 1.0);
        }
        let mut p = Program::new("clamp");
        p.push(VecInstr::setvl(1000));
        p.push(VecInstr::vload(VReg::new(1), buf));
        p.push(VecInstr::vstore(VReg::new(1), buf + 8 * 256));
        let mut vpu = Vpu::new(VpuConfig::native_x(2), &mut mem); // MVL=32
        let _ = vpu.run(&p, &mut mem);
        // Exactly 32 elements were copied.
        assert_eq!(mem.read_f64(buf + 8 * (256 + 31)), 1.0);
        assert_eq!(mem.read_f64(buf + 8 * (256 + 32)), 0.0);
    }

    #[test]
    fn gather_and_scatter_work_through_the_vpu() {
        let mut mem = MemoryHierarchy::default();
        let src = mem.allocate(64 * 8);
        let dst = mem.allocate(64 * 8);
        for i in 0..64u64 {
            mem.write_f64(src + 8 * i, i as f64);
        }
        // Reverse-copy 16 elements using an index vector.
        let mut p = Program::new("reverse");
        p.push(VecInstr::setvl(16));
        p.push(VecInstr::vid(VReg::new(3)));
        p.push(VecInstr::binary(
            Opcode::VSub,
            VReg::new(4),
            Operand::scalar_i64(15),
            VReg::new(3),
        ));
        p.push(VecInstr::vload_indexed(VReg::new(5), src, VReg::new(4)));
        p.push(VecInstr::vstore(VReg::new(5), dst));
        let mut vpu = Vpu::new(VpuConfig::ava_x(1), &mut mem);
        let _ = vpu.run(&p, &mut mem);
        for i in 0..16u64 {
            assert_eq!(mem.read_f64(dst + 8 * i), (15 - i) as f64);
        }
    }

    #[test]
    fn rename_stalls_accumulate_for_tiny_register_pools() {
        // RG-LMUL8 has 8 physical registers; a long dependent chain through
        // one logical register forces the front end to wait for commits.
        let mut mem = MemoryHierarchy::default();
        let buf = mem.allocate(128 * 8);
        let mut p = Program::new("chain");
        p.push(VecInstr::setvl(128));
        p.push(VecInstr::vload(VReg::new(0), buf));
        for _ in 0..64 {
            p.push(VecInstr::binary(
                Opcode::VFAdd,
                VReg::new(0),
                VReg::new(0),
                VReg::new(0),
            ));
        }
        let mut vpu = Vpu::new(VpuConfig::rg_lmul(ava_isa::Lmul::M8), &mut mem);
        let rg = vpu.run(&p, &mut mem);

        let mut mem2 = MemoryHierarchy::default();
        let _ = mem2.allocate(128 * 8);
        let mut vpu8 = Vpu::new(VpuConfig::ava_x(8), &mut mem2);
        let ava = vpu8.run(&p, &mut mem2);
        assert!(
            rg.stats.rename_stall_cycles >= ava.stats.rename_stall_cycles,
            "RG (8 renamed regs) should stall at least as much as AVA (64 VVRs)"
        );
    }
}
