//! Register Access Counters (RAC).
//!
//! The RAC is a 3-bit × 64-entry structure holding, for each Virtual Vector
//! Register, how many outstanding accesses reference it (paper §III.C). The
//! counters are incremented at rename time for the new destination and the
//! sources, decremented for the old destination at rename time and for the
//! sources at commit time. A count of zero means the value can never be
//! read again, enabling aggressive register reclamation; the lowest non-zero
//! count identifies the best swap victim.

/// Saturating limit of each 3-bit counter.
const RAC_MAX: u8 = 7;

/// The Register Access Counter array.
///
/// ```
/// use ava_vpu::rac::Rac;
/// let mut rac = Rac::new(64);
/// rac.increment(3);
/// rac.increment(3);
/// assert_eq!(rac.count(3), 2);
/// rac.decrement(3);
/// assert_eq!(rac.count(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rac {
    counts: Vec<u8>,
}

impl Rac {
    /// Creates `entries` counters, all zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Self {
            counts: vec![0; entries],
        }
    }

    /// Number of counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the structure has no counters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Current count for a VVR.
    #[must_use]
    pub fn count(&self, vvr: u16) -> u8 {
        self.counts[vvr as usize]
    }

    /// Increments the counter for `vvr`, saturating at the 3-bit maximum.
    pub fn increment(&mut self, vvr: u16) {
        let c = &mut self.counts[vvr as usize];
        *c = (*c + 1).min(RAC_MAX);
    }

    /// Decrements the counter for `vvr`, saturating at zero.
    pub fn decrement(&mut self, vvr: u16) {
        let c = &mut self.counts[vvr as usize];
        *c = c.saturating_sub(1);
    }

    /// Forces the counter to zero (done when the VVR is returned to the FRL,
    /// which is why the counters never need to be checkpointed — §III.D).
    pub fn clear(&mut self, vvr: u16) {
        self.counts[vvr as usize] = 0;
    }

    /// True if the counter is zero, meaning the value can never be read
    /// again and its physical register may be reclaimed.
    #[must_use]
    pub fn is_reclaimable(&self, vvr: u16) -> bool {
        self.counts[vvr as usize] == 0
    }

    /// Among `candidates`, returns the VVR with the lowest count that is not
    /// in `excluded`, preferring lower VVR ids on ties. Returns `None` when
    /// every candidate is excluded.
    #[must_use]
    pub fn lowest_count_among<'a>(
        &self,
        candidates: impl IntoIterator<Item = &'a u16>,
        excluded: &[u16],
    ) -> Option<u16> {
        candidates
            .into_iter()
            .copied()
            .filter(|v| !excluded.contains(v))
            .min_by_key(|v| (self.counts[*v as usize], *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_track_increments() {
        let mut rac = Rac::new(64);
        assert_eq!(rac.len(), 64);
        assert!(!rac.is_empty());
        assert!(rac.is_reclaimable(10));
        rac.increment(10);
        assert_eq!(rac.count(10), 1);
        assert!(!rac.is_reclaimable(10));
    }

    #[test]
    fn counters_saturate_at_three_bits() {
        let mut rac = Rac::new(8);
        for _ in 0..20 {
            rac.increment(0);
        }
        assert_eq!(rac.count(0), 7);
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let mut rac = Rac::new(8);
        rac.decrement(1);
        assert_eq!(rac.count(1), 0);
        rac.increment(1);
        rac.decrement(1);
        rac.decrement(1);
        assert_eq!(rac.count(1), 0);
    }

    #[test]
    fn clear_resets_the_counter() {
        let mut rac = Rac::new(8);
        rac.increment(2);
        rac.increment(2);
        rac.clear(2);
        assert!(rac.is_reclaimable(2));
    }

    #[test]
    fn lowest_count_selection_respects_exclusions() {
        let mut rac = Rac::new(8);
        rac.increment(0); // count 1
        rac.increment(1);
        rac.increment(1); // count 2
        rac.increment(2); // count 1
        let candidates = [0u16, 1, 2];
        // 0 and 2 tie at count 1; the lower id wins.
        assert_eq!(rac.lowest_count_among(&candidates, &[]), Some(0));
        // Excluding 0 picks 2.
        assert_eq!(rac.lowest_count_among(&candidates, &[0]), Some(2));
        // Excluding everything yields None.
        assert_eq!(rac.lowest_count_among(&candidates, &[0, 1, 2]), None);
    }
}
