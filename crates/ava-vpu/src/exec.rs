//! Functional execution of vector arithmetic operations.
//!
//! Every run of the simulator computes real element values, so the renaming,
//! mapping and swap machinery is validated for *correctness* against scalar
//! golden references, not only timed. Memory and configuration opcodes are
//! handled by the VPU/memory models, not here.

use ava_isa::{Element, Opcode};

/// A source operand value: a borrowed vector of elements or a scalar
/// broadcast to every element.
#[derive(Debug, Clone, Copy)]
pub enum OperandValue<'a> {
    /// Vector register contents.
    Vector(&'a [Element]),
    /// Scalar immediate.
    Scalar(Element),
}

impl OperandValue<'_> {
    /// Element `i` of the operand (scalars return the same value for every
    /// index; reading past the end of a vector returns zero, matching the
    /// zero-initialised register file).
    #[must_use]
    pub fn elem(&self, i: usize) -> Element {
        match self {
            OperandValue::Vector(v) => v.get(i).copied().unwrap_or(Element::ZERO),
            OperandValue::Scalar(s) => *s,
        }
    }
}

fn f(op: &OperandValue<'_>, i: usize) -> f64 {
    op.elem(i).as_f64()
}

fn x(op: &OperandValue<'_>, i: usize) -> i64 {
    op.elem(i).as_i64()
}

/// Executes one arithmetic/move/reduction opcode over `vl` elements,
/// returning a freshly allocated result.
///
/// Convenience wrapper over [`execute_into`]; the VPU hot loop calls
/// [`execute_into`] with a reused strip buffer instead.
///
/// # Panics
///
/// Panics if called with a memory or configuration opcode, or if an operand
/// required by the opcode is missing.
#[must_use]
pub fn execute(opcode: Opcode, srcs: &[OperandValue<'_>], vl: usize) -> Vec<Element> {
    let mut out = Vec::with_capacity(vl);
    execute_into(opcode, srcs, vl, &mut out);
    out
}

/// Executes one arithmetic/move/reduction opcode over `vl` elements into
/// `out`, which is cleared first and reused without reallocating once its
/// capacity has warmed up.
///
/// Strip-uniform work is batched: register-to-register moves copy whole
/// slices and scalar splats are bulk fills, with the same results as the
/// per-element path.
///
/// # Panics
///
/// Panics if called with a memory or configuration opcode, or if an operand
/// required by the opcode is missing.
pub fn execute_into(opcode: Opcode, srcs: &[OperandValue<'_>], vl: usize, out: &mut Vec<Element>) {
    use Opcode::*;
    out.clear();
    let s = |i: usize| {
        srcs.get(i)
            .unwrap_or_else(|| panic!("{opcode} requires operand {i}"))
    };
    macro_rules! map_f64 {
        ($g:expr) => {{
            let g = $g;
            out.extend((0..vl).map(|i| Element::from_f64(g(i))));
        }};
    }
    macro_rules! map_i64 {
        ($g:expr) => {{
            let g = $g;
            out.extend((0..vl).map(|i| Element::from_i64(g(i))));
        }};
    }
    macro_rules! map_bool {
        ($g:expr) => {{
            let g = $g;
            out.extend((0..vl).map(|i| Element::from_bool(g(i))));
        }};
    }

    match opcode {
        VFAdd => map_f64!(|i| f(s(0), i) + f(s(1), i)),
        VFSub => map_f64!(|i| f(s(0), i) - f(s(1), i)),
        VFMul => map_f64!(|i| f(s(0), i) * f(s(1), i)),
        VFDiv => map_f64!(|i| f(s(0), i) / f(s(1), i)),
        VFSqrt => map_f64!(|i| f(s(0), i).sqrt()),
        VFMacc => map_f64!(|i| f(s(0), i).mul_add(f(s(1), i), f(s(2), i))),
        VFMsac => map_f64!(|i| f(s(0), i).mul_add(f(s(1), i), -f(s(2), i))),
        VFMin => map_f64!(|i| f(s(0), i).min(f(s(1), i))),
        VFMax => map_f64!(|i| f(s(0), i).max(f(s(1), i))),
        VFNeg => map_f64!(|i| -f(s(0), i)),
        VFAbs => map_f64!(|i| f(s(0), i).abs()),
        VFExp => map_f64!(|i| f(s(0), i).exp()),
        VFLn => map_f64!(|i| f(s(0), i).ln()),

        VAdd => map_i64!(|i| x(s(0), i).wrapping_add(x(s(1), i))),
        VSub => map_i64!(|i| x(s(0), i).wrapping_sub(x(s(1), i))),
        VMul => map_i64!(|i| x(s(0), i).wrapping_mul(x(s(1), i))),
        VAnd => map_i64!(|i| x(s(0), i) & x(s(1), i)),
        VOr => map_i64!(|i| x(s(0), i) | x(s(1), i)),
        VXor => map_i64!(|i| x(s(0), i) ^ x(s(1), i)),
        VSll => map_i64!(|i| x(s(0), i).wrapping_shl(x(s(1), i) as u32 & 63)),
        VSrl => map_i64!(|i| ((x(s(0), i) as u64) >> (x(s(1), i) as u32 & 63)) as i64),
        VMin => map_i64!(|i| x(s(0), i).min(x(s(1), i))),
        VMax => map_i64!(|i| x(s(0), i).max(x(s(1), i))),

        VMFLt => map_bool!(|i| f(s(0), i) < f(s(1), i)),
        VMFLe => map_bool!(|i| f(s(0), i) <= f(s(1), i)),
        VMFGt => map_bool!(|i| f(s(0), i) > f(s(1), i)),
        VMFGe => map_bool!(|i| f(s(0), i) >= f(s(1), i)),
        VMFEq => map_bool!(|i| f(s(0), i) == f(s(1), i)),
        VMSLt => map_bool!(|i| x(s(0), i) < x(s(1), i)),
        VMSEq => map_bool!(|i| x(s(0), i) == x(s(1), i)),

        // Moves and splats are strip-uniform: whole-slice copies and bulk
        // fills replace the per-element loop (identical results — vector
        // reads past the end are zero, scalars repeat).
        VMv | VMvSplat => match *s(0) {
            OperandValue::Vector(v) => {
                let copied = vl.min(v.len());
                out.extend_from_slice(&v[..copied]);
                out.resize(vl, Element::ZERO);
            }
            OperandValue::Scalar(val) => out.resize(vl, val),
        },
        VId => map_i64!(|i| i as i64),
        VMerge => out.extend((0..vl).map(|i| {
            if s(2).elem(i).as_bool() {
                s(0).elem(i)
            } else {
                s(1).elem(i)
            }
        })),
        VSlide1Up => out.extend((0..vl).map(|i| {
            if i == 0 {
                srcs.get(1).map_or(Element::ZERO, |o| o.elem(0))
            } else {
                s(0).elem(i - 1)
            }
        })),
        VSlide1Down => out.extend((0..vl).map(|i| {
            if i + 1 == vl {
                srcs.get(1).map_or(Element::ZERO, |o| o.elem(0))
            } else {
                s(0).elem(i + 1)
            }
        })),

        VFRedSum | VFRedMax | VFRedMin => {
            let mut acc = match opcode {
                VFRedSum => 0.0,
                VFRedMax => f64::NEG_INFINITY,
                _ => f64::INFINITY,
            };
            for i in 0..vl {
                let v = f(s(0), i);
                acc = match opcode {
                    VFRedSum => acc + v,
                    VFRedMax => acc.max(v),
                    _ => acc.min(v),
                };
            }
            out.resize(vl.max(1), Element::ZERO);
            out[0] = Element::from_f64(acc);
        }

        VLoad | VStore | VLoadStrided | VStoreStrided | VLoadIndexed | VStoreIndexed | SetVl => {
            panic!("{opcode} is not an arithmetic operation")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecf(vals: &[f64]) -> Vec<Element> {
        vals.iter().map(|v| Element::from_f64(*v)).collect()
    }

    #[test]
    fn fp_binary_operations_match_scalar_math() {
        let a = vecf(&[1.0, 2.0, -3.0, 0.5]);
        let b = vecf(&[4.0, -2.0, 3.0, 0.25]);
        let add = execute(
            Opcode::VFAdd,
            &[OperandValue::Vector(&a), OperandValue::Vector(&b)],
            4,
        );
        let mul = execute(
            Opcode::VFMul,
            &[OperandValue::Vector(&a), OperandValue::Vector(&b)],
            4,
        );
        assert_eq!(add[2].as_f64(), 0.0);
        assert_eq!(mul[1].as_f64(), -4.0);
        let div = execute(
            Opcode::VFDiv,
            &[OperandValue::Vector(&a), OperandValue::Vector(&b)],
            4,
        );
        assert_eq!(div[3].as_f64(), 2.0);
    }

    #[test]
    fn fma_uses_fused_semantics_and_three_operands() {
        let a = vecf(&[2.0, 3.0]);
        let b = vecf(&[10.0, 10.0]);
        let c = vecf(&[1.0, -1.0]);
        let r = execute(
            Opcode::VFMacc,
            &[
                OperandValue::Vector(&a),
                OperandValue::Vector(&b),
                OperandValue::Vector(&c),
            ],
            2,
        );
        assert_eq!(r[0].as_f64(), 21.0);
        assert_eq!(r[1].as_f64(), 29.0);
    }

    #[test]
    fn scalar_operands_broadcast() {
        let a = vecf(&[1.0, 2.0, 3.0]);
        let r = execute(
            Opcode::VFMul,
            &[
                OperandValue::Vector(&a),
                OperandValue::Scalar(Element::from_f64(2.0)),
            ],
            3,
        );
        assert_eq!(r[2].as_f64(), 6.0);
    }

    #[test]
    fn compares_produce_masks_and_merge_selects() {
        let a = vecf(&[1.0, 5.0, 3.0]);
        let b = vecf(&[2.0, 2.0, 3.0]);
        let mask = execute(
            Opcode::VMFLt,
            &[OperandValue::Vector(&a), OperandValue::Vector(&b)],
            3,
        );
        assert_eq!(
            mask.iter().map(|e| e.as_bool()).collect::<Vec<_>>(),
            vec![true, false, false]
        );
        let merged = execute(
            Opcode::VMerge,
            &[
                OperandValue::Vector(&a),
                OperandValue::Vector(&b),
                OperandValue::Vector(&mask),
            ],
            3,
        );
        assert_eq!(merged[0].as_f64(), 1.0);
        assert_eq!(merged[1].as_f64(), 2.0);
    }

    #[test]
    fn integer_operations_wrap() {
        let a: Vec<Element> = [i64::MAX, 4]
            .iter()
            .map(|v| Element::from_i64(*v))
            .collect();
        let b: Vec<Element> = [1i64, 3].iter().map(|v| Element::from_i64(*v)).collect();
        let r = execute(
            Opcode::VAdd,
            &[OperandValue::Vector(&a), OperandValue::Vector(&b)],
            2,
        );
        assert_eq!(r[0].as_i64(), i64::MIN);
        assert_eq!(r[1].as_i64(), 7);
    }

    #[test]
    fn reductions_write_element_zero() {
        let a = vecf(&[1.0, 2.0, 3.0, 4.0]);
        let sum = execute(Opcode::VFRedSum, &[OperandValue::Vector(&a)], 4);
        assert_eq!(sum[0].as_f64(), 10.0);
        assert_eq!(sum[1], Element::ZERO);
        let max = execute(Opcode::VFRedMax, &[OperandValue::Vector(&a)], 4);
        assert_eq!(max[0].as_f64(), 4.0);
        let min = execute(Opcode::VFRedMin, &[OperandValue::Vector(&a)], 4);
        assert_eq!(min[0].as_f64(), 1.0);
    }

    #[test]
    fn vid_and_splat_and_slides() {
        let id = execute(Opcode::VId, &[], 4);
        assert_eq!(id[3].as_i64(), 3);
        let sp = execute(
            Opcode::VMvSplat,
            &[OperandValue::Scalar(Element::from_f64(7.0))],
            3,
        );
        assert_eq!(sp[2].as_f64(), 7.0);
        let a = vecf(&[1.0, 2.0, 3.0]);
        let up = execute(
            Opcode::VSlide1Up,
            &[
                OperandValue::Vector(&a),
                OperandValue::Scalar(Element::from_f64(9.0)),
            ],
            3,
        );
        assert_eq!(up[0].as_f64(), 9.0);
        assert_eq!(up[2].as_f64(), 2.0);
        let down = execute(
            Opcode::VSlide1Down,
            &[
                OperandValue::Vector(&a),
                OperandValue::Scalar(Element::from_f64(8.0)),
            ],
            3,
        );
        assert_eq!(down[0].as_f64(), 2.0);
        assert_eq!(down[2].as_f64(), 8.0);
    }

    #[test]
    fn exp_and_ln_are_inverse() {
        let a = vecf(&[0.5, 1.0, 2.0]);
        let e = execute(Opcode::VFExp, &[OperandValue::Vector(&a)], 3);
        let l = execute(Opcode::VFLn, &[OperandValue::Vector(&e)], 3);
        for i in 0..3 {
            assert!((l[i].as_f64() - a[i].as_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn short_vector_reads_past_end_are_zero() {
        let a = vecf(&[1.0]);
        let r = execute(
            Opcode::VFAdd,
            &[OperandValue::Vector(&a), OperandValue::Vector(&a)],
            3,
        );
        assert_eq!(r[1].as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not an arithmetic operation")]
    fn memory_opcodes_are_rejected() {
        let _ = execute(Opcode::VLoad, &[], 4);
    }

    #[test]
    fn execute_into_reuses_one_buffer_across_opcodes() {
        // One buffer through heterogeneous opcodes — including the batched
        // move/splat fast paths and the shorter-than-vl zero-fill — must
        // produce exactly what the allocating wrapper produces.
        let a = vecf(&[1.0, 2.0, 3.0]);
        let short = vecf(&[5.0]);
        let cases: Vec<(Opcode, Vec<OperandValue<'_>>, usize)> = vec![
            (
                Opcode::VFAdd,
                vec![OperandValue::Vector(&a), OperandValue::Vector(&a)],
                3,
            ),
            (Opcode::VMv, vec![OperandValue::Vector(&short)], 3),
            (
                Opcode::VMvSplat,
                vec![OperandValue::Scalar(Element::from_f64(7.0))],
                4,
            ),
            (Opcode::VFRedSum, vec![OperandValue::Vector(&a)], 3),
            (Opcode::VId, vec![], 2),
        ];
        let mut buf = Vec::new();
        for (op, srcs, vl) in cases {
            execute_into(op, &srcs, vl, &mut buf);
            assert_eq!(buf, execute(op, &srcs, vl), "{op}");
        }
    }
}
