//! The second stage of the two-stage vector issue unit: the decoupled,
//! in-order arithmetic and memory queues.
//!
//! Each queue issues its instructions strictly in order, but the two queues
//! are decoupled from each other, giving the "light out-of-order behaviour"
//! the paper describes (§III.C): a younger arithmetic instruction may start
//! while an older memory instruction is still waiting, and vice versa.

use std::collections::VecDeque;

/// Timing model of one in-order issue queue.
///
/// ```
/// use ava_vpu::issue::IssueQueue;
/// let mut q = IssueQueue::new(2);
/// // Queue empty: an instruction arriving at cycle 3 is admitted at 3.
/// assert_eq!(q.admit_time(3), 3);
/// q.record(3, 10);                 // enters at 3, issues at 10
/// q.record(4, 12);
/// // Queue full: the next instruction waits until the oldest entry issues.
/// assert_eq!(q.admit_time(5), 10);
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    /// Issue times of the youngest `capacity` entries, oldest first.
    issue_times: VecDeque<u64>,
    last_issue: u64,
    total_issued: u64,
}

impl IssueQueue {
    /// Creates an empty queue with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "issue queue needs at least one entry");
        Self {
            capacity,
            issue_times: VecDeque::with_capacity(capacity),
            last_issue: 0,
            total_issued: 0,
        }
    }

    /// Queue capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest cycle at which an instruction arriving at `at` obtains a
    /// queue slot: immediately when a slot is spare, otherwise when the
    /// entry `capacity` positions older has issued.
    #[must_use]
    pub fn admit_time(&self, at: u64) -> u64 {
        if self.issue_times.len() < self.capacity {
            at
        } else {
            let oldest = self.issue_times[self.issue_times.len() - self.capacity];
            at.max(oldest)
        }
    }

    /// Earliest issue cycle respecting in-order issue within this queue:
    /// the instruction may not issue before the previous entry did.
    #[must_use]
    pub fn in_order_issue_time(&self, ready: u64) -> u64 {
        ready.max(self.last_issue)
    }

    /// Records an instruction that entered the queue at `enter` and issued
    /// to execution at `issue`.
    pub fn record(&mut self, enter: u64, issue: u64) {
        debug_assert!(
            issue >= enter,
            "an instruction cannot issue before it enters"
        );
        debug_assert!(
            issue >= self.last_issue,
            "issue order within a queue must be program order"
        );
        self.last_issue = issue;
        self.total_issued += 1;
        self.issue_times.push_back(issue);
        if self.issue_times.len() > self.capacity {
            self.issue_times.pop_front();
        }
    }

    /// Total instructions issued from this queue.
    #[must_use]
    pub fn total_issued(&self) -> u64 {
        self.total_issued
    }

    /// Issue time of the most recent entry.
    #[must_use]
    pub fn last_issue(&self) -> u64 {
        self.last_issue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_immediate_until_full() {
        let mut q = IssueQueue::new(3);
        assert_eq!(q.admit_time(7), 7);
        q.record(7, 9);
        q.record(8, 10);
        q.record(9, 11);
        assert_eq!(q.admit_time(9), 9, "oldest issues at 9, slot frees then");
        assert_eq!(q.admit_time(8), 9);
    }

    #[test]
    fn in_order_issue_is_enforced() {
        let mut q = IssueQueue::new(4);
        q.record(0, 20);
        assert_eq!(q.in_order_issue_time(5), 20);
        assert_eq!(q.in_order_issue_time(25), 25);
    }

    #[test]
    fn counters_track_issues() {
        let mut q = IssueQueue::new(4);
        q.record(0, 1);
        q.record(1, 2);
        assert_eq!(q.total_issued(), 2);
        assert_eq!(q.last_issue(), 2);
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = IssueQueue::new(0);
    }
}
