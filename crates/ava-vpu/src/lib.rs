//! # ava-vpu — the AVA decoupled vector processing unit model
//!
//! This crate implements the paper's primary contribution: a decoupled,
//! multi-lane Vector Processing Unit whose register file organisation is
//! *adaptable*. The same 8 KB physical vector register file (P-VRF) serves
//! maximum vector lengths from 16 to 128 elements by backing it with a
//! memory-resident second level (M-VRF) and a two-level renaming scheme:
//!
//! * [`rename`] — first level: the 32 logical registers are renamed to 64
//!   Virtual Vector Registers (VVRs) through a RAT and a free register list.
//! * [`vrf_mapping`] — second level: the VRF-Mapping engine (PRMT, VRLT,
//!   PFRL) tracks which VVRs live in physical registers and which live in
//!   memory registers.
//! * [`rac`] — the per-VVR Register Access Counters that drive both
//!   aggressive register reclamation and swap-victim selection.
//! * [`swap`] — the Swap Logic that turns P-VRF pressure into Swap-Store /
//!   Swap-Load memory operations.
//! * [`issue`] — the two-stage vector issue unit: an in-order pre-issue
//!   stage performing the VVR→physical mapping, feeding decoupled in-order
//!   arithmetic and memory queues.
//! * [`vrf`] / [`mvrf`] — the physical and memory vector register files.
//! * [`exec`] — functional execution of every vector operation, so runs are
//!   checked for *correctness*, not only timed.
//! * [`vpu`] — the cycle-level model tying everything together, usable in
//!   AVA mode or in NATIVE mode (conventional single-level renaming with a
//!   register file sized for the target MVL, the paper's baselines).
//!
//! ```
//! use ava_vpu::{Vpu, VpuConfig};
//! use ava_memory::MemoryHierarchy;
//! use ava_isa::{Program, VecInstr, VReg};
//!
//! let mut mem = MemoryHierarchy::default();
//! let a = mem.allocate(16 * 8);
//! for i in 0..16 {
//!     mem.write_f64(a + 8 * i, i as f64);
//! }
//! let mut p = Program::new("double");
//! p.push(VecInstr::setvl(16));
//! p.push(VecInstr::vload(VReg::new(1), a));
//! p.push(VecInstr::binary(ava_isa::Opcode::VFAdd, VReg::new(2), VReg::new(1), VReg::new(1)));
//! p.push(VecInstr::vstore(VReg::new(2), a));
//! let mut vpu = Vpu::new(VpuConfig::ava_x(1), &mut mem);
//! let result = vpu.run(&p, &mut mem);
//! assert_eq!(mem.read_f64(a + 8), 2.0);
//! assert!(result.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod exec;
pub mod issue;
pub mod mvrf;
pub mod rac;
pub mod rename;
pub mod rob;
pub mod stats;
pub mod swap;
pub mod vpu;
pub mod vrf;
pub mod vrf_mapping;

pub use config::{preg_count_for_mvl, RenameMode, VpuConfig, NUM_VVRS};
pub use stats::VpuStats;
pub use vpu::{Vpu, VpuRunResult};
