//! VPU configurations: AVA, NATIVE and RISC-V Register-Grouping variants.
//!
//! Table II and Table III of the paper define the evaluated configurations.
//! All of them share the same pipeline (8 lanes, one arithmetic and one
//! memory pipeline, 32-entry issue queues); what changes is the maximum
//! vector length, the size of the physical register file, and whether the
//! two-level AVA machinery is present.

use ava_isa::{Lmul, MIN_MVL_ELEMS};

/// Number of Virtual Vector Registers in the AVA design (first-level
/// renaming pool; twice the 32 architectural registers).
pub const NUM_VVRS: usize = 64;

/// Renaming/register-file organisation of a VPU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameMode {
    /// Conventional single-level renaming: logical registers map directly to
    /// physical registers in a VRF sized for the configured MVL. This models
    /// both the NATIVE baselines (VRF grows with MVL) and the RISC-V
    /// Register-Grouping baseline (VRF fixed at 8 KB, physical registers and
    /// architectural registers divided by LMUL).
    Native,
    /// The AVA two-level organisation: 64 VVRs, a fixed 8 KB P-VRF whose
    /// physical register count shrinks as the MVL grows (Table I), and an
    /// M-VRF in memory handled by the Swap Mechanism.
    Ava,
}

/// Number of physical registers that fit in a physical VRF of
/// `pvrf_bytes` when each register holds `mvl` 64-bit elements
/// (Table I of the paper for an 8 KB P-VRF).
///
/// ```
/// use ava_vpu::preg_count_for_mvl;
/// assert_eq!(preg_count_for_mvl(8 * 1024, 16), 64);
/// assert_eq!(preg_count_for_mvl(8 * 1024, 48), 21);
/// assert_eq!(preg_count_for_mvl(8 * 1024, 128), 8);
/// ```
#[must_use]
pub fn preg_count_for_mvl(pvrf_bytes: usize, mvl: usize) -> usize {
    pvrf_bytes / (mvl * 8)
}

/// Full static configuration of one VPU instance.
#[derive(Debug, Clone, PartialEq)]
pub struct VpuConfig {
    /// Human-readable configuration name ("AVA X4", "NATIVE X8", ...).
    pub name: String,
    /// Register-file organisation.
    pub mode: RenameMode,
    /// Number of execution lanes (8 in every evaluated configuration).
    pub lanes: usize,
    /// Maximum vector length in 64-bit elements.
    pub mvl: usize,
    /// Physical VRF capacity in bytes.
    pub pvrf_bytes: usize,
    /// Number of Virtual Vector Registers in the AVA first renaming level
    /// ([`NUM_VVRS`] in the paper; ignored in `Native` mode). The M-VRF
    /// backing store is sized for this many registers.
    pub vvr_count: usize,
    /// Number of architectural (logical) registers visible to software.
    /// 32 for NATIVE and AVA; `32 / LMUL` for register grouping.
    pub logical_regs: usize,
    /// Entries in the arithmetic issue queue.
    pub arith_queue_entries: usize,
    /// Entries in the memory issue queue.
    pub mem_queue_entries: usize,
    /// Reorder-buffer entries (maximum vector instructions in flight).
    pub rob_entries: usize,
    /// Fixed per-vector-memory-instruction overhead in cycles (address
    /// generation and request set-up in the vector memory unit).
    pub mem_op_overhead: u64,
    /// Cycles the front end needs per instruction (dispatch + rename).
    pub frontend_cycles_per_instr: u64,
}

impl VpuConfig {
    /// Number of physical vector registers available in the P-VRF for this
    /// configuration.
    #[must_use]
    pub fn physical_regs(&self) -> usize {
        match self.mode {
            RenameMode::Ava | RenameMode::Native => preg_count_for_mvl(self.pvrf_bytes, self.mvl),
        }
    }

    /// Number of renamed registers in the first renaming level: VVRs for
    /// AVA, physical registers for NATIVE/RG.
    #[must_use]
    pub fn rename_pool(&self) -> usize {
        match self.mode {
            RenameMode::Ava => self.vvr_count,
            RenameMode::Native => self.physical_regs(),
        }
    }

    /// Bytes needed for the M-VRF backing store (zero for NATIVE mode).
    #[must_use]
    pub fn mvrf_bytes(&self) -> u64 {
        match self.mode {
            RenameMode::Ava => (self.vvr_count * self.mvl * 8) as u64,
            RenameMode::Native => 0,
        }
    }

    /// The paper's NATIVE Xn configuration: hardware natively built for
    /// `MVL = 16 * n` with a proportionally larger VRF (Table II).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is one of 1, 2, 3, 4, 8.
    #[must_use]
    pub fn native_x(n: usize) -> Self {
        assert!(matches!(n, 1..=8), "NATIVE Xn defined for n in 1..=8");
        Self {
            name: format!("NATIVE X{n}"),
            mode: RenameMode::Native,
            lanes: 8,
            mvl: MIN_MVL_ELEMS * n,
            pvrf_bytes: 8 * 1024 * n,
            vvr_count: NUM_VVRS,
            logical_regs: 32,
            arith_queue_entries: 32,
            mem_queue_entries: 32,
            rob_entries: 64,
            mem_op_overhead: 4,
            frontend_cycles_per_instr: 1,
        }
    }

    /// The AVA Xn configuration: the 8 KB P-VRF reconfigured for
    /// `MVL = 16 * n` (Table III), backed by the M-VRF.
    #[must_use]
    pub fn ava_x(n: usize) -> Self {
        assert!(matches!(n, 1..=8), "AVA Xn defined for n in 1..=8");
        Self {
            name: format!("AVA X{n}"),
            mode: RenameMode::Ava,
            lanes: 8,
            mvl: MIN_MVL_ELEMS * n,
            pvrf_bytes: 8 * 1024,
            vvr_count: NUM_VVRS,
            logical_regs: 32,
            arith_queue_entries: 32,
            mem_queue_entries: 32,
            rob_entries: 64,
            mem_op_overhead: 4,
            frontend_cycles_per_instr: 1,
        }
    }

    /// The RISC-V Register-Grouping configuration RG-LMULn: the baseline
    /// 8 KB short-vector hardware, with registers grouped by the compiler.
    /// Physical registers and architectural registers are both divided by
    /// the LMUL factor (paper §II.A).
    #[must_use]
    pub fn rg_lmul(lmul: Lmul) -> Self {
        let n = lmul.factor();
        Self {
            name: format!("RG-LMUL{n}"),
            mode: RenameMode::Native,
            lanes: 8,
            mvl: MIN_MVL_ELEMS * n,
            pvrf_bytes: 8 * 1024,
            vvr_count: NUM_VVRS,
            logical_regs: lmul.architectural_registers(),
            arith_queue_entries: 32,
            mem_queue_entries: 32,
            rob_entries: 64,
            mem_op_overhead: 4,
            frontend_cycles_per_instr: 1,
        }
    }

    /// An AVA configuration with an arbitrary MVL on the default 8 KB
    /// P-VRF — the Table I sizing path (`preg_count_for_mvl`), also used by
    /// the MVL-extrapolation axis. Beyond MVL = 128 the 8 KB file leaves
    /// fewer than 8 physical registers, so callers extrapolating Table I
    /// (e.g. `ava_sim::ScenarioConfig`) typically raise `pvrf_bytes`
    /// afterwards to keep the X8 register-count floor.
    #[must_use]
    pub fn ava_with_mvl(mvl: usize) -> Self {
        assert!(
            mvl.is_multiple_of(MIN_MVL_ELEMS),
            "MVL must be a multiple of 16"
        );
        let mut c = Self::ava_x(1);
        c.mvl = mvl;
        c.name = format!("AVA MVL={mvl}");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_physical_register_counts() {
        // Table I: P-Regs {64, 32, 21, 16, 12, 10, 9, 8} for MVL {16..128}.
        let expected = [
            (16, 64),
            (32, 32),
            (48, 21),
            (64, 16),
            (80, 12),
            (96, 10),
            (112, 9),
            (128, 8),
        ];
        for (mvl, pregs) in expected {
            assert_eq!(preg_count_for_mvl(8 * 1024, mvl), pregs, "MVL={mvl}");
            assert_eq!(VpuConfig::ava_with_mvl(mvl).physical_regs(), pregs);
        }
    }

    #[test]
    fn native_configurations_scale_the_vrf() {
        // Table II: VRF 8, 16, 24, 32, 64 KB for X1, X2, X3, X4, X8.
        for (n, kb) in [(1, 8), (2, 16), (3, 24), (4, 32), (8, 64)] {
            let c = VpuConfig::native_x(n);
            assert_eq!(c.pvrf_bytes, kb * 1024);
            assert_eq!(c.mvl, 16 * n);
            assert_eq!(
                c.physical_regs(),
                64,
                "NATIVE always has 64 renamed registers"
            );
            assert_eq!(c.rename_pool(), 64);
            assert_eq!(c.mvrf_bytes(), 0);
        }
    }

    #[test]
    fn ava_configurations_keep_an_8kb_pvrf() {
        for n in [1, 2, 3, 4, 8] {
            let c = VpuConfig::ava_x(n);
            assert_eq!(c.pvrf_bytes, 8 * 1024);
            assert_eq!(c.rename_pool(), 64, "AVA always exposes 64 VVRs");
            assert_eq!(
                c.logical_regs, 32,
                "AVA preserves all architectural registers"
            );
            assert_eq!(c.mvrf_bytes(), (64 * c.mvl * 8) as u64);
        }
        assert_eq!(VpuConfig::ava_x(8).physical_regs(), 8);
        assert_eq!(VpuConfig::ava_x(1).physical_regs(), 64);
    }

    #[test]
    fn rg_configurations_divide_both_register_kinds() {
        let c8 = VpuConfig::rg_lmul(Lmul::M8);
        assert_eq!(c8.physical_regs(), 8);
        assert_eq!(c8.logical_regs, 4);
        assert_eq!(c8.mvl, 128);
        assert_eq!(c8.pvrf_bytes, 8 * 1024);
        let c1 = VpuConfig::rg_lmul(Lmul::M1);
        assert_eq!(c1.physical_regs(), 64);
        assert_eq!(c1.logical_regs, 32);
    }

    #[test]
    fn names_identify_configurations() {
        assert_eq!(VpuConfig::native_x(8).name, "NATIVE X8");
        assert_eq!(VpuConfig::ava_x(3).name, "AVA X3");
        assert_eq!(VpuConfig::rg_lmul(Lmul::M4).name, "RG-LMUL4");
    }

    #[test]
    #[should_panic(expected = "defined for n")]
    fn native_x_rejects_zero() {
        let _ = VpuConfig::native_x(0);
    }
}
