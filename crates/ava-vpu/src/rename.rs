//! First-level renaming: logical registers to renamed registers.
//!
//! In AVA mode the renamed registers are the 64 Virtual Vector Registers
//! (VVRs); in NATIVE/RG mode they are the physical registers themselves.
//! The unit consists of the Register Alias Table (RAT) and the Free Register
//! List (FRL), exactly as in Figure 1 of the paper. Old destinations are
//! released back to the FRL when the renaming instruction commits, and the
//! RAT/FRL state can be checkpointed and restored to recover from scalar-side
//! misspeculation (paper §III.D).
//!
//! The unit sits on the per-instruction hot path of every simulated point,
//! so it is allocation-free in steady state: renamed sources live in the
//! fixed-capacity inline [`SrcList`] (no `Vec` push per instruction), FRL
//! membership is tracked in a bitmap so the double-release check is O(1)
//! instead of an O(pool) scan, and [`RenameUnit::checkpoint_into`] /
//! [`RenameUnit::restore`] copy into preallocated buffers instead of
//! cloning the RAT and FRL.

use std::collections::VecDeque;

use ava_isa::VReg;

/// Identifier of a renamed register (VVR id in AVA mode, physical register
/// id in NATIVE mode).
pub type RenamedReg = u16;

/// Upper bound on register sources per instruction. The widest shipped
/// instructions carry three (`vfmacc` reads scalar + source + destination,
/// `vmerge` reads three operands); one slot of headroom is kept for future
/// forms.
pub const MAX_SRCS: usize = 4;

/// Fixed-capacity inline list of renamed source registers.
///
/// Behaves like a small `Vec<RenamedReg>` — it derefs to a slice, so
/// indexing, `len()` and iteration all work — but lives entirely inline in
/// [`Renamed`], so renaming an instruction performs no heap allocation.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SrcList {
    regs: [RenamedReg; MAX_SRCS],
    len: u8,
}

impl SrcList {
    /// The empty list.
    pub const EMPTY: Self = Self {
        regs: [0; MAX_SRCS],
        len: 0,
    };

    fn push(&mut self, reg: RenamedReg) {
        assert!(
            (self.len as usize) < MAX_SRCS,
            "instruction has more than {MAX_SRCS} register sources"
        );
        self.regs[self.len as usize] = reg;
        self.len += 1;
    }

    /// The renamed sources as a slice, in operand order.
    #[must_use]
    pub fn as_slice(&self) -> &[RenamedReg] {
        &self.regs[..self.len as usize]
    }
}

impl std::ops::Deref for SrcList {
    type Target = [RenamedReg];

    fn deref(&self) -> &[RenamedReg] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SrcList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a> IntoIterator for &'a SrcList {
    type Item = &'a RenamedReg;
    type IntoIter = std::slice::Iter<'a, RenamedReg>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Result of renaming one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renamed {
    /// Renamed register allocated for the destination (if the instruction
    /// writes one).
    pub dst: Option<RenamedReg>,
    /// The previous mapping of the destination logical register; released to
    /// the FRL when this instruction commits.
    pub old_dst: Option<RenamedReg>,
    /// Renamed registers for each register source, in operand order.
    pub srcs: SrcList,
}

/// Snapshot of the renaming state, taken at commit boundaries so the
/// architectural mapping can be restored after a flush.
///
/// Create one cheaply with [`RenameCheckpoint::empty`] and fill it with
/// [`RenameUnit::checkpoint_into`] to reuse its buffers across
/// checkpoint/restore cycles; [`RenameUnit::checkpoint`] allocates a fresh
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenameCheckpoint {
    rat: Vec<Option<RenamedReg>>,
    frl: VecDeque<RenamedReg>,
    in_frl: Vec<bool>,
}

impl RenameCheckpoint {
    /// An empty checkpoint holding no allocations; a scratch target for
    /// [`RenameUnit::checkpoint_into`].
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }
}

/// RAT + FRL renaming unit.
///
/// ```
/// use ava_vpu::rename::RenameUnit;
/// use ava_isa::VReg;
/// let mut r = RenameUnit::new(8);
/// let a = r.rename(Some(VReg::new(1)), &[]).unwrap();
/// let b = r.rename(Some(VReg::new(2)), &[VReg::new(1)]).unwrap();
/// assert_eq!(b.srcs[0], a.dst.unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct RenameUnit {
    rat: Vec<Option<RenamedReg>>,
    frl: VecDeque<RenamedReg>,
    /// FRL membership bitmap, indexed by renamed register id: O(1)
    /// double-release detection instead of scanning the deque.
    in_frl: Vec<bool>,
    pool_size: usize,
}

/// Error returned when renaming requires a register but the FRL is empty or
/// a source has never been written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameError {
    /// No renamed register is available for the destination; the front end
    /// must stall until an instruction commits.
    NoFreeRegister,
    /// A source logical register was read before ever being written.
    UseBeforeDef(VReg),
}

impl std::fmt::Display for RenameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenameError::NoFreeRegister => write!(f, "free register list is empty"),
            RenameError::UseBeforeDef(r) => write!(f, "logical register {r} read before written"),
        }
    }
}

impl std::error::Error for RenameError {}

impl RenameUnit {
    /// Creates a renaming unit with `pool_size` renamed registers, all free.
    ///
    /// Mappings are created lazily: a logical register only consumes a
    /// renamed register once it is written, so configurations with fewer
    /// renamed registers than architectural names (RG-LMUL8 has 8 physical
    /// registers for 4 usable names) still work.
    #[must_use]
    pub fn new(pool_size: usize) -> Self {
        assert!(
            pool_size >= 4,
            "renamed register pool must hold at least 4 registers"
        );
        Self {
            rat: vec![None; ava_isa::NUM_LOGICAL_VREGS],
            frl: (0..pool_size as RenamedReg).collect(),
            in_frl: vec![true; pool_size],
            pool_size,
        }
    }

    /// Number of renamed registers in the pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of currently free renamed registers.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.frl.len()
    }

    /// True if a destination register could be renamed right now.
    #[must_use]
    pub fn can_rename_dst(&self) -> bool {
        !self.frl.is_empty()
    }

    /// Current mapping of a logical register, if any.
    #[must_use]
    pub fn mapping(&self, logical: VReg) -> Option<RenamedReg> {
        self.rat[logical.index()]
    }

    /// Renames one instruction: sources are looked up in the RAT, the
    /// destination receives a fresh renamed register from the FRL and the
    /// previous mapping is reported as `old_dst`.
    ///
    /// # Errors
    ///
    /// Returns [`RenameError::NoFreeRegister`] when a destination is needed
    /// but the FRL is empty, and [`RenameError::UseBeforeDef`] when a source
    /// has no mapping.
    pub fn rename(&mut self, dst: Option<VReg>, srcs: &[VReg]) -> Result<Renamed, RenameError> {
        let mut renamed_srcs = SrcList::EMPTY;
        for s in srcs {
            match self.rat[s.index()] {
                Some(r) => renamed_srcs.push(r),
                None => return Err(RenameError::UseBeforeDef(*s)),
            }
        }
        let (new_dst, old_dst) = if let Some(d) = dst {
            let Some(fresh) = self.frl.pop_front() else {
                return Err(RenameError::NoFreeRegister);
            };
            self.in_frl[fresh as usize] = false;
            let old = self.rat[d.index()].replace(fresh);
            (Some(fresh), old)
        } else {
            (None, None)
        };
        Ok(Renamed {
            dst: new_dst,
            old_dst,
            srcs: renamed_srcs,
        })
    }

    /// Releases a renamed register back to the FRL (called when the
    /// instruction that superseded it commits).
    ///
    /// # Panics
    ///
    /// Panics if the register is already free (double release).
    pub fn release(&mut self, reg: RenamedReg) {
        assert!(
            (reg as usize) < self.pool_size,
            "register {reg} outside pool"
        );
        assert!(
            !self.in_frl[reg as usize],
            "renamed register {reg} released twice"
        );
        self.in_frl[reg as usize] = true;
        self.frl.push_back(reg);
    }

    /// Takes a snapshot of the RAT and FRL (the paper keeps a single commit-
    /// time copy). Allocates a fresh snapshot; hot paths should hold a
    /// [`RenameCheckpoint::empty`] scratch and use
    /// [`RenameUnit::checkpoint_into`] instead.
    #[must_use]
    pub fn checkpoint(&self) -> RenameCheckpoint {
        let mut cp = RenameCheckpoint::empty();
        self.checkpoint_into(&mut cp);
        cp
    }

    /// Writes the current RAT/FRL state into `checkpoint`, reusing its
    /// buffers: after the first call on a given scratch checkpoint, taking a
    /// snapshot performs no allocation.
    pub fn checkpoint_into(&self, checkpoint: &mut RenameCheckpoint) {
        checkpoint.rat.clone_from(&self.rat);
        checkpoint.frl.clone_from(&self.frl);
        checkpoint.in_frl.clone_from(&self.in_frl);
    }

    /// Restores a previously-taken snapshot, discarding all speculative
    /// renames performed since. Copies into the unit's existing buffers —
    /// no allocation.
    pub fn restore(&mut self, checkpoint: &RenameCheckpoint) {
        self.rat.clone_from(&checkpoint.rat);
        self.frl.clone_from(&checkpoint.frl);
        self.in_frl.clone_from(&checkpoint.in_frl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_see_the_latest_mapping() {
        let mut r = RenameUnit::new(16);
        let w1 = r.rename(Some(VReg::new(5)), &[]).unwrap();
        let w2 = r.rename(Some(VReg::new(5)), &[]).unwrap();
        let read = r.rename(Some(VReg::new(6)), &[VReg::new(5)]).unwrap();
        assert_eq!(read.srcs[0], w2.dst.unwrap());
        assert_ne!(w1.dst, w2.dst);
    }

    #[test]
    fn old_destination_is_reported_for_release() {
        let mut r = RenameUnit::new(16);
        let w1 = r.rename(Some(VReg::new(3)), &[]).unwrap();
        let w2 = r.rename(Some(VReg::new(3)), &[]).unwrap();
        assert_eq!(w1.old_dst, None);
        assert_eq!(w2.old_dst, w1.dst);
    }

    #[test]
    fn pool_exhaustion_reports_stall_and_release_recovers() {
        let mut r = RenameUnit::new(4);
        let mut renames = Vec::new();
        for i in 0..4 {
            renames.push(r.rename(Some(VReg::new(i)), &[]).unwrap());
        }
        assert_eq!(r.free_count(), 0);
        assert!(!r.can_rename_dst());
        assert_eq!(
            r.rename(Some(VReg::new(9)), &[]),
            Err(RenameError::NoFreeRegister)
        );
        // Releasing one register lets renaming continue.
        r.release(renames[0].dst.unwrap());
        assert!(r.rename(Some(VReg::new(9)), &[]).is_ok());
    }

    #[test]
    fn use_before_def_is_an_error() {
        let mut r = RenameUnit::new(8);
        assert_eq!(
            r.rename(None, &[VReg::new(7)]),
            Err(RenameError::UseBeforeDef(VReg::new(7)))
        );
    }

    #[test]
    fn stores_do_not_consume_registers() {
        let mut r = RenameUnit::new(4);
        r.rename(Some(VReg::new(0)), &[]).unwrap();
        let free_before = r.free_count();
        let st = r.rename(None, &[VReg::new(0)]).unwrap();
        assert_eq!(st.dst, None);
        assert_eq!(r.free_count(), free_before);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_is_detected() {
        let mut r = RenameUnit::new(4);
        let w = r.rename(Some(VReg::new(0)), &[]).unwrap();
        let w2 = r.rename(Some(VReg::new(0)), &[]).unwrap();
        let old = w2.old_dst.unwrap();
        assert_eq!(old, w.dst.unwrap());
        r.release(old);
        r.release(old);
    }

    #[test]
    #[should_panic(expected = "outside pool")]
    fn out_of_pool_release_is_detected() {
        let mut r = RenameUnit::new(4);
        r.release(99);
    }

    #[test]
    fn src_list_behaves_like_a_slice() {
        let mut r = RenameUnit::new(8);
        let a = r.rename(Some(VReg::new(1)), &[]).unwrap();
        let b = r.rename(Some(VReg::new(2)), &[]).unwrap();
        let read = r
            .rename(
                Some(VReg::new(3)),
                &[VReg::new(1), VReg::new(2), VReg::new(1)],
            )
            .unwrap();
        assert_eq!(read.srcs.len(), 3);
        assert_eq!(read.srcs[0], a.dst.unwrap());
        assert_eq!(read.srcs[2], a.dst.unwrap());
        let collected: Vec<RenamedReg> = read.srcs.iter().copied().collect();
        assert_eq!(&collected, read.srcs.as_slice());
        let mut by_ref = Vec::new();
        for &s in &read.srcs {
            by_ref.push(s);
        }
        assert_eq!(by_ref, vec![a.dst.unwrap(), b.dst.unwrap(), a.dst.unwrap()]);
        assert_eq!(format!("{:?}", read.srcs), format!("{:?}", collected));
    }

    #[test]
    fn checkpoint_restore_recovers_the_mapping() {
        let mut r = RenameUnit::new(8);
        r.rename(Some(VReg::new(1)), &[]).unwrap();
        let cp = r.checkpoint();
        let committed_mapping = r.mapping(VReg::new(1));
        // Speculative work beyond the checkpoint.
        r.rename(Some(VReg::new(1)), &[]).unwrap();
        r.rename(Some(VReg::new(2)), &[]).unwrap();
        assert_ne!(r.mapping(VReg::new(1)), committed_mapping);
        r.restore(&cp);
        assert_eq!(r.mapping(VReg::new(1)), committed_mapping);
        assert_eq!(r.mapping(VReg::new(2)), None);
        assert_eq!(r.free_count(), 7);
    }

    #[test]
    fn checkpoint_into_reuses_a_scratch_snapshot() {
        let mut r = RenameUnit::new(8);
        let mut scratch = RenameCheckpoint::empty();
        r.rename(Some(VReg::new(1)), &[]).unwrap();
        r.checkpoint_into(&mut scratch);
        assert_eq!(scratch, r.checkpoint());
        let committed = r.mapping(VReg::new(1));

        // Speculate, restore, and verify the scratch snapshot round-trips
        // repeatedly (the second cycle exercises the buffer-reuse path).
        for _ in 0..2 {
            r.rename(Some(VReg::new(1)), &[]).unwrap();
            r.rename(Some(VReg::new(2)), &[]).unwrap();
            r.restore(&scratch);
            assert_eq!(r.mapping(VReg::new(1)), committed);
            assert_eq!(r.mapping(VReg::new(2)), None);
            assert_eq!(r.free_count(), 7);
            r.checkpoint_into(&mut scratch);
        }

        // The restored unit must behave identically to a never-flushed one:
        // double release is still caught after a restore.
        let w2 = r.rename(Some(VReg::new(1)), &[]).unwrap();
        r.release(w2.old_dst.unwrap());
        assert_eq!(r.free_count(), 7);
    }

    #[test]
    fn lazy_mapping_supports_small_pools() {
        // RG-LMUL8: 8 physical registers, only 4 architectural names used.
        let mut r = RenameUnit::new(8);
        for name in [0u8, 8, 16, 24] {
            r.rename(Some(VReg::new(name)), &[]).unwrap();
        }
        assert_eq!(r.free_count(), 4);
    }
}
