//! Second-level renaming: the VRF-Mapping engine.
//!
//! Three simple structures track where each Virtual Vector Register lives
//! (paper §III.A):
//!
//! * **PRMT** — Physical Register Mapping Table, VVR → physical register;
//! * **VRLT** — Vector Register Location Table, one bit per VVR saying
//!   whether the VVR currently lives in the P-VRF or in the M-VRF;
//! * **PFRL** — Physical Free Register List, the free physical registers.

use std::collections::VecDeque;

use crate::rename::RenamedReg;

/// Where a VVR's value currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Mapped to a physical register in the P-VRF.
    Physical(usize),
    /// Held in the memory vector register file (M-VRF).
    Memory,
    /// Never produced (no mapping at all).
    Unmapped,
}

/// The VRF-Mapping engine (PRMT + VRLT + PFRL).
///
/// ```
/// use ava_vpu::vrf_mapping::{Location, VrfMapping};
/// let mut m = VrfMapping::new(64, 8);
/// let p = m.allocate_physical(5).unwrap();
/// assert_eq!(m.location(5), Location::Physical(p));
/// m.move_to_memory(5);
/// assert_eq!(m.location(5), Location::Memory);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VrfMapping {
    /// PRMT: VVR → physical register (meaningful only when the VRLT bit says
    /// the VVR is physical).
    prmt: Vec<Option<usize>>,
    /// VRLT: true = in P-VRF, false = in M-VRF (or unmapped).
    vrlt: Vec<bool>,
    /// PFRL: free physical registers.
    pfrl: VecDeque<usize>,
    /// Whether the VVR has ever been given a home (distinguishes `Memory`
    /// from `Unmapped` when the VRLT bit is clear).
    mapped: Vec<bool>,
    num_physical: usize,
}

impl VrfMapping {
    /// Creates a mapping engine for `num_vvrs` VVRs backed by
    /// `num_physical` physical registers, all free.
    #[must_use]
    pub fn new(num_vvrs: usize, num_physical: usize) -> Self {
        assert!(
            num_physical >= 1,
            "at least one physical register is required"
        );
        Self {
            prmt: vec![None; num_vvrs],
            vrlt: vec![false; num_vvrs],
            pfrl: (0..num_physical).collect(),
            mapped: vec![false; num_vvrs],
            num_physical,
        }
    }

    /// Total number of physical registers.
    #[must_use]
    pub fn num_physical(&self) -> usize {
        self.num_physical
    }

    /// Number of free physical registers.
    #[must_use]
    pub fn free_physical(&self) -> usize {
        self.pfrl.len()
    }

    /// True if at least one physical register is free.
    #[must_use]
    pub fn has_free_physical(&self) -> bool {
        !self.pfrl.is_empty()
    }

    /// Where the given VVR currently lives.
    #[must_use]
    pub fn location(&self, vvr: RenamedReg) -> Location {
        let i = vvr as usize;
        if self.vrlt[i] {
            Location::Physical(self.prmt[i].expect("VRLT bit set without a PRMT entry"))
        } else if self.mapped[i] {
            Location::Memory
        } else {
            Location::Unmapped
        }
    }

    /// VVRs currently resident in the P-VRF.
    #[must_use]
    pub fn resident_vvrs(&self) -> Vec<RenamedReg> {
        (0..self.vrlt.len())
            .filter(|&i| self.vrlt[i])
            .map(|i| i as RenamedReg)
            .collect()
    }

    /// Allocates a free physical register for `vvr`, recording the mapping.
    /// Returns `None` when the PFRL is empty (the Swap Mechanism must first
    /// evict a resident VVR).
    pub fn allocate_physical(&mut self, vvr: RenamedReg) -> Option<usize> {
        let preg = self.pfrl.pop_front()?;
        let i = vvr as usize;
        self.prmt[i] = Some(preg);
        self.vrlt[i] = true;
        self.mapped[i] = true;
        Some(preg)
    }

    /// Marks `vvr` as evicted to the M-VRF, freeing its physical register
    /// and returning it.
    ///
    /// # Panics
    ///
    /// Panics if the VVR is not currently resident in the P-VRF.
    pub fn move_to_memory(&mut self, vvr: RenamedReg) -> usize {
        let i = vvr as usize;
        assert!(self.vrlt[i], "VVR {vvr} is not resident in the P-VRF");
        let preg = self.prmt[i]
            .take()
            .expect("resident VVR must have a physical register");
        self.vrlt[i] = false;
        self.pfrl.push_back(preg);
        preg
    }

    /// Releases the physical register of `vvr` without an M-VRF copy
    /// (aggressive reclamation of a dead value, or commit-time release of an
    /// old destination). The VVR becomes `Unmapped`.
    pub fn release(&mut self, vvr: RenamedReg) {
        let i = vvr as usize;
        if self.vrlt[i] {
            let preg = self.prmt[i]
                .take()
                .expect("resident VVR must have a physical register");
            self.pfrl.push_back(preg);
            self.vrlt[i] = false;
        }
        self.mapped[i] = false;
        self.prmt[i] = None;
    }

    /// Physical register currently backing `vvr`, if it is resident.
    #[must_use]
    pub fn physical_of(&self, vvr: RenamedReg) -> Option<usize> {
        if self.vrlt[vvr as usize] {
            self.prmt[vvr as usize]
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vvrs_are_unmapped() {
        let m = VrfMapping::new(64, 8);
        assert_eq!(m.location(0), Location::Unmapped);
        assert_eq!(m.free_physical(), 8);
        assert_eq!(m.num_physical(), 8);
    }

    #[test]
    fn allocate_then_evict_then_reallocate() {
        let mut m = VrfMapping::new(64, 2);
        let p0 = m.allocate_physical(10).unwrap();
        let p1 = m.allocate_physical(11).unwrap();
        assert_ne!(p0, p1);
        assert!(m.allocate_physical(12).is_none(), "PFRL exhausted");
        let freed = m.move_to_memory(10);
        assert_eq!(freed, p0);
        assert_eq!(m.location(10), Location::Memory);
        let p2 = m.allocate_physical(12).unwrap();
        assert_eq!(p2, p0, "freed register is reused");
        assert_eq!(m.location(12), Location::Physical(p0));
    }

    #[test]
    fn release_returns_register_and_unmaps() {
        let mut m = VrfMapping::new(8, 1);
        m.allocate_physical(3).unwrap();
        m.release(3);
        assert_eq!(m.location(3), Location::Unmapped);
        assert_eq!(m.free_physical(), 1);
        // Releasing a memory-resident VVR just clears the mapping.
        m.allocate_physical(4).unwrap();
        m.move_to_memory(4);
        m.release(4);
        assert_eq!(m.location(4), Location::Unmapped);
    }

    #[test]
    fn resident_list_matches_allocations() {
        let mut m = VrfMapping::new(16, 4);
        m.allocate_physical(1).unwrap();
        m.allocate_physical(5).unwrap();
        m.allocate_physical(9).unwrap();
        m.move_to_memory(5);
        assert_eq!(m.resident_vvrs(), vec![1, 9]);
        assert_eq!(m.physical_of(5), None);
        assert!(m.physical_of(1).is_some());
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn evicting_a_non_resident_vvr_panics() {
        let mut m = VrfMapping::new(8, 2);
        m.move_to_memory(0);
    }

    #[test]
    fn counts_stay_consistent_through_a_random_workout() {
        let mut m = VrfMapping::new(32, 4);
        // Deterministic pseudo-random churn.
        let mut state = 0x12345u64;
        let mut resident: Vec<u16> = Vec::new();
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let vvr = (state >> 33) as u16 % 32;
            match m.location(vvr) {
                Location::Physical(_) => {
                    m.move_to_memory(vvr);
                    resident.retain(|&v| v != vvr);
                }
                Location::Memory | Location::Unmapped => {
                    if m.has_free_physical() {
                        m.allocate_physical(vvr).unwrap();
                        resident.push(vvr);
                    }
                }
            }
            assert_eq!(m.free_physical() + resident.len(), 4);
            let mut expect = resident.clone();
            expect.sort_unstable();
            assert_eq!(m.resident_vvrs(), expect);
        }
    }
}
