//! Dynamic and leakage energy model (Figure 3, fourth column).
//!
//! The paper reports the three dominant contributors — the L2 cache, the
//! vector register file and the FPUs — each split into dynamic and leakage
//! energy, with the (small) energy of the AVA structures folded into the VRF
//! bars. The same convention is followed here. Dynamic energy comes from the
//! event counts measured by the simulator (cache accesses, DRAM bytes,
//! register-file element accesses, FPU operations); leakage is the product
//! of each structure's leakage power (from the SRAM model / calibrated
//! constants) and the execution time.

use ava_memory::MemoryStats;
use ava_sim::{PhaseBreakdown, RunReport};
use ava_vpu::{RenameMode, VpuConfig, VpuStats};

use crate::sram::SramMacro;

/// Energy-model constants (22 nm class). Values are chosen so the absolute
/// magnitudes land in the paper's millijoule range and, more importantly, so
/// the *ratios* the paper highlights hold: VRF leakage scales with VRF size,
/// L2 leakage dominates memory-bound kernels, spill/swap traffic shows up as
/// extra dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Dynamic energy per L2 line (64 B) access, picojoules.
    pub l2_pj_per_access: f64,
    /// Dynamic energy per byte transferred from/to DRAM, picojoules.
    pub dram_pj_per_byte: f64,
    /// Dynamic energy per double-precision FPU operation, picojoules.
    pub fpu_pj_per_op: f64,
    /// Dynamic energy per integer ALU operation, picojoules.
    pub int_pj_per_op: f64,
    /// Leakage power of the 8-lane FPU datapath, milliwatts.
    pub fpu_leakage_mw: f64,
    /// Dynamic energy of the AVA bookkeeping structures per vector
    /// instruction, picojoules (folded into the VRF dynamic bar).
    pub ava_pj_per_instr: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            l2_pj_per_access: 220.0,
            dram_pj_per_byte: 25.0,
            fpu_pj_per_op: 22.0,
            int_pj_per_op: 7.0,
            fpu_leakage_mw: 17.0,
            ava_pj_per_instr: 1.5,
        }
    }
}

/// Energy breakdown in millijoules, matching the stacked bars of Figure 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L2 (plus DRAM) dynamic energy.
    pub l2_dynamic: f64,
    /// L2 leakage energy.
    pub l2_leakage: f64,
    /// Vector register file dynamic energy (includes the AVA structures).
    pub vrf_dynamic: f64,
    /// Vector register file leakage energy.
    pub vrf_leakage: f64,
    /// FPU dynamic energy.
    pub fpu_dynamic: f64,
    /// FPU leakage energy.
    pub fpu_leakage: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.l2_dynamic
            + self.l2_leakage
            + self.vrf_dynamic
            + self.vrf_leakage
            + self.fpu_dynamic
            + self.fpu_leakage
    }
}

/// Computes the energy breakdown of one simulated run against the paper's
/// default 1 MB L2. For scenarios that override the L2 capacity use
/// [`energy_breakdown_with_l2`] — leakage and area scale with the macro.
#[must_use]
pub fn energy_breakdown(
    report: &RunReport,
    config: &VpuConfig,
    params: &EnergyParams,
) -> EnergyBreakdown {
    energy_breakdown_with_l2(report, config, 1024 * 1024, params)
}

/// Computes the energy breakdown with an explicit L2 capacity in bytes, so
/// the L2-size sensitivity axis prices its leakage correctly (a quarter-size
/// L2 leaks a quarter of the power).
#[must_use]
pub fn energy_breakdown_with_l2(
    report: &RunReport,
    config: &VpuConfig,
    l2_bytes: usize,
    params: &EnergyParams,
) -> EnergyBreakdown {
    counter_energy(
        report.cycles,
        &report.vpu,
        &report.mem,
        config,
        l2_bytes,
        params,
    )
}

/// Prices one phase segment of a multi-kernel run. The segment's VPU cycles
/// stand in for execution time (leakage is charged for the phase's share of
/// the run, so the per-phase leakages sum to roughly the whole run's), and
/// the segment's own event counters drive the dynamic terms — the per-phase
/// dynamic energies partition the run's exactly, because the counters do.
#[must_use]
pub fn phase_energy_breakdown(
    phase: &PhaseBreakdown,
    config: &VpuConfig,
    l2_bytes: usize,
    params: &EnergyParams,
) -> EnergyBreakdown {
    counter_energy(
        phase.vpu_cycles,
        &phase.vpu,
        &phase.mem,
        config,
        l2_bytes,
        params,
    )
}

/// The shared pricing core: any (cycles, VPU counters, memory counters)
/// segment — a whole run or one phase of it — against one machine's SRAM
/// macros and energy constants.
fn counter_energy(
    cycles: u64,
    vpu: &VpuStats,
    mem: &MemoryStats,
    config: &VpuConfig,
    l2_bytes: usize,
    params: &EnergyParams,
) -> EnergyBreakdown {
    let seconds = cycles as f64 / 1.0e9;
    let pj_to_mj = 1.0e-9;

    let l2_macro = SramMacro::new(l2_bytes, 1, 1);
    let vrf_macro = SramMacro::new(config.pvrf_bytes, 4, 2);

    let l2_accesses = mem.l2.accesses() as f64;
    let l2_dynamic = (l2_accesses * params.l2_pj_per_access
        + mem.dram_bytes as f64 * params.dram_pj_per_byte)
        * pj_to_mj;
    // Leakage power in mW times seconds gives millijoules directly.
    let l2_leakage = l2_macro.leakage_mw() * seconds;

    let vrf_accesses = (vpu.vrf_read_elems + vpu.vrf_write_elems) as f64;
    let ava_extra = match config.mode {
        RenameMode::Ava => vpu.issued_instrs() as f64 * params.ava_pj_per_instr,
        RenameMode::Native => 0.0,
    };
    let vrf_dynamic = (vrf_accesses * vrf_macro.energy_per_access_pj() + ava_extra) * pj_to_mj;
    let vrf_leakage = vrf_macro.leakage_mw() * seconds;

    let fpu_dynamic = (vpu.fpu_ops as f64 * params.fpu_pj_per_op
        + vpu.int_ops as f64 * params.int_pj_per_op)
        * pj_to_mj;
    let fpu_leakage = params.fpu_leakage_mw * seconds;

    EnergyBreakdown {
        l2_dynamic,
        l2_leakage,
        vrf_dynamic,
        vrf_leakage,
        fpu_dynamic,
        fpu_leakage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_sim::{run_workload, ScenarioConfig};
    use ava_workloads::{Axpy, Blackscholes};

    #[test]
    fn leakage_scales_with_vrf_size_for_native_configurations() {
        let w = Axpy::new(1024);
        let p = EnergyParams::default();
        let r1 = run_workload(&w, &ScenarioConfig::native_x(1));
        let r8 = run_workload(&w, &ScenarioConfig::native_x(8));
        let e1 = energy_breakdown(&r1, &ScenarioConfig::native_x(1).vpu_config(), &p);
        let e8 = energy_breakdown(&r8, &ScenarioConfig::native_x(8).vpu_config(), &p);
        // X8 runs faster, but its 64 KB VRF leaks far more per cycle; the
        // leakage *power* ratio is what the paper highlights.
        let leak_power_1 = e1.vrf_leakage / r1.seconds();
        let leak_power_8 = e8.vrf_leakage / r8.seconds();
        assert!(leak_power_8 > 4.0 * leak_power_1);
    }

    #[test]
    fn ava_keeps_vrf_leakage_small_at_long_mvl() {
        let w = Axpy::new(1024);
        let p = EnergyParams::default();
        let native = run_workload(&w, &ScenarioConfig::native_x(8));
        let ava = run_workload(&w, &ScenarioConfig::ava_x(8));
        let e_native = energy_breakdown(&native, &ScenarioConfig::native_x(8).vpu_config(), &p);
        let e_ava = energy_breakdown(&ava, &ScenarioConfig::ava_x(8).vpu_config(), &p);
        assert!(
            e_ava.vrf_leakage < 0.5 * e_native.vrf_leakage,
            "AVA leaks {} vs NATIVE {}",
            e_ava.vrf_leakage,
            e_native.vrf_leakage
        );
    }

    #[test]
    fn swap_and_spill_traffic_costs_dynamic_energy() {
        let w = Blackscholes::new(256);
        let p = EnergyParams::default();
        let rg8 = run_workload(&w, &ScenarioConfig::rg_lmul(ava_isa::Lmul::M8));
        let rg1 = run_workload(&w, &ScenarioConfig::rg_lmul(ava_isa::Lmul::M1));
        let e8 = energy_breakdown(
            &rg8,
            &ScenarioConfig::rg_lmul(ava_isa::Lmul::M8).vpu_config(),
            &p,
        );
        let e1 = energy_breakdown(
            &rg1,
            &ScenarioConfig::rg_lmul(ava_isa::Lmul::M1).vpu_config(),
            &p,
        );
        // LMUL8 moves far more data (full-MVL spill code), so its L2+VRF
        // dynamic energy per option priced must be higher.
        assert!(e8.l2_dynamic + e8.vrf_dynamic > e1.l2_dynamic + e1.vrf_dynamic);
    }

    #[test]
    fn phase_energies_partition_the_run_dynamic_energy() {
        use std::sync::Arc;
        let mix = ava_workloads::Composite::new(vec![
            Arc::new(Axpy::new(512)),
            Arc::new(Blackscholes::new(128)),
        ]);
        let p = EnergyParams::default();
        let scenario = ScenarioConfig::ava_x(2);
        let r = run_workload(&mix, &scenario);
        assert!(!r.phases.is_empty(), "composite runs must report phases");
        let whole = energy_breakdown(&r, &scenario.vpu_config(), &p);
        let phased: Vec<_> = r
            .phases
            .iter()
            .map(|ph| phase_energy_breakdown(ph, &scenario.vpu_config(), 1024 * 1024, &p))
            .collect();
        for e in &phased {
            assert!(e.total() > 0.0);
        }
        // The per-phase counters partition the run's, so the dynamic terms
        // (which are pure counter prices) must sum exactly.
        let sum = |f: fn(&EnergyBreakdown) -> f64| phased.iter().map(f).sum::<f64>();
        assert!((sum(|e| e.l2_dynamic) - whole.l2_dynamic).abs() < 1e-9);
        assert!((sum(|e| e.vrf_dynamic) - whole.vrf_dynamic).abs() < 1e-9);
        assert!((sum(|e| e.fpu_dynamic) - whole.fpu_dynamic).abs() < 1e-9);
    }

    #[test]
    fn totals_are_positive_and_sum_components() {
        let w = Axpy::new(256);
        let p = EnergyParams::default();
        let r = run_workload(&w, &ScenarioConfig::ava_x(2));
        let e = energy_breakdown(&r, &ScenarioConfig::ava_x(2).vpu_config(), &p);
        let sum = e.l2_dynamic
            + e.l2_leakage
            + e.vrf_dynamic
            + e.vrf_leakage
            + e.fpu_dynamic
            + e.fpu_leakage;
        assert!(e.total() > 0.0);
        assert!((e.total() - sum).abs() < 1e-12);
    }
}
