//! Analytical SRAM macro model (22 nm class).
//!
//! Area follows the usual CACTI behaviour: proportional to capacity, with a
//! super-linear penalty for extra ports (the paper cites Zyuban et al. for
//! exactly this effect). The absolute constants are calibrated so that the
//! structures the paper reports land on the values in Figure 4:
//!
//! * 8 KB 4R-2W vector register file → ≈ 0.18 mm²
//! * 64 KB 4R-2W vector register file → ≈ 1.41 mm²
//! * 1 MB L2 (effectively 1R1W) → ≈ 2.46 mm²
//!
//! (The L1 caches use the paper-reported constants directly in
//! `crate::area`, since their tag/control overhead is not SRAM-dominated.)

/// Area of one KB of 2-port SRAM at 22 nm, in mm² (calibrated to the
/// paper's 1 MB L2 = 2.46 mm²).
const MM2_PER_KB_2PORT: f64 = 0.002_4;
/// Exponent of the port-count penalty. Multi-ported register files are
/// wire-dominated, so area grows roughly quadratically with port count
/// (Zyuban et al.); the value is calibrated so an 8 KB 4R-2W file costs
/// 0.18 mm² and a 64 KB one 1.41 mm², as Figure 4 reports.
const PORT_EXPONENT: f64 = 2.05;
/// Dynamic energy per 64-bit access of an 8 KB 2-port macro, in picojoules.
const PJ_PER_ACCESS_8KB: f64 = 4.0;
/// Leakage power density in milliwatts per square millimetre at 22 nm.
const LEAKAGE_MW_PER_MM2: f64 = 18.0;

/// An SRAM macro described by capacity and port count.
///
/// ```
/// use ava_energy::SramMacro;
/// let vrf = SramMacro::new(8 * 1024, 4, 2);
/// assert!((vrf.area_mm2() - 0.18).abs() < 0.04);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramMacro {
    bytes: usize,
    read_ports: usize,
    write_ports: usize,
}

impl SramMacro {
    /// Describes a macro of `bytes` capacity with the given port counts.
    ///
    /// # Panics
    ///
    /// Panics if the capacity or port counts are zero.
    #[must_use]
    pub fn new(bytes: usize, read_ports: usize, write_ports: usize) -> Self {
        assert!(bytes > 0, "capacity must be non-zero");
        assert!(
            read_ports + write_ports >= 1,
            "at least one port is required"
        );
        Self {
            bytes,
            read_ports,
            write_ports,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.read_ports + self.write_ports
    }

    fn port_factor(&self) -> f64 {
        (self.ports() as f64 / 2.0).max(1.0).powf(PORT_EXPONENT)
    }

    /// Estimated silicon area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let kb = self.bytes as f64 / 1024.0;
        kb * MM2_PER_KB_2PORT * self.port_factor()
    }

    /// Dynamic energy per 64-bit word access, in picojoules.
    #[must_use]
    pub fn energy_per_access_pj(&self) -> f64 {
        let kb = self.bytes as f64 / 1024.0;
        PJ_PER_ACCESS_8KB * (kb / 8.0).sqrt().max(0.25) * self.port_factor().sqrt()
    }

    /// Leakage power in milliwatts (proportional to area).
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.area_mm2() * LEAKAGE_MW_PER_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors_match_the_paper() {
        // Figure 4 component areas (tolerances allow for the analytical fit).
        let vrf_8k = SramMacro::new(8 * 1024, 4, 2).area_mm2();
        let vrf_64k = SramMacro::new(64 * 1024, 4, 2).area_mm2();
        let l2 = SramMacro::new(1024 * 1024, 1, 1).area_mm2();
        assert!((vrf_8k - 0.18).abs() < 0.03, "8 KB VRF {vrf_8k}");
        assert!((vrf_64k - 1.41).abs() < 0.15, "64 KB VRF {vrf_64k}");
        assert!((l2 - 2.46).abs() < 0.2, "1 MB L2 {l2}");
    }

    #[test]
    fn area_scales_superlinearly_with_ports() {
        let two = SramMacro::new(8 * 1024, 1, 1).area_mm2();
        let six = SramMacro::new(8 * 1024, 4, 2).area_mm2();
        assert!(
            six > 5.0 * two,
            "6 ports should cost far more than 3x the 2-port area"
        );
    }

    #[test]
    fn area_and_leakage_grow_with_capacity() {
        let small = SramMacro::new(8 * 1024, 4, 2);
        let large = SramMacro::new(64 * 1024, 4, 2);
        assert!(large.area_mm2() > 4.0 * small.area_mm2());
        assert!(large.leakage_mw() > 4.0 * small.leakage_mw());
        // The paper notes VRF leakage roughly doubles per doubling of size.
        let x2 = SramMacro::new(16 * 1024, 4, 2);
        let ratio = x2.leakage_mw() / small.leakage_mw();
        assert!(ratio > 1.5 && ratio < 2.5, "leakage ratio {ratio}");
    }

    #[test]
    fn access_energy_grows_with_capacity() {
        let small = SramMacro::new(8 * 1024, 4, 2);
        let large = SramMacro::new(64 * 1024, 4, 2);
        assert!(large.energy_per_access_pj() > small.energy_per_access_pj());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SramMacro::new(0, 1, 1);
    }
}
