//! Combined McPAT-style evaluation: area, energy and performance/mm².

use ava_sim::RunReport;
use ava_vpu::VpuConfig;

use crate::area::{system_area, SystemArea};
use crate::energy::{energy_breakdown, EnergyBreakdown, EnergyParams};

/// The physical evaluation of one simulated run on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McpatResult {
    /// Full-system area breakdown (Figure 4, left axis).
    pub area: SystemArea,
    /// Energy breakdown (Figure 3, fourth column).
    pub energy: EnergyBreakdown,
    /// Performance per square millimetre, where performance is the inverse
    /// of the execution time in seconds and the area is the whole VPU
    /// (Figure 4, right axis uses the same normalisation for every bar, so
    /// any consistent definition preserves the paper's comparison).
    pub perf_per_mm2: f64,
}

/// Evaluates area, energy and performance/mm² for one run.
#[must_use]
pub fn evaluate(report: &RunReport, config: &VpuConfig, params: &EnergyParams) -> McpatResult {
    let area = system_area(config);
    let energy = energy_breakdown(report, config, params);
    let performance = 1.0 / report.seconds().max(1e-12);
    McpatResult {
        area,
        energy,
        perf_per_mm2: performance / area.vpu.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_sim::{run_workload, ScenarioConfig};
    use ava_workloads::Axpy;

    #[test]
    fn ava_wins_on_performance_per_area_for_long_vectors() {
        // The paper's Figure 4: AVA's perf/mm² exceeds NATIVE X8's because
        // it reaches similar performance in roughly half the VPU area.
        let w = Axpy::new(2048);
        let params = EnergyParams::default();
        let sys_ava = ScenarioConfig::ava_x(8);
        let sys_nat = ScenarioConfig::native_x(8);
        let ava = evaluate(&run_workload(&w, &sys_ava), &sys_ava.vpu_config(), &params);
        let nat = evaluate(&run_workload(&w, &sys_nat), &sys_nat.vpu_config(), &params);
        assert!(
            ava.perf_per_mm2 > nat.perf_per_mm2,
            "AVA {} vs NATIVE X8 {}",
            ava.perf_per_mm2,
            nat.perf_per_mm2
        );
    }

    #[test]
    fn energy_and_area_are_consistent_with_submodels() {
        let w = Axpy::new(256);
        let params = EnergyParams::default();
        let sys = ScenarioConfig::native_x(2);
        let report = run_workload(&w, &sys);
        let r = evaluate(&report, &sys.vpu_config(), &params);
        assert!(r.area.total() > 0.0);
        assert!(r.energy.total() > 0.0);
        assert!(r.perf_per_mm2 > 0.0);
    }
}
