//! Analytical post-place-and-route estimator (stand-in for the Cadence
//! Genus/Innovus flow of Table V).
//!
//! The real flow cannot be run here, so Table V is reproduced with a simple
//! physically-motivated model:
//!
//! * **Macro area** — the VRF is implemented with the LVT multi-port
//!   technique (banked replicated dual-port SRAMs), adding a constant factor
//!   over the idealised multi-ported macro.
//! * **Chip area** — (standard-cell logic + macros) placed at the reported
//!   ~61 % utilisation density.
//! * **Worst negative slack** — a target-frequency slack budget minus a wire
//!   delay term that grows with the square root of the chip area (longer
//!   wires between the SRAMs and the lane logic are exactly what the paper
//!   blames for NATIVE X8 missing timing).
//! * **Power** — clock/logic power plus a VRF term that grows sub-linearly
//!   with capacity, plus the (tiny) AVA structures.
//!
//! The slope/intercept constants are calibrated against the two rows of
//! Table V so the model interpolates sensibly for the other configurations.

use ava_vpu::{RenameMode, VpuConfig};

use crate::sram::SramMacro;

/// LVT replication overhead over an ideal 4R-2W macro.
const LVT_FACTOR: f64 = 1.25;
/// Standard-cell logic area of the 8-lane VPU (lanes, VMU, ROB, queues), mm².
const LOGIC_AREA_MM2: f64 = 1.0;
/// Area of the AVA bookkeeping structures after synthesis, mm² (Table V).
const AVA_LOGIC_AREA_MM2: f64 = 0.0042;
/// Placement utilisation density (Table V reports ~61 %).
const DENSITY: f64 = 0.61;
/// Slack model: `wns = WNS_BASE - WNS_SLOPE * sqrt(chip_area)`, calibrated to
/// the +0.119 ns (AVA) and -0.244 ns (NATIVE X8) rows of Table V.
const WNS_BASE_NS: f64 = 1.02;
const WNS_SLOPE_NS_PER_SQRT_MM2: f64 = 0.64;
/// Logic/clock power model: `P = LOGIC_POWER_BASE + LOGIC_POWER_PER_MM2 * area`.
const LOGIC_POWER_BASE_MW: f64 = 1400.0;
const LOGIC_POWER_PER_MM2_MW: f64 = 130.0;
/// VRF macro power: 184 mW for the 8 KB file, growing sub-linearly.
const VRF_POWER_8KB_MW: f64 = 184.0;
const VRF_POWER_EXPONENT: f64 = 0.36;
/// Power of the AVA structures, mW (Table V).
const AVA_POWER_MW: f64 = 5.266;

/// Post-PnR estimate for one VPU configuration (one row of Table V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnrResult {
    /// Worst negative slack at the 1 GHz target, nanoseconds (positive =
    /// timing met).
    pub wns_ns: f64,
    /// Total power at the typical corner, milliwatts.
    pub power_mw: f64,
    /// Chip area, mm².
    pub area_mm2: f64,
    /// Placement density (fraction).
    pub density: f64,
    /// Area of the VRF SRAM macros, mm².
    pub vrf_macro_area_mm2: f64,
    /// Power of the VRF SRAM macros, mW.
    pub vrf_macro_power_mw: f64,
    /// Area of the AVA structures, mm² (zero for NATIVE/RG).
    pub ava_area_mm2: f64,
    /// Power of the AVA structures, mW (zero for NATIVE/RG).
    pub ava_power_mw: f64,
}

impl PnrResult {
    /// True if the 1 GHz target frequency is met.
    #[must_use]
    pub fn meets_timing(&self) -> bool {
        self.wns_ns >= 0.0
    }
}

/// Estimates post-place-and-route metrics for a VPU configuration.
#[must_use]
pub fn pnr_estimate(config: &VpuConfig) -> PnrResult {
    let vrf_macro_area = SramMacro::new(config.pvrf_bytes, 4, 2).area_mm2() * LVT_FACTOR;
    let (ava_area, ava_power) = match config.mode {
        RenameMode::Ava => (AVA_LOGIC_AREA_MM2, AVA_POWER_MW),
        RenameMode::Native => (0.0, 0.0),
    };
    let placed = LOGIC_AREA_MM2 + ava_area + vrf_macro_area;
    let area = placed / DENSITY;
    let wns = WNS_BASE_NS - WNS_SLOPE_NS_PER_SQRT_MM2 * area.sqrt();
    let kb = config.pvrf_bytes as f64 / 1024.0;
    let vrf_power = VRF_POWER_8KB_MW * (kb / 8.0).powf(VRF_POWER_EXPONENT);
    let power = LOGIC_POWER_BASE_MW + LOGIC_POWER_PER_MM2_MW * area + vrf_power + ava_power;
    PnrResult {
        wns_ns: wns,
        power_mw: power,
        area_mm2: area,
        density: DENSITY,
        vrf_macro_area_mm2: vrf_macro_area,
        vrf_macro_power_mw: vrf_power,
        ava_area_mm2: ava_area,
        ava_power_mw: ava_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_shape_holds() {
        let ava = pnr_estimate(&VpuConfig::ava_x(8));
        let native8 = pnr_estimate(&VpuConfig::native_x(8));
        // AVA meets timing, NATIVE X8 does not.
        assert!(ava.meets_timing(), "AVA wns {}", ava.wns_ns);
        assert!(!native8.meets_timing(), "NATIVE X8 wns {}", native8.wns_ns);
        // Roughly half the chip area (paper: 50.7 % reduction).
        let reduction = 1.0 - ava.area_mm2 / native8.area_mm2;
        assert!(
            (0.35..0.65).contains(&reduction),
            "area reduction {reduction:.2}"
        );
        // Lower power.
        assert!(ava.power_mw < native8.power_mw);
    }

    #[test]
    fn absolute_numbers_are_near_the_reported_rows() {
        let ava = pnr_estimate(&VpuConfig::ava_x(8));
        let native8 = pnr_estimate(&VpuConfig::native_x(8));
        assert!(
            (ava.area_mm2 - 1.98).abs() < 0.45,
            "AVA area {}",
            ava.area_mm2
        );
        assert!(
            (native8.area_mm2 - 3.90).abs() < 0.9,
            "NATIVE X8 area {}",
            native8.area_mm2
        );
        assert!(
            (ava.power_mw - 1732.0).abs() < 350.0,
            "AVA power {}",
            ava.power_mw
        );
        assert!(
            (native8.power_mw - 2290.0).abs() < 450.0,
            "NATIVE power {}",
            native8.power_mw
        );
        assert!((ava.vrf_macro_power_mw - 184.0).abs() < 40.0);
        assert!((native8.vrf_macro_power_mw - 388.0).abs() < 80.0);
    }

    #[test]
    fn ava_structure_overhead_is_negligible() {
        let ava = pnr_estimate(&VpuConfig::ava_x(1));
        let overhead = ava.ava_area_mm2 / ava.area_mm2;
        assert!(overhead < 0.005, "paper reports 0.21 %, got {overhead:.4}");
        assert_eq!(pnr_estimate(&VpuConfig::native_x(1)).ava_area_mm2, 0.0);
    }

    #[test]
    fn smaller_designs_have_more_slack() {
        let small = pnr_estimate(&VpuConfig::native_x(1));
        let large = pnr_estimate(&VpuConfig::native_x(8));
        assert!(small.wns_ns > large.wns_ns);
    }
}
