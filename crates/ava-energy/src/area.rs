//! Area breakdowns for the VPU and the whole system (Figure 4).
//!
//! Structures that the paper reports directly (scalar core pipeline, L1
//! caches, FPU datapath, AVA bookkeeping structures) use the reported values
//! as calibrated constants; SRAM-dominated structures (VRF, L2) come from
//! the analytical [`crate::SramMacro`] model so they scale correctly with
//! the configuration.

use ava_vpu::{RenameMode, VpuConfig};

use crate::sram::SramMacro;

/// Area of the 8-lane double-precision FPU datapath (mm², Figure 4 reports
/// 0.94 mm² for every configuration).
const FPU_AREA_MM2: f64 = 0.94;
/// Area of the AVA bookkeeping structures (PRMT, VRLT, PFRL, RAC, swap
/// logic): 0.55 % of the VPU, reported as 0.0061 mm².
const AVA_STRUCTURES_MM2: f64 = 0.0061;
/// Scalar core pipeline area (mm²).
const CORE_PIPELINE_MM2: f64 = 1.04;
/// 32 KB L1 instruction cache area (mm²).
const L1I_MM2: f64 = 0.14;
/// 32 KB L1 data cache area (mm²).
const L1D_MM2: f64 = 0.29;

/// Area breakdown of one VPU instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpuArea {
    /// Vector register file area (mm²).
    pub vrf: f64,
    /// Functional-unit datapath area (mm²).
    pub fpus: f64,
    /// AVA-specific structures (zero for NATIVE/RG configurations).
    pub ava_structures: f64,
}

impl VpuArea {
    /// Total VPU area in mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.vrf + self.fpus + self.ava_structures
    }
}

/// Area breakdown of the full system (Figure 4 bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemArea {
    /// The VPU breakdown.
    pub vpu: VpuArea,
    /// Scalar core pipeline.
    pub core: f64,
    /// L1 instruction cache.
    pub l1i: f64,
    /// L1 data cache.
    pub l1d: f64,
    /// Shared L2 cache.
    pub l2: f64,
}

impl SystemArea {
    /// Total system area in mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.vpu.total() + self.core + self.l1i + self.l1d + self.l2
    }
}

/// Area of the vector register file macro for a configuration.
#[must_use]
pub fn vrf_area_mm2(config: &VpuConfig) -> f64 {
    SramMacro::new(config.pvrf_bytes, 4, 2).area_mm2()
}

/// VPU area breakdown for a configuration.
#[must_use]
pub fn vpu_area(config: &VpuConfig) -> VpuArea {
    VpuArea {
        vrf: vrf_area_mm2(config),
        fpus: FPU_AREA_MM2,
        ava_structures: match config.mode {
            RenameMode::Ava => AVA_STRUCTURES_MM2,
            RenameMode::Native => 0.0,
        },
    }
}

/// Full-system area breakdown for a configuration (Figure 4).
#[must_use]
pub fn system_area(config: &VpuConfig) -> SystemArea {
    SystemArea {
        vpu: vpu_area(config),
        core: CORE_PIPELINE_MM2,
        l1i: L1I_MM2,
        l1d: L1D_MM2,
        l2: SramMacro::new(1024 * 1024, 1, 1).area_mm2(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ava_saves_about_half_the_vpu_area_versus_native_x8() {
        let ava = vpu_area(&VpuConfig::ava_x(8)).total();
        let native8 = vpu_area(&VpuConfig::native_x(8)).total();
        let saving = 1.0 - ava / native8;
        assert!(
            (0.40..0.65).contains(&saving),
            "paper reports ~53% VPU area saving, model gives {saving:.2}"
        );
    }

    #[test]
    fn ava_structures_overhead_is_negligible() {
        let a = vpu_area(&VpuConfig::ava_x(1));
        let overhead = a.ava_structures / a.total();
        assert!(overhead < 0.01, "paper reports 0.55 %, got {overhead:.4}");
        assert_eq!(vpu_area(&VpuConfig::native_x(1)).ava_structures, 0.0);
    }

    #[test]
    fn ava_area_is_independent_of_the_configured_mvl() {
        let x1 = vpu_area(&VpuConfig::ava_x(1)).total();
        let x8 = vpu_area(&VpuConfig::ava_x(8)).total();
        assert!(
            (x1 - x8).abs() < 1e-12,
            "reconfiguration must not change area"
        );
    }

    #[test]
    fn native_vrf_area_grows_with_the_mvl() {
        let a1 = vrf_area_mm2(&VpuConfig::native_x(1));
        let a4 = vrf_area_mm2(&VpuConfig::native_x(4));
        let a8 = vrf_area_mm2(&VpuConfig::native_x(8));
        assert!(a4 > 3.0 * a1);
        assert!(a8 > 1.8 * a4);
    }

    #[test]
    fn system_totals_are_dominated_by_the_l2_and_core() {
        let s = system_area(&VpuConfig::ava_x(1));
        assert!(s.total() > s.vpu.total());
        assert!(s.l2 > 1.5);
        assert!((s.core - 1.04).abs() < 1e-12);
    }
}
