//! # ava-energy — McPAT-style area/energy model and analytical post-PnR model
//!
//! The paper backs its performance results with physical metrics from two
//! sources: the McPAT framework at 22 nm (Figure 4 and the energy columns of
//! Figure 3) and a Cadence synthesis + place-and-route flow on
//! GlobalFoundries 22FDX (Table V). Neither tool can be shipped here, so this
//! crate provides analytical stand-ins:
//!
//! * [`sram`] — an SRAM macro model (area, per-access energy, leakage) whose
//!   capacity and port scaling follows CACTI/McPAT behaviour and whose
//!   absolute constants are calibrated to the component areas the paper
//!   itself reports (8 KB 4R-2W VRF = 0.18 mm², 64 KB = 1.41 mm²,
//!   1 MB L2 = 2.46 mm², ...).
//! * [`area`] — per-structure and whole-system area breakdowns (Figure 4).
//! * [`energy`] — dynamic + leakage energy for the L2, the VRF and the FPUs
//!   given the event counts measured by the simulator (Figure 3, column 4).
//! * [`mcpat`] — the combined evaluation: area, energy and performance/mm².
//! * [`pnr`] — the analytical post-place-and-route estimator standing in for
//!   the Cadence flow (Table V): macro/logic area, power, wire-length-driven
//!   worst negative slack and utilisation density.
//!
//! Every constant that was fitted to a number reported in the paper is
//! documented where it is defined, so the substitution is auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod mcpat;
pub mod pnr;
pub mod sram;

pub use area::{system_area, vpu_area, SystemArea, VpuArea};
pub use energy::{
    energy_breakdown, energy_breakdown_with_l2, phase_energy_breakdown, EnergyBreakdown,
    EnergyParams,
};
pub use mcpat::{evaluate, McpatResult};
pub use pnr::{pnr_estimate, PnrResult};
pub use sram::SramMacro;
