//! Lowering from allocated IR to the final [`ava_isa::Program`].
//!
//! Allocation slots are mapped to architectural register names. Under
//! register grouping (LMUL > 1) only every LMUL-th register name is usable
//! as a group base, so slot `i` becomes `v(i * LMUL)` — exactly how the
//! RISC-V V specification names register groups.

use std::collections::HashMap;

use ava_isa::{InstrRole, Lmul, MemAccess, Operand, Program, VReg, VecInstr, VlMode};

use crate::ir::{IrInstr, IrKernel, IrOperand, VirtReg};
use crate::regalloc::{AllocatedKernel, Allocation, RegAllocator};

/// Options controlling compilation of an IR kernel to a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Register grouping factor; determines the architectural register
    /// budget (`32 / LMUL`) and the register-name spacing.
    pub lmul: Lmul,
    /// Base address of the compiler's spill area (the "stack").
    pub spill_base: u64,
    /// Size in bytes of one spill slot; must hold a full maximum-length
    /// vector register because spill code runs at full MVL.
    pub spill_slot_bytes: u64,
}

impl CompileOptions {
    /// Creates compile options.
    #[must_use]
    pub fn new(lmul: Lmul, spill_base: u64, spill_slot_bytes: u64) -> Self {
        Self {
            lmul,
            spill_base,
            spill_slot_bytes,
        }
    }
}

/// A compiled kernel: the executable program plus code-generation statistics.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The lowered program, ready for the simulator.
    pub program: Program,
    /// Compiler-inserted spill stores.
    pub spill_stores: usize,
    /// Compiler-inserted spill reloads.
    pub spill_loads: usize,
    /// Architectural registers actually used.
    pub registers_used: usize,
    /// Maximum simultaneous live values in the source IR (register pressure).
    pub max_pressure: usize,
    /// Bytes of stack reserved for spills.
    pub spill_area_bytes: u64,
    /// Source IR-instruction index of every program instruction, in program
    /// order. Spill code is attributed to the IR instruction it was inserted
    /// for, so the mapping is monotone — phase boundaries expressed as IR
    /// indices translate to clean program ranges.
    pub ir_map: Vec<usize>,
}

impl CompiledKernel {
    /// The program index at which the IR range `[0, ir_end)` ends: the
    /// first program instruction attributed to an IR index `>= ir_end`.
    /// Used to split a concatenated multi-phase program back into per-phase
    /// segments for the per-phase breakdown.
    #[must_use]
    pub fn program_split(&self, ir_end: usize) -> usize {
        self.ir_map.partition_point(|&ir| ir < ir_end)
    }
}

/// Compiles an IR kernel for the given register-grouping configuration.
///
/// See the crate-level documentation for an example.
#[must_use]
pub fn compile(kernel: &IrKernel, options: &CompileOptions) -> CompiledKernel {
    let budget = options.lmul.architectural_registers();
    let allocator = RegAllocator::new(budget, options.spill_base, options.spill_slot_bytes);
    let allocated = allocator.allocate(kernel);
    lower(kernel, &allocated, options)
}

fn slot_to_vreg(slot: usize, lmul: Lmul) -> VReg {
    let name = slot * lmul.factor();
    VReg::new(u8::try_from(name).expect("register name out of range"))
}

/// Lowers an allocated kernel to a program.
#[must_use]
pub fn lower(
    kernel: &IrKernel,
    allocated: &AllocatedKernel,
    options: &CompileOptions,
) -> CompiledKernel {
    let mut program = Program::new(kernel.name.clone());
    let mut ir_map = Vec::with_capacity(allocated.allocations.len());
    // Spill code is emitted while the allocator processes one IR
    // instruction and always precedes that instruction's op in the stream,
    // so pending spills are attributed to the next op's IR index.
    let mut pending_spills = 0usize;
    for alloc in &allocated.allocations {
        match alloc {
            Allocation::SpillStore { slot, addr } => {
                program.push(
                    VecInstr::vstore(slot_to_vreg(*slot, options.lmul), *addr)
                        .with_full_mvl()
                        .with_role(InstrRole::SpillStore),
                );
                pending_spills += 1;
            }
            Allocation::SpillLoad { slot, addr } => {
                program.push(
                    VecInstr::vload(slot_to_vreg(*slot, options.lmul), *addr)
                        .with_full_mvl()
                        .with_role(InstrRole::SpillLoad),
                );
                pending_spills += 1;
            }
            Allocation::Op {
                ir_index,
                dst_slot,
                src_slots,
            } => {
                let ir = &kernel.instrs[*ir_index];
                program.push(lower_op(ir, *dst_slot, src_slots, options.lmul));
                ir_map.extend(std::iter::repeat_n(*ir_index, pending_spills + 1));
                pending_spills = 0;
            }
        }
    }
    ir_map.extend(std::iter::repeat_n(kernel.instrs.len(), pending_spills));
    debug_assert_eq!(ir_map.len(), program.len());
    CompiledKernel {
        program,
        spill_stores: allocated.spill_stores,
        spill_loads: allocated.spill_loads,
        registers_used: allocated.slots_used,
        max_pressure: kernel.max_pressure(),
        spill_area_bytes: allocated.spill_area_bytes,
        ir_map,
    }
}

fn lower_op(ir: &IrInstr, dst_slot: Option<usize>, src_slots: &[usize], lmul: Lmul) -> VecInstr {
    // Build the mapping from this instruction's virtual sources to the
    // architectural registers chosen for them (used for the index register
    // of gathers/scatters as well as the ordinary operands).
    let mut reg_map: HashMap<VirtReg, VReg> = HashMap::new();
    let mut slot_iter = src_slots.iter();
    let mut srcs: Vec<Operand> = Vec::with_capacity(ir.srcs.len());
    for op in &ir.srcs {
        match op {
            IrOperand::Reg(vr) => {
                let slot = slot_iter
                    .next()
                    .expect("allocation recorded fewer source slots than register operands");
                let arch = slot_to_vreg(*slot, lmul);
                reg_map.insert(*vr, arch);
                srcs.push(Operand::Reg(arch));
            }
            IrOperand::Scalar(e) => srcs.push(Operand::Scalar(*e)),
        }
    }
    let dst = dst_slot.map(|s| slot_to_vreg(s, lmul));
    let mem = ir.mem.map(|m| MemAccess {
        base: m.base,
        stride: m.stride,
        index_reg: m.index.map(|ix| {
            *reg_map
                .get(&ix)
                .expect("index register of an indexed access must be a source operand")
        }),
    });
    VecInstr {
        opcode: ir.opcode,
        dst,
        srcs,
        mem,
        vl_mode: VlMode::Current,
        setvl_request: ir.setvl_request,
        role: InstrRole::Normal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use ava_isa::Opcode;

    fn wide_kernel(width: usize) -> IrKernel {
        let mut b = KernelBuilder::new("wide");
        b.set_vl(16);
        let vals: Vec<_> = (0..width).map(|i| b.vload(64 * i as u64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.vfadd(acc, v);
        }
        b.vstore(acc, 0x10_0000);
        b.finish()
    }

    #[test]
    fn lmul1_uses_contiguous_register_names() {
        let out = compile(
            &wide_kernel(6),
            &CompileOptions::new(Lmul::M1, 0x40_0000, 1024),
        );
        let regs = out.program.used_registers();
        assert!(regs.iter().all(|r| r.index() < 8));
        assert_eq!(out.spill_stores, 0);
    }

    #[test]
    fn lmul8_uses_group_base_names_only() {
        let out = compile(
            &wide_kernel(3),
            &CompileOptions::new(Lmul::M8, 0x40_0000, 8192),
        );
        for r in out.program.used_registers() {
            assert_eq!(
                r.index() % 8,
                0,
                "register {r} is not a group base under LMUL=8"
            );
        }
    }

    #[test]
    fn spill_code_is_tagged_and_full_mvl() {
        let out = compile(
            &wide_kernel(20),
            &CompileOptions::new(Lmul::M8, 0x40_0000, 8192),
        );
        assert!(out.spill_stores > 0);
        let stats = out.program.stats();
        assert_eq!(stats.spill_stores, out.spill_stores);
        assert_eq!(stats.spill_loads, out.spill_loads);
        for i in out.program.iter().filter(|i| i.is_spill()) {
            assert_eq!(i.vl_mode, VlMode::FullMvl);
        }
    }

    #[test]
    fn lower_preserves_program_semantics_shape() {
        let mut b = KernelBuilder::new("axpyish");
        b.set_vl(16);
        let x = b.vload(0x100);
        let y = b.vload(0x200);
        let r = b.vfmacc_scalar(y, 3.0, x);
        b.vstore(r, 0x200);
        let out = compile(&b.finish(), &CompileOptions::new(Lmul::M1, 0x40_0000, 1024));
        let ops: Vec<Opcode> = out.program.iter().map(|i| i.opcode).collect();
        assert_eq!(
            ops,
            vec![
                Opcode::SetVl,
                Opcode::VLoad,
                Opcode::VLoad,
                Opcode::VFMacc,
                Opcode::VStore
            ]
        );
        // The store must read the same register the FMA wrote.
        let fma_dst = out.program.instructions()[3].dst.unwrap();
        let store_src = out.program.instructions()[4].source_regs().next().unwrap();
        assert_eq!(fma_dst, store_src);
    }

    #[test]
    fn indexed_ops_map_their_index_register() {
        let mut b = KernelBuilder::new("gather");
        let idx = b.vid();
        let g = b.vload_indexed(0x1000, idx);
        b.vstore_indexed(g, 0x2000, idx);
        let out = compile(&b.finish(), &CompileOptions::new(Lmul::M1, 0x40_0000, 1024));
        let gather = &out.program.instructions()[1];
        assert_eq!(gather.mem.unwrap().index_reg, gather.srcs[0].reg());
        let scatter = &out.program.instructions()[2];
        assert_eq!(scatter.mem.unwrap().index_reg, scatter.srcs[1].reg());
    }

    #[test]
    fn register_budget_is_respected_for_every_lmul() {
        for lmul in Lmul::all() {
            let out = compile(
                &wide_kernel(28),
                &CompileOptions::new(lmul, 0x40_0000, 8192),
            );
            assert!(
                out.registers_used <= lmul.architectural_registers(),
                "{lmul}: used {}",
                out.registers_used
            );
            // Register names must stay in 0..32.
            for r in out.program.used_registers() {
                assert!(r.index() < 32);
            }
        }
    }

    #[test]
    fn higher_lmul_produces_at_least_as_much_spill() {
        let k = wide_kernel(24);
        let spills = |l: Lmul| compile(&k, &CompileOptions::new(l, 0x40_0000, 8192)).spill_loads;
        assert!(spills(Lmul::M8) >= spills(Lmul::M4));
        assert!(spills(Lmul::M4) >= spills(Lmul::M2));
        assert!(spills(Lmul::M2) >= spills(Lmul::M1));
        assert_eq!(spills(Lmul::M1), 0, "32 registers fit 24 live values");
    }

    #[test]
    fn ir_map_attributes_every_program_instruction_monotonically() {
        for width in [6, 20] {
            let k = wide_kernel(width);
            let out = compile(&k, &CompileOptions::new(Lmul::M8, 0x40_0000, 8192));
            assert_eq!(out.ir_map.len(), out.program.len());
            assert!(out.ir_map.windows(2).all(|w| w[0] <= w[1]), "monotone");
            // Splitting at the IR end covers the whole program; splitting at
            // zero covers none of it.
            assert_eq!(out.program_split(k.len()), out.program.len());
            assert_eq!(out.program_split(0), 0);
            // The two halves partition the program.
            let mid = out.program_split(k.len() / 2);
            assert!(mid <= out.program.len());
        }
    }

    #[test]
    fn max_pressure_is_reported() {
        let out = compile(
            &wide_kernel(12),
            &CompileOptions::new(Lmul::M1, 0x40_0000, 1024),
        );
        assert_eq!(out.max_pressure, 13);
    }
}
