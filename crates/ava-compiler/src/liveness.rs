//! Live intervals and next-use information for straight-line kernels.
//!
//! Because kernels are straight-line dynamic traces (the scalar loop is
//! already unrolled into strips by the workload generators), liveness is a
//! single backwards pass: a virtual register is live from its definition to
//! its last use.
//!
//! The result tables are dense vectors indexed by the virtual-register id
//! (ids are allocated densely from 0), and [`Liveness::next_use`] — the
//! query the Belady spill heuristic hammers — binary-searches the sorted
//! per-register use positions instead of scanning them linearly.

use crate::ir::{IrKernel, VirtReg};

/// The live interval of one virtual register, in instruction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveInterval {
    /// Instruction index that defines the value.
    pub def: usize,
    /// Instruction index of the last use (equals `def` for dead definitions).
    pub last_use: usize,
}

impl LiveInterval {
    /// True if the value is live at instruction index `at` (exclusive of the
    /// defining instruction itself, inclusive of the last use).
    #[must_use]
    pub fn live_at(&self, at: usize) -> bool {
        at > self.def && at <= self.last_use
    }

    /// Interval length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.last_use - self.def
    }

    /// True if the interval spans no instructions (defined and last used at
    /// the same point).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the value is never read.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.last_use == self.def
    }
}

/// Result of liveness analysis over an [`IrKernel`].
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// Interval per virtual-register id (`None` for never-defined ids).
    intervals: Vec<Option<LiveInterval>>,
    /// Sorted use positions per virtual-register id.
    use_positions: Vec<Vec<usize>>,
}

impl Liveness {
    /// Analyses a kernel.
    #[must_use]
    pub fn analyse(kernel: &IrKernel) -> Self {
        let nregs = kernel
            .instrs
            .iter()
            .flat_map(|i| i.dst.into_iter().chain(i.source_regs()))
            .map(|r| r.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut intervals: Vec<Option<LiveInterval>> = vec![None; nregs];
        let mut use_positions: Vec<Vec<usize>> = vec![Vec::new(); nregs];

        for (idx, instr) in kernel.instrs.iter().enumerate() {
            for src in instr.source_regs() {
                if let Some(iv) = &mut intervals[src.0 as usize] {
                    iv.last_use = idx;
                }
                // The forward pass pushes positions in increasing order, so
                // each list stays sorted for the `next_use` binary search.
                use_positions[src.0 as usize].push(idx);
            }
            if let Some(dst) = instr.dst {
                intervals[dst.0 as usize].get_or_insert(LiveInterval {
                    def: idx,
                    last_use: idx,
                });
            }
        }
        Self {
            intervals,
            use_positions,
        }
    }

    /// The interval of a register, if it is ever defined.
    #[must_use]
    pub fn interval(&self, reg: VirtReg) -> Option<&LiveInterval> {
        self.intervals.get(reg.0 as usize)?.as_ref()
    }

    /// All intervals, in virtual-register order.
    pub fn intervals(&self) -> impl Iterator<Item = (VirtReg, &LiveInterval)> {
        self.intervals
            .iter()
            .enumerate()
            .filter_map(|(id, iv)| Some((VirtReg(id as u32), iv.as_ref()?)))
    }

    /// The next instruction index at or after `from` where `reg` is used, or
    /// `usize::MAX` if it is never used again. This drives the Belady
    /// ("furthest next use") spill heuristic.
    #[must_use]
    pub fn next_use(&self, reg: VirtReg, from: usize) -> usize {
        let Some(uses) = self.use_positions.get(reg.0 as usize) else {
            return usize::MAX;
        };
        match uses.get(uses.partition_point(|&u| u < from)) {
            Some(&u) => u,
            None => usize::MAX,
        }
    }

    /// Maximum number of simultaneously live values over the kernel: the
    /// register pressure a compiler must accommodate.
    #[must_use]
    pub fn max_pressure(&self) -> usize {
        // Sweep over interval endpoints.
        let mut events: Vec<(usize, i32)> = Vec::with_capacity(self.intervals.len() * 2);
        for iv in self.intervals.iter().flatten() {
            if iv.is_dead() {
                continue;
            }
            events.push((iv.def, 1));
            events.push((iv.last_use + 1, -1));
        }
        events.sort_unstable();
        let mut live = 0i32;
        let mut max = 0i32;
        for (_, delta) in events {
            live += delta;
            max = max.max(live);
        }
        max.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn chain(n: usize) -> IrKernel {
        // v0 = load; v1 = v0+v0; v2 = v1+v1; ... each value dies immediately.
        let mut b = KernelBuilder::new("chain");
        let mut prev = b.vload(0);
        for _ in 0..n {
            prev = b.vfadd(prev, prev);
        }
        b.vstore(prev, 0x100);
        b.finish()
    }

    #[test]
    fn chain_has_pressure_two_at_most() {
        // At each step only the previous value and (transiently) the new one
        // are live; max simultaneous liveness is 1 by our accounting (the new
        // value starts at its def which is when the old one has its last use).
        let k = chain(10);
        let l = Liveness::analyse(&k);
        assert!(l.max_pressure() <= 2, "pressure {}", l.max_pressure());
    }

    #[test]
    fn wide_kernel_has_high_pressure() {
        // Load N values, then sum them all at the end: all N live at once.
        let mut b = KernelBuilder::new("wide");
        let vals: Vec<_> = (0..12).map(|i| b.vload(8 * i as u64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.vfadd(acc, v);
        }
        b.vstore(acc, 0x1000);
        let l = Liveness::analyse(&b.finish());
        assert_eq!(
            l.max_pressure(),
            13,
            "12 loads plus the first accumulator are simultaneously live"
        );
    }

    #[test]
    fn intervals_record_def_and_last_use() {
        let mut b = KernelBuilder::new("t");
        let a = b.vload(0); // idx 0
        let c = b.vload(8); // idx 1
        let d = b.vfadd(a, c); // idx 2
        b.vstore(d, 16); // idx 3
        let _ = b.vfadd(c, c); // idx 4 (c used later than a)
        let l = Liveness::analyse(&b.finish());
        assert_eq!(l.interval(a).unwrap().def, 0);
        assert_eq!(l.interval(a).unwrap().last_use, 2);
        assert_eq!(l.interval(c).unwrap().last_use, 4);
        assert_eq!(l.interval(d).unwrap().last_use, 3);
    }

    #[test]
    fn next_use_finds_forward_uses_only() {
        let mut b = KernelBuilder::new("t");
        let a = b.vload(0); // 0
        let _ = b.vfadd(a, a); // 1
        let _ = b.vfmul(a, 2.0); // 2
        let l = Liveness::analyse(&b.finish());
        assert_eq!(l.next_use(a, 1), 1);
        assert_eq!(l.next_use(a, 2), 2);
        assert_eq!(l.next_use(a, 3), usize::MAX);
    }

    #[test]
    fn dead_definitions_are_flagged() {
        let mut b = KernelBuilder::new("t");
        let a = b.vload(0);
        let _unused = b.vfadd(a, a);
        let l = Liveness::analyse(&b.finish());
        let unused_iv = l.interval(VirtReg(1)).unwrap();
        assert!(unused_iv.is_dead());
        assert_eq!(unused_iv.len(), 0);
    }

    #[test]
    fn live_at_is_exclusive_of_def() {
        let iv = LiveInterval {
            def: 3,
            last_use: 7,
        };
        assert!(!iv.live_at(3));
        assert!(iv.live_at(4));
        assert!(iv.live_at(7));
        assert!(!iv.live_at(8));
    }
}
