//! # ava-compiler — vector code generation substrate
//!
//! The paper's workloads are hand-vectorised C programs compiled with the
//! RISC-V vector intrinsics; the compiler allocates the 32 architectural
//! vector registers (or `32 / LMUL` of them when register grouping is used)
//! and inserts *spill code* — full-MVL vector stores and reloads — whenever
//! the register pressure exceeds that budget. Spill traffic is central to
//! the paper's comparison between AVA and the RG baseline, so this crate
//! reproduces that tool-chain stage:
//!
//! * [`KernelBuilder`] — an intrinsics-style API over an SSA-like IR with
//!   unbounded virtual vector registers; the `ava-workloads` crate expresses
//!   every kernel against it.
//! * [`liveness`] — live intervals and next-use chains over the straight-line
//!   vector instruction trace.
//! * [`regalloc`] — a Belady (furthest-next-use) register allocator that maps
//!   virtual registers onto the architectural budget and inserts spill
//!   stores/reloads executed at full MVL, exactly as the paper describes
//!   (§II.A: "the spill code includes load/store of vector registers with
//!   the MVL, even though the application only needs a portion of them").
//! * [`lower`] — emits the final [`ava_isa::Program`], mapping allocation
//!   slots to architectural register names (spaced by LMUL for grouped
//!   configurations).
//! * [`analysis`] — `ava-lint`: a forward-dataflow static verifier over the
//!   IR (VL-state lattice, SSA well-formedness, address-interval bounds
//!   checks, and pattern lints for the known composite bug classes).
//!
//! ```
//! use ava_compiler::{KernelBuilder, compile, CompileOptions};
//! use ava_isa::Lmul;
//!
//! let mut b = KernelBuilder::new("saxpy");
//! b.set_vl(16);
//! let x = b.vload(0x1000);
//! let y = b.vload(0x2000);
//! let r = b.vfmacc_scalar(y, 2.0, x);
//! b.vstore(r, 0x2000);
//! let out = compile(&b.finish(), &CompileOptions::new(Lmul::M1, 0x8_0000, 128));
//! assert_eq!(out.spill_stores, 0);
//! assert_eq!(out.program.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod ir;
pub mod liveness;
pub mod lower;
pub mod regalloc;

pub use analysis::{analyze, AnalysisInput, AnalysisReport, Diagnostic};
pub use builder::KernelBuilder;
pub use ir::{IrInstr, IrKernel, IrOperand, RebaseRule, VirtReg};
pub use liveness::{LiveInterval, Liveness};
pub use lower::{compile, CompileOptions, CompiledKernel};
pub use regalloc::{AllocatedKernel, Allocation, RegAllocator};
