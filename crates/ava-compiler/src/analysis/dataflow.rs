//! A small forward-dataflow framework over straight-line IR.
//!
//! Kernels are straight-line traces (no branches), so a forward pass is a
//! single left-to-right walk threading an abstract state through the
//! instructions. Each analysis implements [`ForwardPass`]; the runner
//! ([`run`] / [`run_traced`]) owns the iteration order and diagnostic
//! collection so the passes stay pure transfer functions.

use crate::ir::{IrInstr, IrKernel, VirtReg};

use super::diagnostics::{Code, Diagnostic};

/// One forward analysis over a straight-line kernel.
pub trait ForwardPass {
    /// The abstract state threaded through the instructions.
    type State: Clone;

    /// The state before the first instruction.
    fn boundary(&self) -> Self::State;

    /// Updates `state` across instruction `idx`, appending any findings.
    fn transfer(
        &mut self,
        idx: usize,
        instr: &IrInstr,
        state: &mut Self::State,
        diags: &mut Vec<Diagnostic>,
    );

    /// Called once after the last instruction, for whole-kernel findings
    /// (e.g. definitions that were never used).
    fn finish(&mut self, _state: &Self::State, _diags: &mut Vec<Diagnostic>) {}
}

/// Runs `pass` over `kernel`, returning the state after the last
/// instruction.
pub fn run<P: ForwardPass>(
    kernel: &IrKernel,
    pass: &mut P,
    diags: &mut Vec<Diagnostic>,
) -> P::State {
    let mut state = pass.boundary();
    for (idx, instr) in kernel.instrs.iter().enumerate() {
        pass.transfer(idx, instr, &mut state, diags);
    }
    pass.finish(&state, diags);
    state
}

/// Runs `pass` over `kernel`, additionally recording the state *before*
/// each instruction (index `i` of the returned vector is the state on entry
/// to `kernel.instrs[i]`). Use this when a later pass needs per-instruction
/// context, e.g. the vector length in force at every memory access.
pub fn run_traced<P: ForwardPass>(
    kernel: &IrKernel,
    pass: &mut P,
    diags: &mut Vec<Diagnostic>,
) -> Vec<P::State> {
    let mut state = pass.boundary();
    let mut trace = Vec::with_capacity(kernel.len());
    for (idx, instr) in kernel.instrs.iter().enumerate() {
        trace.push(state.clone());
        pass.transfer(idx, instr, &mut state, diags);
    }
    pass.finish(&state, diags);
    trace
}

/// SSA well-formedness: every register is defined before use (AVA101) and
/// defined at most once (AVA102); definitions that are never read are
/// reported at their def site (AVA104).
#[derive(Debug)]
pub struct SsaPass {
    def_site: Vec<Option<usize>>,
    used: Vec<bool>,
}

impl SsaPass {
    /// A pass sized for `kernel`'s virtual-register universe.
    #[must_use]
    pub fn new(kernel: &IrKernel) -> Self {
        let n = kernel.num_virt_regs as usize;
        Self {
            def_site: vec![None; n],
            used: vec![false; n],
        }
    }

    fn mark_use(&mut self, idx: usize, r: VirtReg, diags: &mut Vec<Diagnostic>) {
        match self.def_site.get(r.id()) {
            Some(Some(_)) => self.used[r.id()] = true,
            _ => diags.push(Diagnostic::new(
                Code::UseBeforeDef,
                idx,
                format!("{r} is read before any instruction defines it"),
            )),
        }
    }
}

impl ForwardPass for SsaPass {
    // The def/use tables live on the pass itself (they are written once per
    // register, not rebuilt per instruction), so the threaded state is
    // trivial.
    type State = ();

    fn boundary(&self) -> Self::State {}

    fn transfer(
        &mut self,
        idx: usize,
        instr: &IrInstr,
        _state: &mut Self::State,
        diags: &mut Vec<Diagnostic>,
    ) {
        for r in instr.source_regs() {
            self.mark_use(idx, r, diags);
        }
        if let Some(m) = &instr.mem {
            if let Some(r) = m.index {
                self.mark_use(idx, r, diags);
            }
        }
        if let Some(d) = instr.dst {
            if d.id() >= self.def_site.len() {
                self.def_site.resize(d.id() + 1, None);
                self.used.resize(d.id() + 1, false);
            }
            if let Some(prev) = self.def_site[d.id()] {
                diags.push(Diagnostic::new(
                    Code::Redefinition,
                    idx,
                    format!("{d} is redefined (first defined at ir[{prev}]); SSA form requires a fresh register"),
                ));
            }
            self.def_site[d.id()] = Some(idx);
        }
    }

    fn finish(&mut self, _state: &Self::State, diags: &mut Vec<Diagnostic>) {
        for (id, site) in self.def_site.iter().enumerate() {
            if let Some(at) = site {
                if !self.used[id] {
                    diags.push(Diagnostic::new(
                        Code::UnusedDef,
                        *at,
                        format!("{} is defined but never used", VirtReg(id as u32)),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrMemAccess, IrOperand};
    use ava_isa::Opcode;

    fn instr(opcode: Opcode, dst: Option<u32>, srcs: &[u32]) -> IrInstr {
        IrInstr {
            opcode,
            dst: dst.map(VirtReg),
            srcs: srcs.iter().map(|&r| IrOperand::Reg(VirtReg(r))).collect(),
            mem: None,
            setvl_request: None,
        }
    }

    #[test]
    fn well_formed_kernel_is_clean() {
        let mut b = crate::KernelBuilder::new("ok");
        b.set_vl(8);
        let x = b.vload(0x1000);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, 0x2000);
        let k = b.finish();
        let mut diags = Vec::new();
        run(&k, &mut SsaPass::new(&k), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn use_before_def_is_flagged() {
        let k = IrKernel {
            name: "bad".into(),
            instrs: vec![instr(Opcode::VFAdd, Some(1), &[0])],
            num_virt_regs: 2,
        };
        let mut diags = Vec::new();
        run(&k, &mut SsaPass::new(&k), &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::UseBeforeDef));
    }

    #[test]
    fn undefined_gather_index_is_flagged() {
        let k = IrKernel {
            name: "bad".into(),
            instrs: vec![IrInstr {
                opcode: Opcode::VLoadIndexed,
                dst: Some(VirtReg(1)),
                srcs: vec![IrOperand::Reg(VirtReg(0))],
                mem: Some(IrMemAccess {
                    base: 0x1000,
                    stride: 8,
                    index: Some(VirtReg(0)),
                }),
                setvl_request: None,
            }],
            num_virt_regs: 2,
        };
        let mut diags = Vec::new();
        run(&k, &mut SsaPass::new(&k), &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::UseBeforeDef));
    }

    #[test]
    fn redefinition_is_flagged_with_both_sites() {
        let k = IrKernel {
            name: "bad".into(),
            instrs: vec![
                instr(Opcode::VId, Some(0), &[]),
                instr(Opcode::VId, Some(0), &[]),
                instr(Opcode::VMv, Some(1), &[0]),
            ],
            num_virt_regs: 2,
        };
        let mut diags = Vec::new();
        run(&k, &mut SsaPass::new(&k), &mut diags);
        let d = diags.iter().find(|d| d.code == Code::Redefinition).unwrap();
        assert_eq!(d.ir_index, 1);
        assert!(d.message.contains("ir[0]"), "{}", d.message);
    }

    #[test]
    fn unused_def_points_at_the_def_site() {
        let k = IrKernel {
            name: "bad".into(),
            instrs: vec![
                instr(Opcode::VId, Some(0), &[]),
                instr(Opcode::VId, Some(1), &[]),
                instr(Opcode::VMv, Some(2), &[0]),
                instr(Opcode::VMv, Some(3), &[2]),
            ],
            num_virt_regs: 4,
        };
        let mut diags = Vec::new();
        run(&k, &mut SsaPass::new(&k), &mut diags);
        let unused: Vec<_> = diags.iter().filter(|d| d.code == Code::UnusedDef).collect();
        // %1 (defined at ir[1]) and %3 (defined at ir[3]) are never read.
        assert_eq!(unused.len(), 2, "{diags:?}");
        assert_eq!(unused[0].ir_index, 1);
        assert_eq!(unused[1].ir_index, 3);
    }

    #[test]
    fn traced_run_snapshots_states_before_each_instruction() {
        struct Counter;
        impl ForwardPass for Counter {
            type State = usize;
            fn boundary(&self) -> usize {
                0
            }
            fn transfer(&mut self, _: usize, _: &IrInstr, s: &mut usize, _: &mut Vec<Diagnostic>) {
                *s += 1;
            }
        }
        let k = IrKernel {
            name: "t".into(),
            instrs: vec![
                instr(Opcode::VId, Some(0), &[]),
                instr(Opcode::VMv, Some(1), &[0]),
            ],
            num_virt_regs: 2,
        };
        let mut diags = Vec::new();
        let trace = run_traced(&k, &mut Counter, &mut diags);
        assert_eq!(trace, vec![0, 1]);
    }
}
