//! # Static IR verification and diagnostics (`ava-lint`)
//!
//! Every real model bug found while growing the workload suite — the
//! pre-`vsetvl` splat corruption, the wrong-buffer rebase in pipelined
//! composites, the mis-wired ping-pong carry — was caught only by runtime
//! validation failures deep inside a sweep. This module catches those bug
//! classes *statically*, before any simulation runs, with a forward
//! dataflow over the straight-line IR:
//!
//! | Code   | Severity | Finding |
//! |--------|----------|---------|
//! | AVA001 | error    | splat before any `vsetvl` |
//! | AVA002 | error    | access to a placeholder arena no rebase rule covered |
//! | AVA003 | error    | carried buffer read after in-place destruction |
//! | AVA004 | warn     | narrow-VL value's stale lanes escape via a wider store/reduction |
//! | AVA101 | error    | register used before definition |
//! | AVA102 | error    | register redefined (SSA violation) |
//! | AVA103 | info     | dead store (fully overwritten, never read) |
//! | AVA104 | warn     | register defined but never used |
//! | AVA201 | error    | access outside every planned arena |
//! | AVA202 | error    | access runs past its owning arena |
//!
//! The entry point is [`analyze`]; `ava-workloads` wires it into
//! `Workload::verify()` and runs it deny-by-default inside the composite
//! constructors.
//!
//! ```
//! use ava_compiler::analysis::{analyze, AnalysisInput, Code, Severity};
//! use ava_compiler::KernelBuilder;
//!
//! let mut b = KernelBuilder::new("bad");
//! let c = b.vsplat(2.0); // splat before vsetvl: the PR 3 bug class
//! b.set_vl(16);
//! let x = b.vload(0x1000);
//! let r = b.vfmul(x, c);
//! b.vstore(r, 0x2000);
//!
//! let report = analyze(&b.finish(), &AnalysisInput::new(Some(16)));
//! assert!(report.has(Code::SplatBeforeSetVl));
//! assert!(!report.is_clean(Severity::Warn));
//! ```

pub mod dataflow;
pub mod diagnostics;
pub mod mem_bounds;
pub mod vl_state;

pub use dataflow::{run, run_traced, ForwardPass, SsaPass};
pub use diagnostics::{AnalysisReport, Code, Diagnostic, Severity};
pub use mem_bounds::{check_memory, Arena};
pub use vl_state::{VlPass, VlState};

use crate::ir::IrKernel;

/// Everything the analyzer knows about the world outside the kernel.
#[derive(Debug, Clone, Default)]
pub struct AnalysisInput {
    /// The hardware maximum vector length, if pinned down; resolves
    /// [`VlState::Max`] and widens `vsetvlmax`-style requests.
    pub mvl: Option<usize>,
    /// The planned memory regions. When empty, the memory checks (AVA002,
    /// AVA003, AVA103, AVA201, AVA202) are skipped — there is no layout to
    /// check against.
    pub arenas: Vec<Arena>,
    /// IR index one past each composite phase, in order. Empty for a plain
    /// kernel (one span).
    pub phase_ends: Vec<usize>,
}

impl AnalysisInput {
    /// An input with no layout information: VL and SSA checks only.
    #[must_use]
    pub fn new(mvl: Option<usize>) -> Self {
        Self {
            mvl,
            arenas: Vec::new(),
            phase_ends: Vec::new(),
        }
    }

    /// Adds the planned arenas.
    #[must_use]
    pub fn with_arenas(mut self, arenas: Vec<Arena>) -> Self {
        self.arenas = arenas;
        self
    }

    /// Adds the composite phase boundaries.
    #[must_use]
    pub fn with_phase_ends(mut self, ends: Vec<usize>) -> Self {
        self.phase_ends = ends;
        self
    }
}

/// Runs every analysis over `kernel` and returns the combined report,
/// sorted by IR index.
#[must_use]
pub fn analyze(kernel: &IrKernel, input: &AnalysisInput) -> AnalysisReport {
    let mut diags = Vec::new();
    run(kernel, &mut SsaPass::new(kernel), &mut diags);
    let vl_at = run_traced(kernel, &mut VlPass::new(kernel, input.mvl), &mut diags);
    if !input.arenas.is_empty() {
        check_memory(
            kernel,
            &vl_at,
            input.mvl,
            &input.arenas,
            &input.phase_ends,
            &mut diags,
        );
    }
    diags.sort_by_key(|d| (d.ir_index, d.code));
    AnalysisReport {
        kernel: kernel.name.clone(),
        diagnostics: diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    #[test]
    fn clean_kernel_produces_an_empty_report() {
        let mut b = KernelBuilder::new("ok");
        b.set_vl(8);
        let x = b.vload(0x1000);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, 0x2000);
        let report = analyze(
            &b.finish(),
            &AnalysisInput::new(Some(16)).with_arenas(vec![
                Arena::new("x", 0x1000, 0x80),
                Arena::new("y", 0x2000, 0x80),
            ]),
        );
        assert_eq!(report.kernel, "ok");
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn findings_arrive_sorted_by_ir_index() {
        let mut b = KernelBuilder::new("bad");
        let c = b.vsplat(1.0); // AVA001 at ir[0], AVA104 (never used) too
        b.set_vl(8);
        let x = b.vload(0x9000); // AVA201 at ir[2]
        b.vstore(x, 0x9100); // AVA201 at ir[3]
        let _ = c;
        let report = analyze(
            &b.finish(),
            &AnalysisInput::new(Some(16)).with_arenas(vec![Arena::new("a", 0x1000, 0x80)]),
        );
        let idxs: Vec<usize> = report.diagnostics.iter().map(|d| d.ir_index).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(idxs, sorted);
        assert!(report.has(Code::SplatBeforeSetVl));
        assert!(report.has(Code::UnusedDef));
        assert!(report.has(Code::OutOfArena));
    }

    #[test]
    fn empty_arena_list_skips_memory_checks() {
        let mut b = KernelBuilder::new("k");
        b.set_vl(8);
        let x = b.vload(0xdead_0000);
        b.vstore(x, 0xbeef_0000);
        let report = analyze(&b.finish(), &AnalysisInput::new(Some(16)));
        assert!(report.diagnostics.is_empty(), "{report}");
    }
}
