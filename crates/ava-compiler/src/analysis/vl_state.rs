//! The vector-length lattice and its lints.
//!
//! Straight-line kernels change VL only through `SetVl`, so a forward pass
//! can know the exact vector length in force at every instruction. The
//! lattice has three points: [`VlState::Unknown`] before any `SetVl` (a
//! previously-run kernel may have left *any* VL behind), [`VlState::Max`]
//! after a `vsetvlmax`-style request, and [`VlState::Exact`] otherwise.
//!
//! Two pattern lints live here:
//!
//! * **AVA001** — a splat executed while VL is [`VlState::Unknown`]. The
//!   original PR 3 bug: loop-invariant constants splatted before the
//!   `vsetvl` preamble only fill however many lanes the previous kernel
//!   left enabled, corrupting every strip that runs wider.
//! * **AVA004** — a VL narrowing not followed by a reset before a wider
//!   consumer that *materialises* the stale lanes. The pass tracks, per
//!   register, how many lanes were validly computed (elementwise ops
//!   propagate the minimum of their VL and their operands' valid widths)
//!   and flags stores and reductions that consume lanes beyond that width.
//!   Consuming a narrow value elementwise at a wider VL is deliberately
//!   *not* flagged on its own — the cross-strip accumulator idiom does
//!   exactly that, and its stale lanes are harmless until (unless) a wide
//!   store or reduction folds them into an observable result.

use crate::ir::{IrInstr, IrKernel};

use super::dataflow::ForwardPass;
use super::diagnostics::{Code, Diagnostic};
use ava_isa::Opcode;

/// Abstract vector length at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VlState {
    /// No `SetVl` has executed yet; the inherited VL is arbitrary.
    Unknown,
    /// VL equals the hardware maximum (the request was `>= MVL`).
    Max,
    /// VL is exactly this many elements.
    Exact(usize),
}

impl VlState {
    /// The concrete element count, if one is known. `mvl` supplies the
    /// hardware maximum for resolving [`VlState::Max`]; pass `None` when
    /// the target MVL is not pinned down.
    #[must_use]
    pub fn width(self, mvl: Option<usize>) -> Option<usize> {
        match self {
            VlState::Unknown => None,
            VlState::Max => mvl,
            VlState::Exact(n) => Some(n),
        }
    }
}

/// Forward pass tracking [`VlState`] and emitting AVA001/AVA004.
#[derive(Debug)]
pub struct VlPass {
    mvl: Option<usize>,
    /// Per-register count of validly-computed lanes (`usize::MAX` when
    /// unbounded/unknown — unknown widths stay silent rather than guess).
    valid: Vec<usize>,
}

impl VlPass {
    /// A pass for `kernel` on hardware with the given maximum VL (pass
    /// `None` to analyse portably across MVLs).
    #[must_use]
    pub fn new(kernel: &IrKernel, mvl: Option<usize>) -> Self {
        Self {
            mvl,
            valid: vec![usize::MAX; kernel.num_virt_regs as usize],
        }
    }
}

impl ForwardPass for VlPass {
    type State = VlState;

    fn boundary(&self) -> VlState {
        VlState::Unknown
    }

    fn transfer(
        &mut self,
        idx: usize,
        instr: &IrInstr,
        state: &mut VlState,
        diags: &mut Vec<Diagnostic>,
    ) {
        if let Some(req) = instr.setvl_request {
            *state = match self.mvl {
                Some(m) if req >= m => VlState::Max,
                _ => VlState::Exact(req),
            };
            return;
        }
        if instr.opcode == Opcode::VMvSplat && *state == VlState::Unknown {
            diags.push(Diagnostic::new(
                Code::SplatBeforeSetVl,
                idx,
                "splat executes before any vsetvl, so it only fills the lanes a \
                 previously-run kernel left enabled"
                    .to_string(),
            ));
        }

        // Narrowest validly-computed source width (registers only; scalar
        // operands cover every lane by construction).
        let mut src_valid = usize::MAX;
        let mut narrowest = None;
        let index_reg = instr.mem.and_then(|m| m.index);
        for r in instr.source_regs().chain(index_reg) {
            let v = self.valid.get(r.id()).copied().unwrap_or(usize::MAX);
            if v < src_valid {
                src_valid = v;
                narrowest = Some(r);
            }
        }

        let w = state.width(self.mvl).unwrap_or(usize::MAX);
        // Stores and reductions materialise every lane below VL: stale
        // lanes escape into memory or fold into the reduced result.
        let consumes_all_lanes = instr.opcode.is_store()
            || matches!(
                instr.opcode,
                Opcode::VFRedSum | Opcode::VFRedMax | Opcode::VFRedMin
            );
        if consumes_all_lanes && w != usize::MAX && w > src_valid {
            let r = narrowest.expect("a finite valid width implies a register source");
            diags.push(Diagnostic::new(
                Code::NarrowDefWideUse,
                idx,
                format!(
                    "{r} has only {src_valid} validly-computed lane(s) but this \
                     {} runs at VL {w}; the VL was narrowed without a reset \
                     before a wider consumer, so stale lanes escape",
                    if instr.opcode.is_store() {
                        "store"
                    } else {
                        "reduction"
                    },
                ),
            ));
        }

        if let Some(d) = instr.dst {
            if d.id() >= self.valid.len() {
                self.valid.resize(d.id() + 1, usize::MAX);
            }
            let fills_from_memory = instr.opcode.is_load() && index_reg.is_none();
            self.valid[d.id()] = if consumes_all_lanes || fills_from_memory {
                // Reductions report their contamination above (one root
                // cause, one finding) and then count as fully defined;
                // unit/strided loads fill every lane below VL from memory.
                w
            } else {
                // Elementwise ops (and gathers, through their index) are
                // only valid where all their register operands were.
                w.min(src_valid)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dataflow::run_traced;
    use crate::KernelBuilder;

    fn lint(k: &IrKernel, mvl: Option<usize>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        run_traced(k, &mut VlPass::new(k, mvl), &mut diags);
        diags
    }

    #[test]
    fn width_resolves_against_mvl() {
        assert_eq!(VlState::Unknown.width(Some(16)), None);
        assert_eq!(VlState::Max.width(Some(16)), Some(16));
        assert_eq!(VlState::Max.width(None), None);
        assert_eq!(VlState::Exact(4).width(None), Some(4));
    }

    #[test]
    fn splat_after_setvl_is_clean() {
        let mut b = KernelBuilder::new("ok");
        b.set_vl(16);
        let c = b.vsplat(2.0);
        let x = b.vload(0x1000);
        let r = b.vfmul(x, c);
        b.vstore(r, 0x2000);
        assert!(lint(&b.finish(), Some(16)).is_empty());
    }

    #[test]
    fn splat_before_setvl_trips_ava001() {
        let mut b = KernelBuilder::new("bad");
        let c = b.vsplat(2.0);
        b.set_vl(16);
        let x = b.vload(0x1000);
        let r = b.vfmul(x, c);
        b.vstore(r, 0x2000);
        let diags = lint(&b.finish(), Some(16));
        assert!(diags.iter().any(|d| d.code == Code::SplatBeforeSetVl));
    }

    #[test]
    fn narrow_def_stored_wider_trips_ava004() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(4);
        let x = b.vload(0x1000);
        b.set_vl(16);
        let r = b.vfadd(x, 1.0); // lanes 4..16 of r are stale
        b.vstore(r, 0x2000); // ...and this store materialises them
        let diags = lint(&b.finish(), Some(16));
        let d = diags
            .iter()
            .find(|d| d.code == Code::NarrowDefWideUse)
            .unwrap();
        assert_eq!(d.ir_index, 4);
    }

    #[test]
    fn narrow_def_reduced_wider_trips_ava004() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(4);
        let x = b.vload(0x1000);
        b.set_vl(16);
        let s = b.vfredsum(x); // folds 12 stale lanes into the sum
        b.set_vl(1);
        b.vstore(s, 0x2000);
        let diags = lint(&b.finish(), Some(16));
        let d = diags
            .iter()
            .find(|d| d.code == Code::NarrowDefWideUse)
            .unwrap();
        assert_eq!(d.ir_index, 3);
    }

    #[test]
    fn max_request_covers_later_narrow_strips() {
        // The shipped-kernel idiom: vsetvlmax preamble, splats, then
        // narrower tail strips consuming the wide constants.
        let mut b = KernelBuilder::new("ok");
        b.set_vl(16);
        let c = b.vsplat(0.5);
        b.set_vl(5);
        let x = b.vload(0x1000);
        let r = b.vfmul(x, c);
        b.vstore(r, 0x2000);
        assert!(lint(&b.finish(), Some(16)).is_empty());
    }

    #[test]
    fn accumulator_narrowed_then_rewidened_is_clean() {
        // The cross-strip accumulator idiom (lavamd, particlefilter,
        // swaptions): the accumulator picks up a narrow tail-strip width,
        // is re-consumed elementwise at a wider strip, and is finally
        // stored at VL 1 — its stale upper lanes never escape.
        let mut b = KernelBuilder::new("ok");
        b.set_vl(16);
        let mut acc = b.vsplat(0.0);
        for (off, vl) in [(0u64, 16), (128, 4), (160, 16)] {
            b.set_vl(vl);
            let x = b.vload(0x1000 + off);
            let s = b.vfredsum(x);
            acc = b.vfadd(acc, s);
        }
        b.set_vl(1);
        b.vstore(acc, 0x3000);
        assert!(lint(&b.finish(), Some(16)).is_empty());
    }

    #[test]
    fn contaminated_accumulator_stored_wide_is_flagged() {
        // Same idiom, but the final store runs at full VL: now the stale
        // lanes do escape, and the store is the anchor.
        let mut b = KernelBuilder::new("bad");
        b.set_vl(16);
        let acc = b.vsplat(0.0);
        b.set_vl(4);
        let x = b.vload(0x1000);
        let acc2 = b.vfadd(acc, x);
        b.set_vl(16);
        b.vstore(acc2, 0x3000);
        let diags = lint(&b.finish(), Some(16));
        let d = diags
            .iter()
            .find(|d| d.code == Code::NarrowDefWideUse)
            .unwrap();
        assert_eq!(d.ir_index, 6);
    }

    #[test]
    fn unknown_mvl_keeps_requests_exact() {
        let mut b = KernelBuilder::new("k");
        b.set_vl(64);
        let c = b.vsplat(1.0);
        b.set_vl(16);
        let x = b.vload(0x1000);
        let r = b.vfmul(x, c);
        b.vstore(r, 0x2000);
        // Without a pinned MVL the preamble stays Exact(64), which still
        // covers the Exact(16) consumer.
        assert!(lint(&b.finish(), None).is_empty());
    }
}
