//! Static address-interval analysis of vector memory traffic.
//!
//! Kernels carry concrete simulated addresses, and the VL pass knows the
//! exact vector length at every access, so each unit-stride or strided
//! load/store denotes a closed byte interval that can be checked against
//! the planned arenas *before any simulation runs*:
//!
//! * **AVA201** — the base address falls inside no arena at all.
//! * **AVA202** — the interval starts inside an arena but runs past it.
//! * **AVA002** — the access lands in a *placeholder* arena (a composite
//!   consumer input that a rebase rule should have redirected onto the
//!   producer's buffer — the PR 4 wrong-buffer-rebase bug class).
//! * **AVA003** — a *carried* arena is read after an overlapping store in
//!   the same phase span already destroyed the carried value.
//! * **AVA103** — a store whose bytes are completely overwritten by a later
//!   store with no intervening load (a dead store).
//!
//! Gathers/scatters and accesses under an unknown VL degrade gracefully to
//! base-containment checks plus conservative whole-arena bookkeeping.

use std::collections::BTreeMap;

use crate::ir::IrKernel;

use super::diagnostics::{Code, Diagnostic, Severity};
use super::vl_state::VlState;

/// One planned memory region the analyzer checks accesses against.
///
/// This is a layout-neutral mirror of a planned buffer: the `ava-workloads`
/// crate converts its `PlannedLayout` into arenas so the analysis can live
/// in the compiler without a dependency cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arena {
    /// Buffer name (composite arenas carry their `p{i}.` phase prefix).
    pub name: String,
    /// First byte of the region.
    pub start: u64,
    /// One past the last byte of the region.
    pub end: u64,
    /// True for a composite consumer input that is never materialised:
    /// every access to it should have been rebased away, so any remaining
    /// access is the wrong-buffer-rebase bug (AVA002).
    pub placeholder: bool,
    /// True for a buffer whose contents are carried across iterations of an
    /// iterated composite; reading it after an in-place overwrite within
    /// one iteration destroys the carried value (AVA003).
    pub carried: bool,
}

impl Arena {
    /// A plain arena covering `bytes` bytes from `start`.
    #[must_use]
    pub fn new(name: impl Into<String>, start: u64, bytes: u64) -> Self {
        Self {
            name: name.into(),
            start,
            end: start + bytes,
            placeholder: false,
            carried: false,
        }
    }

    /// Marks this arena as a never-materialised placeholder.
    #[must_use]
    pub fn as_placeholder(mut self) -> Self {
        self.placeholder = true;
        self
    }

    /// Marks this arena as carried across composite iterations.
    #[must_use]
    pub fn as_carried(mut self) -> Self {
        self.carried = true;
        self
    }

    /// True if `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// True when `[s1, e1)` and `[s2, e2)` share at least one byte.
fn overlaps(s1: u64, e1: u64, s2: u64, e2: u64) -> bool {
    s1 < e2 && s2 < e1
}

/// Checks every memory access of `kernel` against `arenas`.
///
/// `vl_at[i]` must be the [`VlState`] in force on entry to instruction `i`
/// (from a traced VL pass); `mvl` resolves [`VlState::Max`]. `phase_ends`
/// lists the IR index one past each composite phase (empty for a plain
/// kernel); the read-after-destroy bookkeeping resets at those boundaries,
/// because reading what the *previous* iteration wrote is exactly how
/// carried values flow.
pub fn check_memory(
    kernel: &IrKernel,
    vl_at: &[VlState],
    mvl: Option<usize>,
    arenas: &[Arena],
    phase_ends: &[usize],
    diags: &mut Vec<Diagnostic>,
) {
    // Per-arena stores of the current phase span: (start, end, ir_index).
    let mut written: Vec<Vec<(u64, u64, usize)>> = vec![Vec::new(); arenas.len()];
    // Per-arena exact unit-stride stores not yet observed by any load:
    // start -> (end, ir_index, phase span). Never reset — a store observed
    // only in a later phase is still observed.
    let mut pending: Vec<BTreeMap<u64, (u64, usize, usize)>> = vec![BTreeMap::new(); arenas.len()];
    let mut next_phase = 0usize;

    for (idx, instr) in kernel.instrs.iter().enumerate() {
        while next_phase < phase_ends.len() && phase_ends[next_phase] <= idx {
            for w in &mut written {
                w.clear();
            }
            next_phase += 1;
        }
        let Some(m) = &instr.mem else { continue };
        let is_store = instr.opcode.is_store();
        let access = if is_store { "store" } else { "load" };

        let Some(ai) = arenas.iter().position(|a| a.contains(m.base)) else {
            diags.push(Diagnostic::new(
                Code::OutOfArena,
                idx,
                format!("{access} base {:#x} falls inside no planned arena", m.base),
            ));
            continue;
        };
        let arena = &arenas[ai];

        if arena.placeholder {
            diags.push(Diagnostic::new(
                Code::UncoveredPlaceholder,
                idx,
                format!(
                    "{access} lands in placeholder arena \"{}\", which is never \
                     materialised — a rebase rule should have redirected it onto \
                     the producer's buffer",
                    arena.name
                ),
            ));
        }

        // The byte interval, when the access shape is statically known.
        let width = vl_at.get(idx).and_then(|s| s.width(mvl));
        let interval: Option<(u64, u64)> = match (m.index, width) {
            (Some(_), _) | (_, None) => None,
            (None, Some(0)) => Some((m.base, m.base)),
            (None, Some(n)) => {
                let span = (n as i128 - 1) * i128::from(m.stride);
                let lo = i128::from(m.base) + span.min(0);
                let hi = i128::from(m.base) + span.max(0) + 8;
                if lo < i128::from(arena.start) || hi > i128::from(arena.end) {
                    diags.push(Diagnostic::new(
                        Code::StraddlesArena,
                        idx,
                        format!(
                            "{access} spans [{lo:#x}, {hi:#x}) but arena \"{}\" only \
                             covers [{:#x}, {:#x})",
                            arena.name, arena.start, arena.end
                        ),
                    ));
                }
                let lo = u64::try_from(lo.max(0)).unwrap_or(0);
                let hi = u64::try_from(hi.max(0)).unwrap_or(u64::MAX);
                Some((lo, hi))
            }
        };
        // Conservative bookkeeping shape: the whole arena.
        let (lo, hi) = interval.unwrap_or((arena.start, arena.end));
        let exact_unit = interval.is_some() && m.index.is_none() && m.stride == 8;

        if is_store {
            // Dead-store accounting: a pending store fully covered by this
            // one, with no load in between, never mattered. When the
            // overwrite happens in a *later phase span*, the earlier store
            // is an intermediate result of an unrolled loop, superseded by
            // design — report it at info only.
            let keys: Vec<u64> = pending[ai]
                .iter()
                .filter(|(&s, &(e, ..))| overlaps(s, e, lo, hi))
                .map(|(&s, _)| s)
                .collect();
            for s in keys {
                let (e, old_idx, old_span) = pending[ai].remove(&s).unwrap();
                if exact_unit && s >= lo && e <= hi {
                    let mut d = Diagnostic::new(
                        Code::DeadStore,
                        old_idx,
                        format!(
                            "store to \"{}\" [{s:#x}, {e:#x}) is fully overwritten \
                             at ir[{idx}] with no intervening load",
                            arena.name
                        ),
                    );
                    if old_span != next_phase {
                        d = d.with_severity(Severity::Info);
                        d.message.push_str(" (superseded by a later phase)");
                    }
                    diags.push(d);
                }
            }
            if exact_unit {
                pending[ai].insert(lo, (hi, idx, next_phase));
            }
            written[ai].push((lo, hi, idx));
        } else {
            if arena.carried {
                if let Some(&(ws, we, widx)) = written[ai]
                    .iter()
                    .find(|&&(ws, we, _)| overlaps(ws, we, lo, hi))
                {
                    diags.push(Diagnostic::new(
                        Code::ReadAfterDestroy,
                        idx,
                        format!(
                            "carried arena \"{}\" is read at [{lo:#x}, {hi:#x}) after \
                             the store at ir[{widx}] ([{ws:#x}, {we:#x})) already \
                             destroyed the carried value in this iteration",
                            arena.name
                        ),
                    ));
                }
            }
            // The load observes any pending store it touches.
            let keys: Vec<u64> = pending[ai]
                .iter()
                .filter(|(&s, &(e, ..))| overlaps(s, e, lo, hi))
                .map(|(&s, _)| s)
                .collect();
            for s in keys {
                pending[ai].remove(&s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dataflow::run_traced;
    use crate::analysis::vl_state::VlPass;
    use crate::KernelBuilder;

    fn check(k: &IrKernel, arenas: &[Arena], phase_ends: &[usize]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let vl_at = run_traced(k, &mut VlPass::new(k, Some(16)), &mut diags);
        check_memory(k, &vl_at, Some(16), arenas, phase_ends, &mut diags);
        diags
    }

    #[test]
    fn in_bounds_unit_stride_is_clean() {
        let mut b = KernelBuilder::new("ok");
        b.set_vl(16);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 128), Arena::new("y", 0x2000, 128)],
            &[],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unplanned_base_trips_ava201() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8);
        let x = b.vload(0x9000);
        b.vstore(x, 0x1000);
        let diags = check(&b.finish(), &[Arena::new("y", 0x1000, 64)], &[]);
        assert!(diags.iter().any(|d| d.code == Code::OutOfArena));
    }

    #[test]
    fn overrunning_access_trips_ava202() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(16); // 128 bytes from 0x1040 runs past 0x1080
        let x = b.vload(0x1040);
        b.vstore(x, 0x2000);
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 0x80), Arena::new("y", 0x2000, 0x80)],
            &[],
        );
        let d = diags
            .iter()
            .find(|d| d.code == Code::StraddlesArena)
            .unwrap();
        assert_eq!(d.ir_index, 1);
    }

    #[test]
    fn strided_interval_is_checked() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8); // stride 32: touches [0x1000, 0x10e8) — past 0x1080
        let x = b.vload_strided(0x1000, 32);
        b.vstore(x, 0x2000);
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 0x80), Arena::new("y", 0x2000, 0x80)],
            &[],
        );
        assert!(diags.iter().any(|d| d.code == Code::StraddlesArena));
    }

    #[test]
    fn placeholder_access_trips_ava002() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8);
        let x = b.vload(0x5000);
        b.vstore(x, 0x2000);
        let diags = check(
            &b.finish(),
            &[
                Arena::new("p1.x", 0x5000, 0x80).as_placeholder(),
                Arena::new("y", 0x2000, 0x80),
            ],
            &[],
        );
        assert!(diags.iter().any(|d| d.code == Code::UncoveredPlaceholder));
    }

    #[test]
    fn carried_read_after_overwrite_trips_ava003() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8);
        let x = b.vload(0x1000);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, 0x1000); // destroys the carried value in place
        let z = b.vload(0x1000); // then reads it back
        b.vstore(z, 0x2000);
        let diags = check(
            &b.finish(),
            &[
                Arena::new("x", 0x1000, 0x80).as_carried(),
                Arena::new("y", 0x2000, 0x80),
            ],
            &[],
        );
        let d = diags
            .iter()
            .find(|d| d.code == Code::ReadAfterDestroy)
            .unwrap();
        assert_eq!(d.ir_index, 4);
    }

    #[test]
    fn carried_reads_across_phase_spans_are_the_intended_flow() {
        // Iteration k+1 reading what iteration k wrote is how carries work;
        // the bookkeeping resets at the phase boundary.
        let mut b = KernelBuilder::new("ok");
        b.set_vl(8);
        let x = b.vload(0x1000);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, 0x1000);
        let boundary = b.finish();
        let mut b = KernelBuilder::new("iter1");
        b.set_vl(8);
        let x = b.vload(0x1000);
        let y = b.vfadd(x, 1.0);
        b.vstore(y, 0x1000);
        let mut k = boundary.clone();
        k.concat(&b.finish());
        let diags = check(
            &k,
            &[Arena::new("x", 0x1000, 0x80).as_carried()],
            &[boundary.len(), k.len()],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn load_then_store_in_place_is_clean() {
        // The axpy idiom: each strip loads the carried buffer before
        // overwriting the same interval.
        let mut b = KernelBuilder::new("ok");
        for off in [0u64, 64] {
            b.set_vl(8);
            let y = b.vload(0x1000 + off);
            let r = b.vfadd(y, 1.0);
            b.vstore(r, 0x1000 + off);
        }
        let diags = check(
            &b.finish(),
            &[Arena::new("y", 0x1000, 0x80).as_carried()],
            &[],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn overwritten_unread_store_trips_ava103() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        b.vstore(x, 0x2000); // the first store was never read
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 0x80), Arena::new("y", 0x2000, 0x80)],
            &[],
        );
        let d = diags.iter().find(|d| d.code == Code::DeadStore).unwrap();
        assert_eq!(d.ir_index, 2, "anchored at the dead store itself");
    }

    #[test]
    fn cross_phase_overwrite_downgrades_to_info() {
        // An uncarried output of an unrolled loop is overwritten by the
        // next iteration by design: still reported, but only at info.
        let mut b = KernelBuilder::new("it0");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let it0 = b.finish();
        let mut b = KernelBuilder::new("it1");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let mut k = it0.clone();
        k.concat(&b.finish());
        let diags = check(
            &k,
            &[
                Arena::new("x", 0x1000, 0x80),
                Arena::new("out", 0x2000, 0x80),
            ],
            &[it0.len(), k.len()],
        );
        let d = diags.iter().find(|d| d.code == Code::DeadStore).unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("later phase"), "{}", d.message);
    }

    #[test]
    fn store_read_back_then_overwritten_is_clean() {
        let mut b = KernelBuilder::new("ok");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let y = b.vload(0x2000); // observes the first store
        let z = b.vfadd(y, 1.0);
        b.vstore(z, 0x2000);
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 0x80), Arena::new("y", 0x2000, 0x80)],
            &[],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn final_stores_are_live_out() {
        let mut b = KernelBuilder::new("ok");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let diags = check(
            &b.finish(),
            &[Arena::new("x", 0x1000, 0x80), Arena::new("y", 0x2000, 0x80)],
            &[],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn gather_base_containment_is_still_checked() {
        let mut b = KernelBuilder::new("bad");
        b.set_vl(8);
        let idx = b.vid();
        let g = b.vload_indexed(0x9000, idx); // base outside every arena
        b.vstore(g, 0x2000);
        let diags = check(&b.finish(), &[Arena::new("y", 0x2000, 0x80)], &[]);
        assert!(diags.iter().any(|d| d.code == Code::OutOfArena));
    }

    #[test]
    fn no_arenas_means_no_memory_findings() {
        let mut b = KernelBuilder::new("k");
        b.set_vl(8);
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let k = b.finish();
        let mut diags = Vec::new();
        let vl_at = run_traced(&k, &mut VlPass::new(&k, Some(16)), &mut diags);
        // Callers skip the memory pass when they have no layout; calling it
        // with an empty arena list would flag everything as out-of-arena.
        check_memory(&k, &vl_at, Some(16), &[], &[], &mut diags);
        assert!(diags.iter().all(|d| d.code == Code::OutOfArena));
    }
}
