//! Structured findings emitted by the static analyses.
//!
//! Every lint and well-formedness check reports a [`Diagnostic`] carrying a
//! stable [`Code`], a [`Severity`], and the IR index it anchors to. Callers
//! decide how strict to be: the composite constructors run in *deny* mode
//! (any finding at [`Severity::Warn`] or above is fatal) while exploratory
//! tooling can run in *warn* mode (only [`Severity::Error`] is fatal).

use std::fmt;

/// Stable identifier of one diagnostic class.
///
/// Codes are grouped by family: `AVA0xx` are pattern lints for known bug
/// classes, `AVA1xx` are SSA/dataflow well-formedness checks, and `AVA2xx`
/// are static memory-bounds findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A splat (or other whole-register constant) executed while the vector
    /// length is still unknown — the pre-`vsetvl` corruption bug class.
    SplatBeforeSetVl,
    /// A memory access landed in a placeholder arena that no rebase rule
    /// covered, so at run time it would read a buffer that is never
    /// materialised.
    UncoveredPlaceholder,
    /// A carried buffer was read after an overlapping in-place store within
    /// the same phase span destroyed the carried value.
    ReadAfterDestroy,
    /// A register defined under a narrow vector length is consumed under a
    /// wider one, so its upper lanes are stale.
    NarrowDefWideUse,
    /// A virtual register is read before any instruction defines it.
    UseBeforeDef,
    /// A virtual register is defined more than once, breaking SSA form.
    Redefinition,
    /// A store whose bytes are completely overwritten by a later store with
    /// no intervening load.
    DeadStore,
    /// A register definition whose value is never consumed.
    UnusedDef,
    /// A memory access whose base address falls inside no planned arena.
    OutOfArena,
    /// A memory access that starts inside an arena but runs past its end.
    StraddlesArena,
}

impl Code {
    /// The stable printable code, e.g. `"AVA001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SplatBeforeSetVl => "AVA001",
            Code::UncoveredPlaceholder => "AVA002",
            Code::ReadAfterDestroy => "AVA003",
            Code::NarrowDefWideUse => "AVA004",
            Code::UseBeforeDef => "AVA101",
            Code::Redefinition => "AVA102",
            Code::DeadStore => "AVA103",
            Code::UnusedDef => "AVA104",
            Code::OutOfArena => "AVA201",
            Code::StraddlesArena => "AVA202",
        }
    }

    /// The severity this code is reported at.
    ///
    /// Everything that corrupts results is an error; the stale-lane and
    /// unused-def findings are warnings because a kernel can be wasteful
    /// without being wrong. Dead stores are informational only: unrolled
    /// solver loops supersede every uncarried intermediate result by
    /// design, so a dead store is expected structure there, not a defect.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Code::NarrowDefWideUse | Code::UnusedDef => Severity::Warn,
            Code::DeadStore => Severity::Info,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a build.
    Info,
    /// Suspicious but possibly intentional; fatal in deny mode.
    Warn,
    /// A result-corrupting defect; fatal in every mode.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics and reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic class.
    pub code: Code,
    /// How serious the finding is (usually [`Code::default_severity`]).
    pub severity: Severity,
    /// Index of the IR instruction the finding anchors to.
    pub ir_index: usize,
    /// Human-readable explanation with concrete registers/addresses.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    #[must_use]
    pub fn new(code: Code, ir_index: usize, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.default_severity(),
            ir_index,
            message: message.into(),
        }
    }

    /// Overrides the severity (used where context softens a finding, e.g.
    /// a dead store superseded by a *later phase* of an unrolled loop).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at ir[{}]: {}",
            self.severity, self.code, self.ir_index, self.message
        )
    }
}

/// All findings for one analyzed kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Name of the kernel that was analyzed.
    pub kernel: String,
    /// Findings sorted by IR index.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True if no finding reaches `min` severity.
    #[must_use]
    pub fn is_clean(&self, min: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < min)
    }

    /// The most severe finding, if any.
    #[must_use]
    pub fn worst(&self) -> Option<&Diagnostic> {
        self.diagnostics.iter().max_by_key(|d| d.severity)
    }

    /// Findings at `min` severity or above, in IR order.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= min)
    }

    /// True if any finding carries `code`.
    #[must_use]
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "{}: clean", self.kernel);
        }
        writeln!(f, "{}: {} finding(s)", self.kernel, self.diagnostics.len())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_their_stable_names() {
        assert_eq!(Code::SplatBeforeSetVl.as_str(), "AVA001");
        assert_eq!(Code::UncoveredPlaceholder.as_str(), "AVA002");
        assert_eq!(Code::ReadAfterDestroy.as_str(), "AVA003");
        assert_eq!(Code::NarrowDefWideUse.as_str(), "AVA004");
        assert_eq!(Code::UseBeforeDef.as_str(), "AVA101");
        assert_eq!(Code::Redefinition.as_str(), "AVA102");
        assert_eq!(Code::DeadStore.as_str(), "AVA103");
        assert_eq!(Code::UnusedDef.as_str(), "AVA104");
        assert_eq!(Code::OutOfArena.as_str(), "AVA201");
        assert_eq!(Code::StraddlesArena.as_str(), "AVA202");
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn display_includes_code_and_index() {
        let d = Diagnostic::new(Code::SplatBeforeSetVl, 3, "splat before any vsetvl");
        let s = d.to_string();
        assert!(s.contains("AVA001"), "{s}");
        assert!(s.contains("ir[3]"), "{s}");
        assert!(s.starts_with("error["), "{s}");
    }

    #[test]
    fn report_cleanliness_respects_the_threshold() {
        let mut r = AnalysisReport {
            kernel: "k".into(),
            diagnostics: vec![Diagnostic::new(Code::UnusedDef, 0, "unused")],
        };
        assert!(r.is_clean(Severity::Error));
        assert!(!r.is_clean(Severity::Warn));
        assert_eq!(r.worst().unwrap().code, Code::UnusedDef);
        r.diagnostics.clear();
        assert!(r.is_clean(Severity::Info));
        assert!(r.worst().is_none());
        assert!(r.to_string().contains("clean"));
    }
}
