//! Belady (furthest-next-use) register allocation with spill-code insertion.
//!
//! The allocator maps the kernel's virtual registers onto `k` architectural
//! register *slots*. Whenever more values are live than slots exist, the
//! value whose next use is furthest away is spilled to a stack slot; a
//! reload is inserted before the next instruction that reads it. Because
//! the compiler does not know the application vector length (paper §II.A),
//! spill stores and reloads are executed with the full maximum vector
//! length — that inefficiency is exactly what the paper measures for the
//! RG-LMUL configurations.
//!
//! Values are SSA (defined once), so a value that has already been spilled
//! is clean: evicting it again needs no second store.

use std::collections::{HashMap, HashSet};

use ava_isa::InstrKind;

use crate::ir::{IrKernel, VirtReg};
use crate::liveness::Liveness;

/// One element of the allocated instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Allocation {
    /// An original kernel instruction, with its operands assigned to slots.
    Op {
        /// Index of the instruction in the original [`IrKernel`].
        ir_index: usize,
        /// Slot assigned to the destination, if the instruction defines one.
        dst_slot: Option<usize>,
        /// Slot assigned to each *register* source, in source order
        /// (scalar operands are not listed).
        src_slots: Vec<usize>,
    },
    /// Compiler-inserted spill store of the value currently held in `slot`.
    SpillStore {
        /// Architectural slot being spilled.
        slot: usize,
        /// Stack address of the spill slot.
        addr: u64,
    },
    /// Compiler-inserted reload into `slot`.
    SpillLoad {
        /// Architectural slot receiving the reload.
        slot: usize,
        /// Stack address of the spill slot.
        addr: u64,
    },
}

/// The result of register allocation.
#[derive(Debug, Clone, Default)]
pub struct AllocatedKernel {
    /// Allocated instruction stream (original ops interleaved with spills).
    pub allocations: Vec<Allocation>,
    /// Number of spill stores inserted.
    pub spill_stores: usize,
    /// Number of spill reloads inserted.
    pub spill_loads: usize,
    /// Highest slot index ever used plus one (how many architectural
    /// registers the kernel actually needed).
    pub slots_used: usize,
    /// Bytes of stack reserved for spill slots.
    pub spill_area_bytes: u64,
}

/// Belady register allocator.
///
/// ```
/// use ava_compiler::{KernelBuilder, RegAllocator};
/// let mut b = KernelBuilder::new("t");
/// let x = b.vload(0);
/// let y = b.vload(64);
/// let z = b.vfadd(x, y);
/// b.vstore(z, 128);
/// let alloc = RegAllocator::new(4, 0x1_0000, 1024).allocate(&b.finish());
/// assert_eq!(alloc.spill_stores, 0);
/// assert!(alloc.slots_used <= 3);
/// ```
#[derive(Debug, Clone)]
pub struct RegAllocator {
    slots: usize,
    spill_base: u64,
    spill_slot_bytes: u64,
}

impl RegAllocator {
    /// Creates an allocator with `slots` architectural registers available,
    /// spilling to stack addresses starting at `spill_base` in chunks of
    /// `spill_slot_bytes` (one maximum-length vector register each).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 4`: three source operands plus a destination must
    /// fit simultaneously (the RISC-V RG configuration with LMUL=8 has
    /// exactly 4 architectural registers, the minimum workable budget).
    #[must_use]
    pub fn new(slots: usize, spill_base: u64, spill_slot_bytes: u64) -> Self {
        assert!(
            slots >= 4,
            "at least 4 architectural registers are required, got {slots}"
        );
        assert!(
            spill_slot_bytes >= 8,
            "spill slots must hold at least one element"
        );
        Self {
            slots,
            spill_base,
            spill_slot_bytes,
        }
    }

    /// Runs allocation over a kernel.
    #[must_use]
    pub fn allocate(&self, kernel: &IrKernel) -> AllocatedKernel {
        let liveness = Liveness::analyse(kernel);
        let mut out = AllocatedKernel::default();

        // Resident values: virtual register -> slot.
        let mut slot_of: HashMap<VirtReg, usize> = HashMap::new();
        // Free slot pool (ordered so allocation is deterministic).
        let mut free: Vec<usize> = (0..self.slots).rev().collect();
        // Values with a valid copy in their spill slot.
        let mut in_memory: HashSet<VirtReg> = HashSet::new();
        // Assigned spill-slot addresses.
        let mut spill_addr: HashMap<VirtReg, u64> = HashMap::new();
        let mut next_spill_slot: u64 = 0;
        let mut max_slot_used: usize = 0;

        for (idx, instr) in kernel.instrs.iter().enumerate() {
            if instr.kind() == InstrKind::Config {
                out.allocations.push(Allocation::Op {
                    ir_index: idx,
                    dst_slot: None,
                    src_slots: Vec::new(),
                });
                continue;
            }

            // Registers that must not be evicted while processing this
            // instruction: its own sources (destination is added later).
            let sources: Vec<VirtReg> = instr.source_regs().collect();
            let mut protected: HashSet<VirtReg> = sources.iter().copied().collect();

            // 1. Make sure every source value is resident, reloading spilled
            //    values in source order.
            for &src in &sources {
                if slot_of.contains_key(&src) {
                    continue;
                }
                let addr = *spill_addr
                    .get(&src)
                    .unwrap_or_else(|| panic!("use of {src} before definition or spill"));
                let slot = self.take_slot(
                    idx,
                    &liveness,
                    &mut slot_of,
                    &mut free,
                    &mut in_memory,
                    &mut spill_addr,
                    &mut next_spill_slot,
                    &protected,
                    &mut out,
                );
                out.allocations.push(Allocation::SpillLoad { slot, addr });
                out.spill_loads += 1;
                slot_of.insert(src, slot);
                max_slot_used = max_slot_used.max(slot + 1);
            }

            // 2. Allocate the destination slot (if any).
            let dst_slot = if let Some(dst) = instr.dst {
                let slot = self.take_slot(
                    idx,
                    &liveness,
                    &mut slot_of,
                    &mut free,
                    &mut in_memory,
                    &mut spill_addr,
                    &mut next_spill_slot,
                    &protected,
                    &mut out,
                );
                protected.insert(dst);
                slot_of.insert(dst, slot);
                max_slot_used = max_slot_used.max(slot + 1);
                Some(slot)
            } else {
                None
            };

            // 3. Emit the instruction with slot-mapped operands.
            let src_slots: Vec<usize> = sources.iter().map(|r| slot_of[r]).collect();
            for &s in &src_slots {
                max_slot_used = max_slot_used.max(s + 1);
            }
            out.allocations.push(Allocation::Op {
                ir_index: idx,
                dst_slot,
                src_slots,
            });

            // 4. Release values whose last use was this instruction, and
            //    dead definitions.
            for &src in &sources {
                if let Some(iv) = liveness.interval(src) {
                    if iv.last_use <= idx {
                        if let Some(slot) = slot_of.remove(&src) {
                            free.push(slot);
                        }
                    }
                }
            }
            if let Some(dst) = instr.dst {
                if liveness.interval(dst).is_some_and(|iv| iv.is_dead()) {
                    if let Some(slot) = slot_of.remove(&dst) {
                        free.push(slot);
                    }
                }
            }
        }

        out.slots_used = max_slot_used;
        out.spill_area_bytes = next_spill_slot * self.spill_slot_bytes;
        out
    }

    /// Obtains a free slot, evicting the resident value with the furthest
    /// next use if necessary (emitting a spill store if that value has no
    /// valid memory copy yet).
    #[allow(clippy::too_many_arguments)]
    fn take_slot(
        &self,
        idx: usize,
        liveness: &Liveness,
        slot_of: &mut HashMap<VirtReg, usize>,
        free: &mut Vec<usize>,
        in_memory: &mut HashSet<VirtReg>,
        spill_addr: &mut HashMap<VirtReg, u64>,
        next_spill_slot: &mut u64,
        protected: &HashSet<VirtReg>,
        out: &mut AllocatedKernel,
    ) -> usize {
        if let Some(slot) = free.pop() {
            return slot;
        }
        // Choose the evictable resident value with the furthest next use.
        let victim = slot_of
            .keys()
            .filter(|r| !protected.contains(r))
            .copied()
            .max_by_key(|r| (liveness.next_use(*r, idx), r.0))
            .expect("no evictable register: architectural budget too small for one instruction");
        let slot = slot_of.remove(&victim).expect("victim is resident");

        // Only store the victim if it will be read again and has no valid
        // memory copy.
        let victim_next_use = liveness.next_use(victim, idx);
        if victim_next_use != usize::MAX && !in_memory.contains(&victim) {
            let addr = *spill_addr.entry(victim).or_insert_with(|| {
                let a = self.spill_base + *next_spill_slot * self.spill_slot_bytes;
                *next_spill_slot += 1;
                a
            });
            out.allocations.push(Allocation::SpillStore { slot, addr });
            out.spill_stores += 1;
            in_memory.insert(victim);
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    /// A kernel that keeps `width` values live simultaneously.
    fn wide_kernel(width: usize) -> IrKernel {
        let mut b = KernelBuilder::new("wide");
        let vals: Vec<_> = (0..width).map(|i| b.vload(64 * i as u64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.vfadd(acc, v);
        }
        b.vstore(acc, 0x10_0000);
        b.finish()
    }

    #[test]
    fn no_spills_when_pressure_fits() {
        let k = wide_kernel(8);
        let a = RegAllocator::new(16, 0x20_0000, 1024).allocate(&k);
        assert_eq!(a.spill_stores, 0);
        assert_eq!(a.spill_loads, 0);
        assert!(a.slots_used <= 9);
    }

    #[test]
    fn spills_appear_when_pressure_exceeds_budget() {
        let k = wide_kernel(12);
        let a = RegAllocator::new(8, 0x20_0000, 1024).allocate(&k);
        assert!(a.spill_stores > 0);
        assert!(
            a.spill_loads >= a.spill_stores,
            "every stored value is reloaded"
        );
        assert!(a.slots_used <= 8);
    }

    #[test]
    fn smaller_budget_spills_more() {
        let k = wide_kernel(16);
        let spills = |slots: usize| {
            RegAllocator::new(slots, 0x20_0000, 1024)
                .allocate(&k)
                .spill_loads
        };
        assert!(spills(4) > spills(8));
        assert_eq!(spills(32), 0);
    }

    #[test]
    fn allocation_never_exceeds_slot_budget() {
        for width in [4, 8, 12, 20, 31] {
            let k = wide_kernel(width);
            for slots in [4, 8, 16, 32] {
                let a = RegAllocator::new(slots, 0x20_0000, 1024).allocate(&k);
                assert!(a.slots_used <= slots, "width {width} slots {slots}");
            }
        }
    }

    #[test]
    fn spill_addresses_are_distinct_per_value() {
        let k = wide_kernel(20);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        let mut addrs: Vec<u64> = a
            .allocations
            .iter()
            .filter_map(|al| match al {
                Allocation::SpillStore { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "two values shared a spill slot");
        assert!(a.spill_area_bytes >= before as u64 * 1024);
    }

    #[test]
    fn reloads_follow_stores_for_each_value() {
        let k = wide_kernel(20);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        // Every reload address must have been stored earlier in the stream.
        let mut stored: HashSet<u64> = HashSet::new();
        for al in &a.allocations {
            match al {
                Allocation::SpillStore { addr, .. } => {
                    stored.insert(*addr);
                }
                Allocation::SpillLoad { addr, .. } => {
                    assert!(stored.contains(addr), "reload of never-stored slot");
                }
                Allocation::Op { .. } => {}
            }
        }
    }

    #[test]
    fn ssa_values_are_stored_at_most_once() {
        let k = wide_kernel(24);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        let mut addrs: Vec<u64> = a
            .allocations
            .iter()
            .filter_map(|al| match al {
                Allocation::SpillStore { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        let total = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(total, addrs.len());
    }

    #[test]
    fn config_instructions_pass_through_unallocated() {
        let mut b = KernelBuilder::new("cfg");
        b.set_vl(16);
        let x = b.vload(0);
        b.vstore(x, 8);
        let a = RegAllocator::new(4, 0x1000, 128).allocate(&b.finish());
        assert!(matches!(
            a.allocations[0],
            Allocation::Op {
                ir_index: 0,
                dst_slot: None,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_budgets_are_rejected() {
        let _ = RegAllocator::new(2, 0, 64);
    }

    #[test]
    fn three_source_ops_fit_in_minimum_budget() {
        let mut b = KernelBuilder::new("fma");
        let x = b.vload(0);
        let y = b.vload(64);
        let z = b.vload(128);
        let r = b.vfmadd(x, y, z);
        b.vstore(r, 256);
        let a = RegAllocator::new(4, 0x1000, 128).allocate(&b.finish());
        assert_eq!(a.spill_stores, 0);
        assert_eq!(a.slots_used, 4);
    }
}
