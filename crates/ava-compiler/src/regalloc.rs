//! Belady (furthest-next-use) register allocation with spill-code insertion.
//!
//! The allocator maps the kernel's virtual registers onto `k` architectural
//! register *slots*. Whenever more values are live than slots exist, the
//! value whose next use is furthest away is spilled to a stack slot; a
//! reload is inserted before the next instruction that reads it. Because
//! the compiler does not know the application vector length (paper §II.A),
//! spill stores and reloads are executed with the full maximum vector
//! length — that inefficiency is exactly what the paper measures for the
//! RG-LMUL configurations.
//!
//! Values are SSA (defined once), so a value that has already been spilled
//! is clean: evicting it again needs no second store.
//!
//! The allocator runs once per compiled point of every sweep, so its state
//! is kept in dense vectors indexed by the (small, densely numbered)
//! virtual-register id — no hash maps on the per-instruction path — with
//! scratch buffers reused across instructions. Victim selection iterates
//! the architectural slots in order and maximises the `(next_use, reg id)`
//! pair; the keys are distinct, so the choice is identical to the previous
//! hash-map scan and independent of iteration order.

use ava_isa::InstrKind;

use crate::ir::{IrKernel, VirtReg};
use crate::liveness::Liveness;

/// One element of the allocated instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Allocation {
    /// An original kernel instruction, with its operands assigned to slots.
    Op {
        /// Index of the instruction in the original [`IrKernel`].
        ir_index: usize,
        /// Slot assigned to the destination, if the instruction defines one.
        dst_slot: Option<usize>,
        /// Slot assigned to each *register* source, in source order
        /// (scalar operands are not listed).
        src_slots: Vec<usize>,
    },
    /// Compiler-inserted spill store of the value currently held in `slot`.
    SpillStore {
        /// Architectural slot being spilled.
        slot: usize,
        /// Stack address of the spill slot.
        addr: u64,
    },
    /// Compiler-inserted reload into `slot`.
    SpillLoad {
        /// Architectural slot receiving the reload.
        slot: usize,
        /// Stack address of the spill slot.
        addr: u64,
    },
}

/// The result of register allocation.
#[derive(Debug, Clone, Default)]
pub struct AllocatedKernel {
    /// Allocated instruction stream (original ops interleaved with spills).
    pub allocations: Vec<Allocation>,
    /// Number of spill stores inserted.
    pub spill_stores: usize,
    /// Number of spill reloads inserted.
    pub spill_loads: usize,
    /// Highest slot index ever used plus one (how many architectural
    /// registers the kernel actually needed).
    pub slots_used: usize,
    /// Bytes of stack reserved for spill slots.
    pub spill_area_bytes: u64,
}

/// Belady register allocator.
///
/// ```
/// use ava_compiler::{KernelBuilder, RegAllocator};
/// let mut b = KernelBuilder::new("t");
/// let x = b.vload(0);
/// let y = b.vload(64);
/// let z = b.vfadd(x, y);
/// b.vstore(z, 128);
/// let alloc = RegAllocator::new(4, 0x1_0000, 1024).allocate(&b.finish());
/// assert_eq!(alloc.spill_stores, 0);
/// assert!(alloc.slots_used <= 3);
/// ```
#[derive(Debug, Clone)]
pub struct RegAllocator {
    slots: usize,
    spill_base: u64,
    spill_slot_bytes: u64,
}

impl RegAllocator {
    /// Creates an allocator with `slots` architectural registers available,
    /// spilling to stack addresses starting at `spill_base` in chunks of
    /// `spill_slot_bytes` (one maximum-length vector register each).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 4`: three source operands plus a destination must
    /// fit simultaneously (the RISC-V RG configuration with LMUL=8 has
    /// exactly 4 architectural registers, the minimum workable budget).
    #[must_use]
    pub fn new(slots: usize, spill_base: u64, spill_slot_bytes: u64) -> Self {
        assert!(
            slots >= 4,
            "at least 4 architectural registers are required, got {slots}"
        );
        assert!(
            spill_slot_bytes >= 8,
            "spill slots must hold at least one element"
        );
        Self {
            slots,
            spill_base,
            spill_slot_bytes,
        }
    }

    /// Runs allocation over a kernel.
    #[must_use]
    pub fn allocate(&self, kernel: &IrKernel) -> AllocatedKernel {
        let liveness = Liveness::analyse(kernel);

        // Virtual-register ids are allocated densely from 0 by the kernel
        // builder; one scan bounds the dense tables below.
        let nregs = kernel
            .instrs
            .iter()
            .flat_map(|i| i.dst.into_iter().chain(i.source_regs()))
            .map(|r| r.0 as usize + 1)
            .max()
            .unwrap_or(0);

        let mut st = AllocState {
            spill_base: self.spill_base,
            spill_slot_bytes: self.spill_slot_bytes,
            liveness: &liveness,
            slot_of: vec![None; nregs],
            slot_owner: vec![None; self.slots],
            free: (0..self.slots).rev().collect(),
            in_memory: vec![false; nregs],
            spill_addr: vec![None; nregs],
            protected: vec![false; nregs],
            next_spill_slot: 0,
            max_slot_used: 0,
            out: AllocatedKernel::default(),
        };
        // Scratch list of this instruction's register sources, reused
        // across instructions.
        let mut sources: Vec<VirtReg> = Vec::new();

        for (idx, instr) in kernel.instrs.iter().enumerate() {
            if instr.kind() == InstrKind::Config {
                st.out.allocations.push(Allocation::Op {
                    ir_index: idx,
                    dst_slot: None,
                    src_slots: Vec::new(),
                });
                continue;
            }

            // Registers that must not be evicted while processing this
            // instruction: its own sources (destination is added later).
            sources.clear();
            sources.extend(instr.source_regs());
            for &src in &sources {
                st.protected[src.0 as usize] = true;
            }

            // 1. Make sure every source value is resident, reloading spilled
            //    values in source order.
            for &src in &sources {
                if st.slot_of[src.0 as usize].is_some() {
                    continue;
                }
                let addr = st.spill_addr[src.0 as usize]
                    .unwrap_or_else(|| panic!("use of {src} before definition or spill"));
                let slot = st.take_slot(idx);
                st.out
                    .allocations
                    .push(Allocation::SpillLoad { slot, addr });
                st.out.spill_loads += 1;
                st.assign(src, slot);
            }

            // 2. Allocate the destination slot (if any).
            let dst_slot = instr.dst.map(|dst| {
                let slot = st.take_slot(idx);
                st.protected[dst.0 as usize] = true;
                st.assign(dst, slot);
                slot
            });

            // 3. Emit the instruction with slot-mapped operands.
            let src_slots: Vec<usize> = sources
                .iter()
                .map(|r| st.slot_of[r.0 as usize].expect("source is resident"))
                .collect();
            for &s in &src_slots {
                st.max_slot_used = st.max_slot_used.max(s + 1);
            }
            st.out.allocations.push(Allocation::Op {
                ir_index: idx,
                dst_slot,
                src_slots,
            });

            // 4. Release values whose last use was this instruction, and
            //    dead definitions; also un-protect this instruction's
            //    registers so the scratch bitmap is clean for the next one.
            for &src in &sources {
                st.protected[src.0 as usize] = false;
                if let Some(iv) = liveness.interval(src) {
                    if iv.last_use <= idx {
                        st.release(src);
                    }
                }
            }
            if let Some(dst) = instr.dst {
                st.protected[dst.0 as usize] = false;
                if liveness.interval(dst).is_some_and(|iv| iv.is_dead()) {
                    st.release(dst);
                }
            }
        }

        st.out.slots_used = st.max_slot_used;
        st.out.spill_area_bytes = st.next_spill_slot * self.spill_slot_bytes;
        st.out
    }
}

/// Mutable allocation state: dense tables indexed by virtual-register id
/// (`slot_of` / `in_memory` / `spill_addr` / `protected`) or by slot index
/// (`slot_owner`).
struct AllocState<'a> {
    spill_base: u64,
    spill_slot_bytes: u64,
    liveness: &'a Liveness,
    /// Resident values: virtual-register id -> slot.
    slot_of: Vec<Option<usize>>,
    /// Inverse map: slot -> resident virtual register (victim scan).
    slot_owner: Vec<Option<VirtReg>>,
    /// Free slot pool (ordered so allocation is deterministic).
    free: Vec<usize>,
    /// Values with a valid copy in their spill slot.
    in_memory: Vec<bool>,
    /// Assigned spill-slot addresses.
    spill_addr: Vec<Option<u64>>,
    /// Registers that must not be evicted right now (current sources/dst).
    protected: Vec<bool>,
    next_spill_slot: u64,
    max_slot_used: usize,
    out: AllocatedKernel,
}

impl AllocState<'_> {
    fn assign(&mut self, reg: VirtReg, slot: usize) {
        self.slot_of[reg.0 as usize] = Some(slot);
        self.slot_owner[slot] = Some(reg);
        self.max_slot_used = self.max_slot_used.max(slot + 1);
    }

    fn release(&mut self, reg: VirtReg) {
        if let Some(slot) = self.slot_of[reg.0 as usize].take() {
            self.slot_owner[slot] = None;
            self.free.push(slot);
        }
    }

    /// Obtains a free slot, evicting the resident value with the furthest
    /// next use if necessary (emitting a spill store if that value has no
    /// valid memory copy yet).
    fn take_slot(&mut self, idx: usize) -> usize {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        // Choose the evictable resident value with the furthest next use.
        // `(next_use, reg id)` keys are distinct, so the maximum is unique
        // and the slot-order scan picks the same victim the old hash-map
        // scan did.
        let victim = self
            .slot_owner
            .iter()
            .flatten()
            .filter(|r| !self.protected[r.0 as usize])
            .copied()
            .max_by_key(|r| (self.liveness.next_use(*r, idx), r.0))
            .expect("no evictable register: architectural budget too small for one instruction");
        let slot = self.slot_of[victim.0 as usize]
            .take()
            .expect("victim is resident");
        self.slot_owner[slot] = None;

        // Only store the victim if it will be read again and has no valid
        // memory copy.
        let victim_next_use = self.liveness.next_use(victim, idx);
        if victim_next_use != usize::MAX && !self.in_memory[victim.0 as usize] {
            let addr = *self.spill_addr[victim.0 as usize].get_or_insert_with(|| {
                let a = self.spill_base + self.next_spill_slot * self.spill_slot_bytes;
                self.next_spill_slot += 1;
                a
            });
            self.out
                .allocations
                .push(Allocation::SpillStore { slot, addr });
            self.out.spill_stores += 1;
            self.in_memory[victim.0 as usize] = true;
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;
    use crate::builder::KernelBuilder;

    /// A kernel that keeps `width` values live simultaneously.
    fn wide_kernel(width: usize) -> IrKernel {
        let mut b = KernelBuilder::new("wide");
        let vals: Vec<_> = (0..width).map(|i| b.vload(64 * i as u64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.vfadd(acc, v);
        }
        b.vstore(acc, 0x10_0000);
        b.finish()
    }

    #[test]
    fn no_spills_when_pressure_fits() {
        let k = wide_kernel(8);
        let a = RegAllocator::new(16, 0x20_0000, 1024).allocate(&k);
        assert_eq!(a.spill_stores, 0);
        assert_eq!(a.spill_loads, 0);
        assert!(a.slots_used <= 9);
    }

    #[test]
    fn spills_appear_when_pressure_exceeds_budget() {
        let k = wide_kernel(12);
        let a = RegAllocator::new(8, 0x20_0000, 1024).allocate(&k);
        assert!(a.spill_stores > 0);
        assert!(
            a.spill_loads >= a.spill_stores,
            "every stored value is reloaded"
        );
        assert!(a.slots_used <= 8);
    }

    #[test]
    fn smaller_budget_spills_more() {
        let k = wide_kernel(16);
        let spills = |slots: usize| {
            RegAllocator::new(slots, 0x20_0000, 1024)
                .allocate(&k)
                .spill_loads
        };
        assert!(spills(4) > spills(8));
        assert_eq!(spills(32), 0);
    }

    #[test]
    fn allocation_never_exceeds_slot_budget() {
        for width in [4, 8, 12, 20, 31] {
            let k = wide_kernel(width);
            for slots in [4, 8, 16, 32] {
                let a = RegAllocator::new(slots, 0x20_0000, 1024).allocate(&k);
                assert!(a.slots_used <= slots, "width {width} slots {slots}");
            }
        }
    }

    #[test]
    fn spill_addresses_are_distinct_per_value() {
        let k = wide_kernel(20);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        let mut addrs: Vec<u64> = a
            .allocations
            .iter()
            .filter_map(|al| match al {
                Allocation::SpillStore { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "two values shared a spill slot");
        assert!(a.spill_area_bytes >= before as u64 * 1024);
    }

    #[test]
    fn reloads_follow_stores_for_each_value() {
        let k = wide_kernel(20);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        // Every reload address must have been stored earlier in the stream.
        let mut stored: HashSet<u64> = HashSet::new();
        for al in &a.allocations {
            match al {
                Allocation::SpillStore { addr, .. } => {
                    stored.insert(*addr);
                }
                Allocation::SpillLoad { addr, .. } => {
                    assert!(stored.contains(addr), "reload of never-stored slot");
                }
                Allocation::Op { .. } => {}
            }
        }
    }

    #[test]
    fn ssa_values_are_stored_at_most_once() {
        let k = wide_kernel(24);
        let a = RegAllocator::new(4, 0x20_0000, 1024).allocate(&k);
        let mut addrs: Vec<u64> = a
            .allocations
            .iter()
            .filter_map(|al| match al {
                Allocation::SpillStore { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        let total = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(total, addrs.len());
    }

    #[test]
    fn config_instructions_pass_through_unallocated() {
        let mut b = KernelBuilder::new("cfg");
        b.set_vl(16);
        let x = b.vload(0);
        b.vstore(x, 8);
        let a = RegAllocator::new(4, 0x1000, 128).allocate(&b.finish());
        assert!(matches!(
            a.allocations[0],
            Allocation::Op {
                ir_index: 0,
                dst_slot: None,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_budgets_are_rejected() {
        let _ = RegAllocator::new(2, 0, 64);
    }

    #[test]
    fn three_source_ops_fit_in_minimum_budget() {
        let mut b = KernelBuilder::new("fma");
        let x = b.vload(0);
        let y = b.vload(64);
        let z = b.vload(128);
        let r = b.vfmadd(x, y, z);
        b.vstore(r, 256);
        let a = RegAllocator::new(4, 0x1000, 128).allocate(&b.finish());
        assert_eq!(a.spill_stores, 0);
        assert_eq!(a.slots_used, 4);
    }
}
