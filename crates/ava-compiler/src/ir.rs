//! Virtual-register intermediate representation.
//!
//! The IR mirrors the final vector ISA ([`ava_isa::VecInstr`]) but names
//! values with unbounded [`VirtReg`]s, so kernels can be written in SSA
//! style and the register allocator decides how they fit into the
//! architectural register budget (which shrinks under register grouping).

use std::fmt;

use ava_isa::{Element, InstrKind, Opcode};

/// A virtual vector register: an SSA-like value name with no architectural
/// constraint. The register allocator maps virtual registers to
/// architectural registers (and to spill slots when pressure is too high).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtReg(pub u32);

impl VirtReg {
    /// The numeric id of this virtual register.
    #[must_use]
    pub fn id(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A source operand in the IR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrOperand {
    /// A virtual vector register.
    Reg(VirtReg),
    /// A scalar immediate broadcast across the vector.
    Scalar(Element),
}

impl IrOperand {
    /// The virtual register, if this operand is a register.
    #[must_use]
    pub fn reg(&self) -> Option<VirtReg> {
        match self {
            IrOperand::Reg(r) => Some(*r),
            IrOperand::Scalar(_) => None,
        }
    }
}

impl From<VirtReg> for IrOperand {
    fn from(r: VirtReg) -> Self {
        IrOperand::Reg(r)
    }
}

impl From<f64> for IrOperand {
    fn from(v: f64) -> Self {
        IrOperand::Scalar(Element::from_f64(v))
    }
}

/// Memory-access descriptor in the IR (addresses are concrete simulated
/// addresses because kernels are generated as dynamic traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrMemAccess {
    /// Base byte address of element 0.
    pub base: u64,
    /// Stride in bytes (8 = unit stride).
    pub stride: i64,
    /// Index register for gathers/scatters.
    pub index: Option<VirtReg>,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct IrInstr {
    /// The vector operation.
    pub opcode: Opcode,
    /// Defined virtual register, if any.
    pub dst: Option<VirtReg>,
    /// Source operands.
    pub srcs: Vec<IrOperand>,
    /// Memory descriptor for loads/stores.
    pub mem: Option<IrMemAccess>,
    /// Requested vector length for `SetVl`.
    pub setvl_request: Option<usize>,
}

impl IrInstr {
    /// Queue classification of the instruction.
    #[must_use]
    pub fn kind(&self) -> InstrKind {
        self.opcode.kind()
    }

    /// Virtual registers read by this instruction.
    pub fn source_regs(&self) -> impl Iterator<Item = VirtReg> + '_ {
        self.srcs.iter().filter_map(IrOperand::reg)
    }
}

impl fmt::Display for IrInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.dst {
            write!(f, "{d} = ")?;
        }
        write!(f, "{}", self.opcode.mnemonic())?;
        for s in &self.srcs {
            match s {
                IrOperand::Reg(r) => write!(f, " {r}")?,
                IrOperand::Scalar(e) => write!(f, " #{}", e.as_f64())?,
            }
        }
        if let Some(m) = &self.mem {
            write!(f, " @{:#x}", m.base)?;
        }
        Ok(())
    }
}

/// One buffer-rebinding rule applied when concatenating kernels: memory
/// operands whose base address falls inside `[old_base, old_base + bytes)`
/// are rebased onto `new_base`, preserving their offset within the buffer.
/// This is how a pipelined composite points a consumer phase's planned
/// input buffer at the producer phase's actual output buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebaseRule {
    /// Base address of the buffer the kernel was generated against.
    pub old_base: u64,
    /// Size of the buffer in bytes.
    pub bytes: u64,
    /// Base address the accesses are rebound to.
    pub new_base: u64,
}

impl RebaseRule {
    /// Applies the rule to one base address, if it falls inside the rebased
    /// buffer.
    #[must_use]
    pub fn apply(&self, base: u64) -> Option<u64> {
        (base >= self.old_base && base < self.old_base + self.bytes)
            .then(|| self.new_base + (base - self.old_base))
    }

    /// The rule pair exchanging two equally-sized buffers: accesses to
    /// `a_base` land on `b_base` and vice versa. This is the ping-pong map
    /// of an iterated composite — odd iterations of the unrolled body are
    /// concatenated with the carried input/output arrays swapped, so a
    /// carried value alternates between two physical buffers instead of
    /// being copied once per iteration.
    ///
    /// # Panics
    ///
    /// Panics if the two buffers overlap (the swap would be ill-defined).
    #[must_use]
    pub fn swapped(a_base: u64, b_base: u64, bytes: u64) -> [RebaseRule; 2] {
        assert!(
            a_base + bytes <= b_base || b_base + bytes <= a_base,
            "cannot swap overlapping buffers at {a_base:#x} and {b_base:#x} ({bytes} bytes)"
        );
        [
            RebaseRule {
                old_base: a_base,
                bytes,
                new_base: b_base,
            },
            RebaseRule {
                old_base: b_base,
                bytes,
                new_base: a_base,
            },
        ]
    }
}

/// A straight-line kernel trace in IR form, produced by
/// [`crate::KernelBuilder`] and consumed by the register allocator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IrKernel {
    /// Human-readable kernel name.
    pub name: String,
    /// Instructions in program order.
    pub instrs: Vec<IrInstr>,
    /// Number of virtual registers used (ids are `0..num_virt_regs`).
    pub num_virt_regs: u32,
}

impl IrKernel {
    /// Number of instructions in the kernel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the kernel has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Maximum number of simultaneously-live virtual registers (the
    /// register pressure the allocator must fit into the architectural
    /// budget). Computed via [`crate::Liveness`].
    #[must_use]
    pub fn max_pressure(&self) -> usize {
        crate::Liveness::analyse(self).max_pressure()
    }

    /// Appends `phase` after this kernel's instructions, renumbering the
    /// phase's virtual registers so the combined trace stays in SSA form
    /// (each id defined exactly once). Used by multi-kernel composite
    /// workloads: the phases run back to back in one program, sharing the
    /// same memory hierarchy, and because values never flow between phases
    /// through *registers* the combined register pressure is the maximum —
    /// not the sum — of the phases'.
    pub fn concat(&mut self, phase: &IrKernel) {
        self.concat_remapped(phase, &[]);
    }

    /// [`IrKernel::concat`] with buffer rebinding: while appending, every
    /// memory operand whose base falls inside a [`RebaseRule`]'s buffer is
    /// rebased onto the rule's new base (first matching rule wins). A
    /// pipelined composite uses this to make a consumer phase — generated
    /// against its own planned placeholder input buffer — read the producer
    /// phase's actual output buffer at run time.
    ///
    /// # Panics
    ///
    /// Panics if two rules rebase overlapping source ranges (the rebinding
    /// would become order-dependent).
    pub fn concat_remapped(&mut self, phase: &IrKernel, rebase: &[RebaseRule]) {
        for (i, a) in rebase.iter().enumerate() {
            for b in &rebase[i + 1..] {
                assert!(
                    a.old_base + a.bytes <= b.old_base || b.old_base + b.bytes <= a.old_base,
                    "rebase rules overlap: {a:?} vs {b:?}"
                );
            }
        }
        let offset = self.num_virt_regs;
        let remap = |r: VirtReg| VirtReg(r.0 + offset);
        let rebase_addr = |base: u64| rebase.iter().find_map(|r| r.apply(base)).unwrap_or(base);
        self.instrs.extend(phase.instrs.iter().map(|i| {
            IrInstr {
                opcode: i.opcode,
                dst: i.dst.map(remap),
                srcs: i
                    .srcs
                    .iter()
                    .map(|s| match s {
                        IrOperand::Reg(r) => IrOperand::Reg(remap(*r)),
                        IrOperand::Scalar(e) => IrOperand::Scalar(*e),
                    })
                    .collect(),
                mem: i.mem.map(|m| IrMemAccess {
                    base: rebase_addr(m.base),
                    stride: m.stride,
                    index: m.index.map(remap),
                }),
                setvl_request: i.setvl_request,
            }
        }));
        self.num_virt_regs += phase.num_virt_regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Opcode;

    #[test]
    fn virtreg_display_and_id() {
        assert_eq!(VirtReg(7).to_string(), "%7");
        assert_eq!(VirtReg(7).id(), 7);
    }

    #[test]
    fn operand_reg_extraction() {
        assert_eq!(IrOperand::Reg(VirtReg(3)).reg(), Some(VirtReg(3)));
        assert_eq!(IrOperand::from(1.5).reg(), None);
    }

    #[test]
    fn instr_source_regs_skip_scalars() {
        let i = IrInstr {
            opcode: Opcode::VFMul,
            dst: Some(VirtReg(2)),
            srcs: vec![IrOperand::Reg(VirtReg(0)), IrOperand::from(3.0)],
            mem: None,
            setvl_request: None,
        };
        assert_eq!(i.source_regs().collect::<Vec<_>>(), vec![VirtReg(0)]);
        assert_eq!(i.kind(), InstrKind::Arithmetic);
        assert!(i.to_string().contains("vfmul.v"));
    }

    #[test]
    fn empty_kernel_reports_empty() {
        let k = IrKernel::default();
        assert!(k.is_empty());
        assert_eq!(k.len(), 0);
        assert_eq!(k.max_pressure(), 0);
    }

    #[test]
    fn concat_remapped_rebases_only_matching_buffers() {
        let mut b = crate::KernelBuilder::new("producer");
        let x = b.vload(0x1000);
        b.vstore(x, 0x2000);
        let mut combined = b.finish();

        let mut b = crate::KernelBuilder::new("consumer");
        let y = b.vload(0x5000 + 64); // second strip of the placeholder input
        let z = b.vload(0x9000); // an unbound input, untouched
        let s = b.vfadd(y, z);
        b.vstore(s, 0x6000);
        let consumer = b.finish();

        combined.concat_remapped(
            &consumer,
            &[RebaseRule {
                old_base: 0x5000,
                bytes: 0x800,
                new_base: 0x2000,
            }],
        );
        // The placeholder read is rebased onto the producer's output,
        // offset preserved; everything else keeps its address.
        assert_eq!(combined.instrs[2].mem.unwrap().base, 0x2000 + 64);
        assert_eq!(combined.instrs[3].mem.unwrap().base, 0x9000);
        assert_eq!(combined.instrs[5].mem.unwrap().base, 0x6000);
    }

    #[test]
    #[should_panic(expected = "rebase rules overlap")]
    fn overlapping_rebase_rules_are_rejected() {
        let mut a = IrKernel::default();
        let rules = [
            RebaseRule {
                old_base: 0x1000,
                bytes: 0x200,
                new_base: 0x4000,
            },
            RebaseRule {
                old_base: 0x1100,
                bytes: 0x200,
                new_base: 0x5000,
            },
        ];
        a.concat_remapped(&IrKernel::default(), &rules);
    }

    #[test]
    fn swapped_rules_exchange_the_two_buffers() {
        let rules = RebaseRule::swapped(0x1000, 0x3000, 0x100);
        let apply = |base| rules.iter().find_map(|r| r.apply(base)).unwrap_or(base);
        assert_eq!(apply(0x1000), 0x3000);
        assert_eq!(apply(0x3040), 0x1040);
        assert_eq!(
            apply(0x5000),
            0x5000,
            "addresses outside the pair pass through"
        );
        // The pair is accepted by concat_remapped (its ranges are disjoint).
        IrKernel::default().concat_remapped(&IrKernel::default(), &rules);
    }

    #[test]
    #[should_panic(expected = "cannot swap overlapping buffers")]
    fn swapped_rejects_overlapping_buffers() {
        let _ = RebaseRule::swapped(0x1000, 0x1080, 0x100);
    }

    #[test]
    fn concat_renumbers_the_appended_phase() {
        let mut b = crate::KernelBuilder::new("a");
        let x = b.vload(0);
        b.vstore(x, 64);
        let mut a = b.finish();

        let mut b = crate::KernelBuilder::new("b");
        let idx = b.vid();
        let g = b.vload_indexed(0x100, idx);
        let s = b.vfadd(g, 1.0);
        b.vstore(s, 0x200);
        let second = b.finish();

        a.concat(&second);
        assert_eq!(a.num_virt_regs, 1 + 3);
        // The appended phase's registers start after the first phase's.
        assert_eq!(a.instrs[2].dst, Some(VirtReg(1)));
        assert_eq!(a.instrs[3].mem.unwrap().index, Some(VirtReg(1)));
        assert_eq!(a.instrs[4].srcs[0].reg(), Some(VirtReg(2)));
        // SSA: every destination id is defined exactly once.
        let mut defs: Vec<u32> = a.instrs.iter().filter_map(|i| i.dst.map(|d| d.0)).collect();
        defs.sort_unstable();
        defs.dedup();
        assert_eq!(defs.len(), 4);
        // Phases stay independent, so pressure is the max, not the sum.
        assert_eq!(a.max_pressure(), second.max_pressure());
    }
}
