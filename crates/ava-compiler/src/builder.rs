//! Intrinsics-style builder for vector kernels.
//!
//! [`KernelBuilder`] is the API the workloads use to express their inner
//! loops, playing the role of the RISC-V vector intrinsics in the original
//! RiVEC sources. Every value-producing method returns a fresh [`VirtReg`],
//! so kernels are written in SSA style and the register allocator decides
//! how they map onto the architectural registers.

use ava_isa::{Element, Opcode};

use crate::ir::{IrInstr, IrKernel, IrMemAccess, IrOperand, VirtReg};

/// Builder for straight-line vector kernels in SSA-like IR form.
///
/// ```
/// use ava_compiler::KernelBuilder;
/// let mut b = KernelBuilder::new("demo");
/// b.set_vl(16);
/// let x = b.vload(0x100);
/// let two_x = b.vfmul_scalar(x, 2.0);
/// b.vstore(two_x, 0x200);
/// let k = b.finish();
/// assert_eq!(k.len(), 4);
/// assert_eq!(k.num_virt_regs, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KernelBuilder {
    kernel: IrKernel,
}

impl KernelBuilder {
    /// Creates an empty kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            kernel: IrKernel {
                name: name.into(),
                instrs: Vec::new(),
                num_virt_regs: 0,
            },
        }
    }

    /// Finalises the builder and returns the IR kernel.
    #[must_use]
    pub fn finish(self) -> IrKernel {
        self.kernel
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kernel.instrs.len()
    }

    /// True if no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kernel.instrs.is_empty()
    }

    fn fresh(&mut self) -> VirtReg {
        let r = VirtReg(self.kernel.num_virt_regs);
        self.kernel.num_virt_regs += 1;
        r
    }

    fn push(&mut self, instr: IrInstr) {
        self.kernel.instrs.push(instr);
    }

    fn emit_value(&mut self, opcode: Opcode, srcs: Vec<IrOperand>) -> VirtReg {
        let dst = self.fresh();
        self.push(IrInstr {
            opcode,
            dst: Some(dst),
            srcs,
            mem: None,
            setvl_request: None,
        });
        dst
    }

    // ------------------------------------------------------------ config

    /// Emits a `vsetvl` requesting `avl` elements.
    pub fn set_vl(&mut self, avl: usize) {
        self.push(IrInstr {
            opcode: Opcode::SetVl,
            dst: None,
            srcs: vec![],
            mem: None,
            setvl_request: Some(avl),
        });
    }

    // ------------------------------------------------------------ memory

    /// Unit-stride load.
    pub fn vload(&mut self, base: u64) -> VirtReg {
        let dst = self.fresh();
        self.push(IrInstr {
            opcode: Opcode::VLoad,
            dst: Some(dst),
            srcs: vec![],
            mem: Some(IrMemAccess {
                base,
                stride: 8,
                index: None,
            }),
            setvl_request: None,
        });
        dst
    }

    /// Strided load (`stride` in bytes).
    pub fn vload_strided(&mut self, base: u64, stride: i64) -> VirtReg {
        let dst = self.fresh();
        self.push(IrInstr {
            opcode: Opcode::VLoadStrided,
            dst: Some(dst),
            srcs: vec![],
            mem: Some(IrMemAccess {
                base,
                stride,
                index: None,
            }),
            setvl_request: None,
        });
        dst
    }

    /// Indexed gather: element i comes from `base + 8 * idx[i]`.
    pub fn vload_indexed(&mut self, base: u64, idx: VirtReg) -> VirtReg {
        let dst = self.fresh();
        self.push(IrInstr {
            opcode: Opcode::VLoadIndexed,
            dst: Some(dst),
            srcs: vec![IrOperand::Reg(idx)],
            mem: Some(IrMemAccess {
                base,
                stride: 8,
                index: Some(idx),
            }),
            setvl_request: None,
        });
        dst
    }

    /// Unit-stride store.
    pub fn vstore(&mut self, src: VirtReg, base: u64) {
        self.push(IrInstr {
            opcode: Opcode::VStore,
            dst: None,
            srcs: vec![IrOperand::Reg(src)],
            mem: Some(IrMemAccess {
                base,
                stride: 8,
                index: None,
            }),
            setvl_request: None,
        });
    }

    /// Strided store.
    pub fn vstore_strided(&mut self, src: VirtReg, base: u64, stride: i64) {
        self.push(IrInstr {
            opcode: Opcode::VStoreStrided,
            dst: None,
            srcs: vec![IrOperand::Reg(src)],
            mem: Some(IrMemAccess {
                base,
                stride,
                index: None,
            }),
            setvl_request: None,
        });
    }

    /// Indexed scatter.
    pub fn vstore_indexed(&mut self, src: VirtReg, base: u64, idx: VirtReg) {
        self.push(IrInstr {
            opcode: Opcode::VStoreIndexed,
            dst: None,
            srcs: vec![IrOperand::Reg(src), IrOperand::Reg(idx)],
            mem: Some(IrMemAccess {
                base,
                stride: 8,
                index: Some(idx),
            }),
            setvl_request: None,
        });
    }

    // ------------------------------------------------------ moves & misc

    /// Broadcasts a scalar value to a fresh vector register.
    pub fn vsplat(&mut self, value: f64) -> VirtReg {
        self.emit_value(
            Opcode::VMvSplat,
            vec![IrOperand::Scalar(Element::from_f64(value))],
        )
    }

    /// Vector copy.
    pub fn vmv(&mut self, src: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VMv, vec![IrOperand::Reg(src)])
    }

    /// Index vector `[0, 1, 2, ...]`.
    pub fn vid(&mut self) -> VirtReg {
        self.emit_value(Opcode::VId, vec![])
    }

    /// Select `mask ? on_true : on_false`.
    pub fn vmerge(
        &mut self,
        on_true: impl Into<IrOperand>,
        on_false: impl Into<IrOperand>,
        mask: VirtReg,
    ) -> VirtReg {
        self.emit_value(
            Opcode::VMerge,
            vec![on_true.into(), on_false.into(), IrOperand::Reg(mask)],
        )
    }

    // ---------------------------------------------------- fp arithmetic

    /// `a + b`.
    pub fn vfadd(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFAdd, vec![a.into(), b.into()])
    }

    /// `a - b`.
    pub fn vfsub(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFSub, vec![a.into(), b.into()])
    }

    /// `a * b`.
    pub fn vfmul(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFMul, vec![a.into(), b.into()])
    }

    /// `a * scalar`.
    pub fn vfmul_scalar(&mut self, a: VirtReg, s: f64) -> VirtReg {
        self.vfmul(a, s)
    }

    /// `a / b`.
    pub fn vfdiv(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFDiv, vec![a.into(), b.into()])
    }

    /// `sqrt(a)`.
    pub fn vfsqrt(&mut self, a: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFSqrt, vec![IrOperand::Reg(a)])
    }

    /// `-a`.
    pub fn vfneg(&mut self, a: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFNeg, vec![IrOperand::Reg(a)])
    }

    /// `|a|`.
    pub fn vfabs(&mut self, a: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFAbs, vec![IrOperand::Reg(a)])
    }

    /// `exp(a)`.
    pub fn vfexp(&mut self, a: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFExp, vec![IrOperand::Reg(a)])
    }

    /// `ln(a)`.
    pub fn vfln(&mut self, a: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFLn, vec![IrOperand::Reg(a)])
    }

    /// `min(a, b)`.
    pub fn vfmin(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFMin, vec![a.into(), b.into()])
    }

    /// `max(a, b)`.
    pub fn vfmax(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VFMax, vec![a.into(), b.into()])
    }

    /// Fused multiply-add producing a *new* value: `a * b + c`.
    pub fn vfmadd(
        &mut self,
        a: impl Into<IrOperand>,
        b: impl Into<IrOperand>,
        c: impl Into<IrOperand>,
    ) -> VirtReg {
        self.emit_value(Opcode::VFMacc, vec![a.into(), b.into(), c.into()])
    }

    /// Fused multiply-accumulate into an existing accumulator with a scalar
    /// multiplier (`acc + s * x`), mirroring `vfmacc.vf`.
    pub fn vfmacc_scalar(&mut self, acc: VirtReg, s: f64, x: VirtReg) -> VirtReg {
        self.vfmadd(s, x, acc)
    }

    /// Fused multiply-subtract: `a * b - c`.
    pub fn vfmsub(
        &mut self,
        a: impl Into<IrOperand>,
        b: impl Into<IrOperand>,
        c: impl Into<IrOperand>,
    ) -> VirtReg {
        self.emit_value(Opcode::VFMsac, vec![a.into(), b.into(), c.into()])
    }

    // -------------------------------------------------- int arithmetic

    /// Integer `a + b`.
    pub fn vadd(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VAdd, vec![a.into(), b.into()])
    }

    /// Integer `a * b`.
    pub fn vmul(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VMul, vec![a.into(), b.into()])
    }

    /// Integer minimum.
    pub fn vmin(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VMin, vec![a.into(), b.into()])
    }

    // --------------------------------------------------------- compares

    /// Floating `a < b` producing a 0/1 mask vector.
    pub fn vmflt(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VMFLt, vec![a.into(), b.into()])
    }

    /// Floating `a >= b` producing a 0/1 mask vector.
    pub fn vmfge(&mut self, a: impl Into<IrOperand>, b: impl Into<IrOperand>) -> VirtReg {
        self.emit_value(Opcode::VMFGe, vec![a.into(), b.into()])
    }

    // ------------------------------------------------------- reductions

    /// Sum reduction into element 0 of the result register.
    pub fn vfredsum(&mut self, src: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFRedSum, vec![IrOperand::Reg(src)])
    }

    /// Max reduction into element 0 of the result register.
    pub fn vfredmax(&mut self, src: VirtReg) -> VirtReg {
        self.emit_value(Opcode::VFRedMax, vec![IrOperand::Reg(src)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::InstrKind;

    #[test]
    fn builder_assigns_fresh_virtual_registers() {
        let mut b = KernelBuilder::new("t");
        let a = b.vload(0);
        let c = b.vload(8);
        let d = b.vfadd(a, c);
        assert_eq!(a, VirtReg(0));
        assert_eq!(c, VirtReg(1));
        assert_eq!(d, VirtReg(2));
        assert_eq!(b.finish().num_virt_regs, 3);
    }

    #[test]
    fn stores_and_setvl_do_not_define_values() {
        let mut b = KernelBuilder::new("t");
        b.set_vl(16);
        let x = b.vload(0);
        b.vstore(x, 64);
        let k = b.finish();
        assert_eq!(k.num_virt_regs, 1);
        assert_eq!(k.instrs[0].kind(), InstrKind::Config);
        assert!(k.instrs[2].dst.is_none());
    }

    #[test]
    fn scalar_operands_do_not_create_registers() {
        let mut b = KernelBuilder::new("t");
        let x = b.vload(0);
        let _y = b.vfmul(x, 3.0);
        let k = b.finish();
        assert_eq!(k.num_virt_regs, 2);
        assert_eq!(k.instrs[1].source_regs().count(), 1);
    }

    #[test]
    fn fmadd_reads_three_values() {
        let mut b = KernelBuilder::new("t");
        let x = b.vload(0);
        let y = b.vload(8);
        let z = b.vload(16);
        let r = b.vfmadd(x, y, z);
        let k = b.finish();
        assert_eq!(k.instrs[3].source_regs().count(), 3);
        assert_eq!(r, VirtReg(3));
    }

    #[test]
    fn indexed_access_records_index_register() {
        let mut b = KernelBuilder::new("t");
        let idx = b.vid();
        let g = b.vload_indexed(0x100, idx);
        b.vstore_indexed(g, 0x200, idx);
        let k = b.finish();
        assert_eq!(k.instrs[1].mem.unwrap().index, Some(idx));
        assert_eq!(k.instrs[2].source_regs().count(), 2);
    }

    #[test]
    fn is_empty_and_len_track_emission() {
        let mut b = KernelBuilder::new("t");
        assert!(b.is_empty());
        b.set_vl(4);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
