//! The system configurations evaluated in the paper (Tables II and III).

use ava_isa::Lmul;
use ava_memory::HierarchyConfig;
use ava_scalar::ScalarConfig;
use ava_vpu::VpuConfig;

/// Which of the three register-file organisations a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// NATIVE Xn: hardware built natively for `MVL = 16n`, VRF of `8n` KB.
    Native(usize),
    /// AVA Xn: the adaptable design reconfigured to `MVL = 16n`, 8 KB P-VRF.
    Ava(usize),
    /// RG-LMULn: the 8 KB baseline hardware with software register grouping.
    Rg(Lmul),
}

/// A complete system: scalar core + VPU + memory hierarchy + the compiler
/// configuration used to build binaries for it.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Organisation and scale factor.
    pub kind: SystemKind,
    /// VPU configuration.
    pub vpu: VpuConfig,
    /// Scalar-core configuration.
    pub scalar: ScalarConfig,
    /// Memory-hierarchy configuration.
    pub memory: HierarchyConfig,
    /// Register-grouping factor the compiler targets (LMUL>1 only for RG).
    pub compiler_lmul: Lmul,
}

impl SystemConfig {
    /// Short display label ("NATIVE X4", "AVA X2", "RG-LMUL8").
    #[must_use]
    pub fn label(&self) -> &str {
        &self.vpu.name
    }

    /// Maximum vector length in elements seen by software on this system.
    #[must_use]
    pub fn mvl(&self) -> usize {
        self.vpu.mvl
    }

    /// NATIVE Xn (n in {1, 2, 3, 4, 8}).
    #[must_use]
    pub fn native_x(n: usize) -> Self {
        Self {
            kind: SystemKind::Native(n),
            vpu: VpuConfig::native_x(n),
            scalar: ScalarConfig::default(),
            memory: HierarchyConfig::default(),
            compiler_lmul: Lmul::M1,
        }
    }

    /// AVA Xn (n in {1, 2, 3, 4, 8}).
    #[must_use]
    pub fn ava_x(n: usize) -> Self {
        Self {
            kind: SystemKind::Ava(n),
            vpu: VpuConfig::ava_x(n),
            scalar: ScalarConfig::default(),
            memory: HierarchyConfig::default(),
            compiler_lmul: Lmul::M1,
        }
    }

    /// RG-LMULn (n in {1, 2, 4, 8}).
    #[must_use]
    pub fn rg_lmul(lmul: Lmul) -> Self {
        Self {
            kind: SystemKind::Rg(lmul),
            vpu: VpuConfig::rg_lmul(lmul),
            scalar: ScalarConfig::default(),
            memory: HierarchyConfig::default(),
            compiler_lmul: lmul,
        }
    }

    /// The five NATIVE configurations of Table II.
    #[must_use]
    pub fn all_native() -> Vec<Self> {
        [1, 2, 3, 4, 8].iter().map(|&n| Self::native_x(n)).collect()
    }

    /// The five AVA configurations of Table III.
    #[must_use]
    pub fn all_ava() -> Vec<Self> {
        [1, 2, 3, 4, 8].iter().map(|&n| Self::ava_x(n)).collect()
    }

    /// The four RG configurations of Table III.
    #[must_use]
    pub fn all_rg() -> Vec<Self> {
        Lmul::all().iter().map(|&l| Self::rg_lmul(l)).collect()
    }

    /// Every configuration evaluated in Figure 3, in presentation order:
    /// NATIVE X1..X8, RG-LMUL1..8, AVA X1..X8.
    #[must_use]
    pub fn all_evaluated() -> Vec<Self> {
        let mut v = Self::all_native();
        v.extend(Self::all_rg());
        v.extend(Self::all_ava());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalences_of_table_iii_hold() {
        // AVA Xn and NATIVE Xn expose the same MVL; RG-LMULn matches NATIVE Xn.
        for n in [1usize, 2, 4, 8] {
            assert_eq!(
                SystemConfig::native_x(n).mvl(),
                SystemConfig::ava_x(n).mvl()
            );
        }
        assert_eq!(
            SystemConfig::rg_lmul(Lmul::M8).mvl(),
            SystemConfig::native_x(8).mvl()
        );
        assert_eq!(
            SystemConfig::rg_lmul(Lmul::M2).mvl(),
            SystemConfig::native_x(2).mvl()
        );
    }

    #[test]
    fn compiler_lmul_matches_the_system_kind() {
        assert_eq!(SystemConfig::native_x(8).compiler_lmul, Lmul::M1);
        assert_eq!(SystemConfig::ava_x(8).compiler_lmul, Lmul::M1);
        assert_eq!(SystemConfig::rg_lmul(Lmul::M4).compiler_lmul, Lmul::M4);
    }

    #[test]
    fn evaluated_set_has_fourteen_configurations() {
        let all = SystemConfig::all_evaluated();
        assert_eq!(all.len(), 5 + 4 + 5);
        let labels: Vec<&str> = all.iter().map(SystemConfig::label).collect();
        assert!(labels.contains(&"NATIVE X3"));
        assert!(labels.contains(&"RG-LMUL4"));
        assert!(labels.contains(&"AVA X8"));
    }

    #[test]
    fn only_ava_configurations_have_an_mvrf() {
        assert!(SystemConfig::ava_x(4).vpu.mvrf_bytes() > 0);
        assert_eq!(SystemConfig::native_x(4).vpu.mvrf_bytes(), 0);
        assert_eq!(SystemConfig::rg_lmul(Lmul::M4).vpu.mvrf_bytes(), 0);
    }
}
