//! The scenario layer: composable system configurations.
//!
//! The paper evaluates a fixed grid — three register-file organisations at
//! MVL ≤ 128 on one memory hierarchy (Tables II and III). This module keeps
//! those presets but opens every dimension as an independent axis:
//!
//! * [`ScenarioConfig`] is the *declarative* layer — a base organisation
//!   (NATIVE / AVA / RG) plus orthogonal overrides over the VPU (MVL up to
//!   512, P-VRF capacity, VVR pool, issue queues, ROB, VMU overhead) and the
//!   memory hierarchy (L1/L2 size and latency, DRAM bandwidth, VMU bus
//!   width). Every override records axis metadata that flows into
//!   [`RunReport`](crate::RunReport)s and the `--json` pipeline.
//! * [`SystemConfig`] is the *resolved* layer — the fully materialised
//!   scalar-core + VPU + hierarchy description the simulator executes. It is
//!   only produced by [`ScenarioConfig::resolve`].
//!
//! Axis-builder constructors expand into sweep grids:
//!
//! ```
//! use ava_sim::ScenarioConfig;
//!
//! // MVL extrapolation axis × L2-size axis = a 6-scenario grid.
//! let grid = ScenarioConfig::axis_l2_kib(
//!     &ScenarioConfig::axis_mvl(&[128, 256, 512]),
//!     &[512, 4096],
//! );
//! assert_eq!(grid.len(), 6);
//! assert_eq!(grid[2].label(), "AVA MVL=256 l2=512KiB");
//! let resolved = grid[2].resolve();
//! assert_eq!(resolved.mvl(), 256);
//! assert_eq!(resolved.memory.l2.size_bytes, 512 * 1024);
//! // Table I extrapolation holds the X8 physical-register floor.
//! assert_eq!(resolved.vpu.physical_regs(), 8);
//! ```

use ava_isa::{Lmul, MAX_MVL_ELEMS, MIN_MVL_ELEMS};
use ava_memory::HierarchyConfig;
use ava_scalar::ScalarConfig;
use ava_vpu::VpuConfig;

use crate::json::{object, Json};

/// Which of the three register-file organisations a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// NATIVE Xn: hardware built natively for `MVL = 16n`, VRF of `8n` KB.
    Native(usize),
    /// AVA Xn: the adaptable design reconfigured to `MVL = 16n`, 8 KB P-VRF.
    Ava(usize),
    /// RG-LMULn: the 8 KB baseline hardware with software register grouping.
    Rg(Lmul),
}

/// One recorded scenario override: the axis name and its numeric value.
/// Sizes are in KiB, latencies in cycles, bandwidths in bytes per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Axis {
    /// Axis name ("mvl", "l2_kib", "vmu_bus", ...).
    pub name: &'static str,
    /// Axis value in the axis's natural unit.
    pub value: u64,
}

/// The physical-register floor the MVL-extrapolation axis maintains: the
/// paper's Table I ends at MVL = 128 with 8 physical registers in the 8 KB
/// P-VRF. Beyond that point the extrapolation holds the register count at
/// this X8 endpoint and grows the P-VRF minimally instead (fewer than ~4
/// registers cannot even keep the sources of a fused multiply-add resident).
pub const AVA_EXTRAPOLATION_PREG_FLOOR: usize = 8;

/// VPU-side overrides of a scenario (all optional).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct VpuOverrides {
    mvl: Option<usize>,
    pvrf_bytes: Option<usize>,
    vvr_count: Option<usize>,
    issue_queue_entries: Option<usize>,
    rob_entries: Option<usize>,
    mem_op_overhead: Option<u64>,
}

/// Memory-hierarchy overrides of a scenario (all optional).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct HierarchyOverrides {
    l1_kib: Option<usize>,
    l1_hit_latency: Option<u64>,
    l2_kib: Option<usize>,
    l2_hit_latency: Option<u64>,
    dram_bytes_per_cycle: Option<u64>,
    vmu_bus_bytes: Option<u64>,
}

/// A composable system scenario: a base organisation layered with
/// orthogonal VPU and memory-hierarchy overrides.
///
/// Construct a preset with [`ScenarioConfig::native_x`] /
/// [`ScenarioConfig::ava_x`] / [`ScenarioConfig::rg_lmul`], refine it with
/// the fluent `with_*` methods (each records an [`Axis`] and extends the
/// label), or expand whole grids with the `axis_*` builders. Resolve to the
/// executable [`SystemConfig`] with [`ScenarioConfig::resolve`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    base: SystemKind,
    vpu: VpuOverrides,
    memory: HierarchyOverrides,
    label: String,
    axes: Vec<Axis>,
}

impl ScenarioConfig {
    fn preset(base: SystemKind, label: String) -> Self {
        Self {
            base,
            vpu: VpuOverrides::default(),
            memory: HierarchyOverrides::default(),
            label,
            axes: Vec::new(),
        }
    }

    /// NATIVE Xn (n in {1, 2, 3, 4, 8}).
    #[must_use]
    pub fn native_x(n: usize) -> Self {
        Self::preset(SystemKind::Native(n), format!("NATIVE X{n}"))
    }

    /// AVA Xn (n in {1, 2, 3, 4, 8}).
    #[must_use]
    pub fn ava_x(n: usize) -> Self {
        Self::preset(SystemKind::Ava(n), format!("AVA X{n}"))
    }

    /// RG-LMULn (n in {1, 2, 4, 8}).
    #[must_use]
    pub fn rg_lmul(lmul: Lmul) -> Self {
        Self::preset(SystemKind::Rg(lmul), format!("RG-LMUL{}", lmul.factor()))
    }

    /// The five NATIVE configurations of Table II.
    #[must_use]
    pub fn all_native() -> Vec<Self> {
        [1, 2, 3, 4, 8].iter().map(|&n| Self::native_x(n)).collect()
    }

    /// The five AVA configurations of Table III.
    #[must_use]
    pub fn all_ava() -> Vec<Self> {
        [1, 2, 3, 4, 8].iter().map(|&n| Self::ava_x(n)).collect()
    }

    /// The four RG configurations of Table III.
    #[must_use]
    pub fn all_rg() -> Vec<Self> {
        Lmul::all().iter().map(|&l| Self::rg_lmul(l)).collect()
    }

    /// Every configuration evaluated in Figure 3, in presentation order:
    /// NATIVE X1..X8, RG-LMUL1..8, AVA X1..X8.
    #[must_use]
    pub fn all_evaluated() -> Vec<Self> {
        let mut v = Self::all_native();
        v.extend(Self::all_rg());
        v.extend(Self::all_ava());
        v
    }

    // ------------------------------------------------------------------
    // Axis builders: whole sweep axes in one call
    // ------------------------------------------------------------------

    /// The MVL-extrapolation axis: one AVA scenario per requested MVL, sized
    /// by the Table I path (`preg_count_for_mvl` over the P-VRF). Up to
    /// MVL = 128 this reproduces Table I exactly on the 8 KB P-VRF; beyond
    /// it the P-VRF grows just enough to hold the
    /// [`AVA_EXTRAPOLATION_PREG_FLOOR`] (16 KiB at 256, 32 KiB at 512).
    #[must_use]
    pub fn axis_mvl(mvls: &[usize]) -> Vec<Self> {
        mvls.iter().map(|&m| Self::ava_x(8).with_mvl(m)).collect()
    }

    /// Expands every base scenario along the L2-capacity axis (KiB).
    #[must_use]
    pub fn axis_l2_kib(bases: &[Self], kib: &[usize]) -> Vec<Self> {
        Self::expand(bases, kib, |s, &k| s.with_l2_kib(k))
    }

    /// Expands every base scenario along the L1-capacity axis (KiB).
    #[must_use]
    pub fn axis_l1_kib(bases: &[Self], kib: &[usize]) -> Vec<Self> {
        Self::expand(bases, kib, |s, &k| s.with_l1_kib(k))
    }

    /// Expands every base scenario along the VMU bus-width axis (bytes per
    /// cycle on the VPU-to-L2 interface; the paper uses 64 B = 512 bits).
    #[must_use]
    pub fn axis_vmu_bus(bases: &[Self], bytes: &[u64]) -> Vec<Self> {
        Self::expand(bases, bytes, |s, &b| s.with_vmu_bus_bytes(b))
    }

    /// Expands every base scenario along the DRAM-bandwidth axis (bytes per
    /// cycle of sustained streaming; the paper's DDR3 sustains ~12 B/cycle).
    #[must_use]
    pub fn axis_dram_bw(bases: &[Self], bytes_per_cycle: &[u64]) -> Vec<Self> {
        Self::expand(bases, bytes_per_cycle, |s, &b| s.with_dram_bandwidth(b))
    }

    /// Expands every base scenario along the VVR-pool axis (number of
    /// virtual vector registers the AVA renamer draws from; see
    /// [`ScenarioConfig::with_vvr_count`]). The bases must all be AVA
    /// scenarios — the pool is the AVA renamer's knob, NATIVE/RG rename
    /// from the physical registers.
    ///
    /// # Panics
    ///
    /// Panics (via `with_vvr_count`) on a non-AVA base or a count below the
    /// 32 architectural registers; callers translating manifests or flags
    /// validate first so their errors stay diagnosable.
    #[must_use]
    pub fn axis_vvr(bases: &[Self], counts: &[usize]) -> Vec<Self> {
        Self::expand(bases, counts, |s, &c| s.with_vvr_count(c))
    }

    fn expand<T>(bases: &[Self], values: &[T], apply: impl Fn(Self, &T) -> Self) -> Vec<Self> {
        bases
            .iter()
            .flat_map(|base| values.iter().map(|v| apply(base.clone(), v)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Fluent single-knob overrides
    // ------------------------------------------------------------------

    fn set_axis(mut self, name: &'static str, value: u64) -> Self {
        match self.axes.iter_mut().find(|a| a.name == name) {
            Some(a) => a.value = value,
            None => self.axes.push(Axis { name, value }),
        }
        self.rebuild_label();
        self
    }

    fn rebuild_label(&mut self) {
        let mut label = match (self.base, self.vpu.mvl) {
            (SystemKind::Native(n), None) => format!("NATIVE X{n}"),
            (SystemKind::Ava(n), None) => format!("AVA X{n}"),
            (SystemKind::Rg(l), _) => format!("RG-LMUL{}", l.factor()),
            (SystemKind::Native(_), Some(m)) => format!("NATIVE MVL={m}"),
            (SystemKind::Ava(_), Some(m)) => format!("AVA MVL={m}"),
        };
        for axis in &self.axes {
            let suffix = match axis.name {
                "mvl" => continue,   // folded into the base part above
                "iters" => continue, // workload shape, not a hardware knob
                "pvrf_kib" => format!("pvrf={}KiB", axis.value),
                "vvrs" => format!("vvrs={}", axis.value),
                "iq" => format!("iq={}", axis.value),
                "rob" => format!("rob={}", axis.value),
                "mem_op_overhead" => format!("memop={}", axis.value),
                "l1_kib" => format!("l1={}KiB", axis.value),
                "l1_lat" => format!("l1lat={}", axis.value),
                "l2_kib" => format!("l2={}KiB", axis.value),
                "l2_lat" => format!("l2lat={}", axis.value),
                "dram_bpc" => format!("dram={}B/c", axis.value),
                "vmu_bus" => format!("bus={}B", axis.value),
                other => format!("{}={}", other, axis.value),
            };
            label.push(' ');
            label.push_str(&suffix);
        }
        self.label = label;
    }

    /// Overrides the maximum vector length (a multiple of 16 up to 512).
    /// On an AVA base the P-VRF follows the Table I extrapolation (see
    /// [`ScenarioConfig::axis_mvl`]); on a NATIVE base the VRF scales
    /// proportionally as in Table II. RG bases reject the override — their
    /// MVL is the LMUL grouping itself.
    ///
    /// # Panics
    ///
    /// Panics on an RG base or an unsupported MVL.
    #[must_use]
    pub fn with_mvl(mut self, mvl: usize) -> Self {
        assert!(
            mvl.is_multiple_of(MIN_MVL_ELEMS) && (MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&mvl),
            "MVL must be a multiple of 16 in 16..=512, got {mvl}"
        );
        assert!(
            !matches!(self.base, SystemKind::Rg(_)),
            "RG's MVL is fixed by its LMUL grouping; use an AVA or NATIVE base"
        );
        self.vpu.mvl = Some(mvl);
        self.set_axis("mvl", mvl as u64)
    }

    /// Overrides the physical VRF capacity in KiB (otherwise derived from
    /// the base and the MVL override).
    #[must_use]
    pub fn with_pvrf_kib(mut self, kib: usize) -> Self {
        assert!(kib > 0, "P-VRF capacity must be non-zero");
        self.vpu.pvrf_bytes = Some(kib * 1024);
        self.set_axis("pvrf_kib", kib as u64)
    }

    /// Overrides the AVA first-level renaming pool (number of VVRs; the
    /// paper uses 64).
    ///
    /// # Panics
    ///
    /// Panics on a NATIVE/RG base — their rename pool is the physical
    /// register count, so the knob would silently do nothing while still
    /// advertising a "vvrs" axis in every report.
    #[must_use]
    pub fn with_vvr_count(mut self, vvrs: usize) -> Self {
        assert!(vvrs >= 32, "fewer VVRs than architectural registers");
        assert!(
            matches!(self.base, SystemKind::Ava(_)),
            "the VVR pool is an AVA knob; NATIVE/RG rename from the physical registers"
        );
        self.vpu.vvr_count = Some(vvrs);
        self.set_axis("vvrs", vvrs as u64)
    }

    /// Overrides both issue-queue depths (arithmetic and memory).
    #[must_use]
    pub fn with_issue_queues(mut self, entries: usize) -> Self {
        assert!(entries > 0, "issue queues need at least one entry");
        self.vpu.issue_queue_entries = Some(entries);
        self.set_axis("iq", entries as u64)
    }

    /// Overrides the reorder-buffer depth.
    #[must_use]
    pub fn with_rob_entries(mut self, entries: usize) -> Self {
        assert!(entries > 0, "the reorder buffer needs at least one entry");
        self.vpu.rob_entries = Some(entries);
        self.set_axis("rob", entries as u64)
    }

    /// Overrides the fixed per-vector-memory-instruction overhead (cycles).
    #[must_use]
    pub fn with_mem_op_overhead(mut self, cycles: u64) -> Self {
        self.vpu.mem_op_overhead = Some(cycles);
        self.set_axis("mem_op_overhead", cycles)
    }

    /// Overrides the L1 data-cache capacity in KiB.
    #[must_use]
    pub fn with_l1_kib(mut self, kib: usize) -> Self {
        assert!(kib > 0, "L1 capacity must be non-zero");
        self.memory.l1_kib = Some(kib);
        self.set_axis("l1_kib", kib as u64)
    }

    /// Overrides the L1 hit latency in cycles.
    #[must_use]
    pub fn with_l1_latency(mut self, cycles: u64) -> Self {
        self.memory.l1_hit_latency = Some(cycles);
        self.set_axis("l1_lat", cycles)
    }

    /// Overrides the shared-L2 capacity in KiB.
    #[must_use]
    pub fn with_l2_kib(mut self, kib: usize) -> Self {
        assert!(kib > 0, "L2 capacity must be non-zero");
        self.memory.l2_kib = Some(kib);
        self.set_axis("l2_kib", kib as u64)
    }

    /// Overrides the L2 hit latency in cycles.
    #[must_use]
    pub fn with_l2_latency(mut self, cycles: u64) -> Self {
        self.memory.l2_hit_latency = Some(cycles);
        self.set_axis("l2_lat", cycles)
    }

    /// Overrides the sustained DRAM streaming bandwidth (bytes per cycle).
    #[must_use]
    pub fn with_dram_bandwidth(mut self, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "DRAM bandwidth must be non-zero");
        self.memory.dram_bytes_per_cycle = Some(bytes_per_cycle);
        self.set_axis("dram_bpc", bytes_per_cycle)
    }

    /// Overrides the VMU-to-L2 bus width (bytes per cycle).
    #[must_use]
    pub fn with_vmu_bus_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "bus width must be non-zero");
        self.memory.vmu_bus_bytes = Some(bytes);
        self.set_axis("vmu_bus", bytes)
    }

    /// Records the solver iteration count as a first-class sweep axis, so
    /// runs over an iterated composite carry `"axes":{"iters":n}` in their
    /// JSON reports alongside the hardware knobs. Unlike the other
    /// overrides this is pure metadata — the unroll depth is baked into
    /// the `Composite::iterated` workload itself — so it changes no
    /// hardware parameter and stays out of the config label (solver sweeps
    /// at different depths keep comparable config names).
    #[must_use]
    pub fn with_iters(self, iters: usize) -> Self {
        assert!(iters >= 1, "an iterated solve needs at least one iteration");
        self.set_axis("iters", iters as u64)
    }

    // ------------------------------------------------------------------
    // Accessors and resolution
    // ------------------------------------------------------------------

    /// The base organisation this scenario layers over.
    #[must_use]
    pub fn base(&self) -> SystemKind {
        self.base
    }

    /// Display label ("AVA X4", "AVA MVL=256 l2=4096KiB", ...).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The recorded override axes, in application order.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Maximum vector length this scenario resolves to.
    #[must_use]
    pub fn mvl(&self) -> usize {
        self.vpu.mvl.unwrap_or(match self.base {
            SystemKind::Native(n) | SystemKind::Ava(n) => MIN_MVL_ELEMS * n,
            SystemKind::Rg(l) => MIN_MVL_ELEMS * l.factor(),
        })
    }

    /// Register-grouping factor the compiler targets (LMUL > 1 only for RG).
    #[must_use]
    pub fn compiler_lmul(&self) -> Lmul {
        match self.base {
            SystemKind::Rg(l) => l,
            _ => Lmul::M1,
        }
    }

    /// The resolved VPU configuration (shorthand for `resolve().vpu`, used
    /// by the energy/area models).
    #[must_use]
    pub fn vpu_config(&self) -> VpuConfig {
        self.resolve().vpu
    }

    /// Materialises the scenario into the executable [`SystemConfig`].
    ///
    /// # Panics
    ///
    /// Panics if an override combination is inconsistent (e.g. a cache
    /// capacity smaller than one way set).
    #[must_use]
    pub fn resolve(&self) -> SystemConfig {
        let mut vpu = match self.base {
            SystemKind::Native(n) => VpuConfig::native_x(n),
            SystemKind::Ava(n) => VpuConfig::ava_x(n),
            SystemKind::Rg(l) => VpuConfig::rg_lmul(l),
        };
        let mut kind = self.base;
        if let Some(mvl) = self.vpu.mvl {
            match self.base {
                SystemKind::Ava(_) => {
                    vpu = VpuConfig::ava_with_mvl(mvl);
                    // Table I extrapolation: hold the X8 physical-register
                    // floor, growing the P-VRF minimally past MVL = 128.
                    vpu.pvrf_bytes = (8 * 1024).max(mvl * 8 * AVA_EXTRAPOLATION_PREG_FLOOR);
                    kind = SystemKind::Ava(mvl / MIN_MVL_ELEMS);
                }
                SystemKind::Native(_) => {
                    // Table II rule: the VRF scales with the MVL, keeping 64
                    // physical registers.
                    vpu.mvl = mvl;
                    vpu.pvrf_bytes = 64 * mvl * 8;
                    vpu.name = format!("NATIVE MVL={mvl}");
                    kind = SystemKind::Native(mvl / MIN_MVL_ELEMS);
                }
                SystemKind::Rg(_) => unreachable!("with_mvl rejects RG bases"),
            }
        }
        if let Some(pvrf) = self.vpu.pvrf_bytes {
            vpu.pvrf_bytes = pvrf;
        }
        assert!(
            vpu.physical_regs() >= 1,
            "{}: the P-VRF must hold at least one register of {} elements",
            self.label,
            vpu.mvl
        );
        if let Some(vvrs) = self.vpu.vvr_count {
            vpu.vvr_count = vvrs;
        }
        if let Some(iq) = self.vpu.issue_queue_entries {
            vpu.arith_queue_entries = iq;
            vpu.mem_queue_entries = iq;
        }
        if let Some(rob) = self.vpu.rob_entries {
            vpu.rob_entries = rob;
        }
        if let Some(overhead) = self.vpu.mem_op_overhead {
            vpu.mem_op_overhead = overhead;
        }

        let mut memory = HierarchyConfig::default();
        if let Some(kib) = self.memory.l1_kib {
            memory.l1d.size_bytes = kib * 1024;
        }
        if let Some(lat) = self.memory.l1_hit_latency {
            memory.l1d.hit_latency = lat;
        }
        if let Some(kib) = self.memory.l2_kib {
            memory.l2.size_bytes = kib * 1024;
        }
        if let Some(lat) = self.memory.l2_hit_latency {
            memory.l2.hit_latency = lat;
        }
        if let Some(bpc) = self.memory.dram_bytes_per_cycle {
            memory.dram.bytes_per_cycle = bpc;
        }
        if let Some(bus) = self.memory.vmu_bus_bytes {
            memory.vmu_bus_bytes = bus;
        }
        for (cache, name) in [(&memory.l1d, "L1"), (&memory.l2, "L2")] {
            assert!(
                cache.size_bytes >= cache.line_bytes * cache.ways,
                "{}: {} capacity smaller than one full set",
                self.label,
                name
            );
        }

        SystemConfig {
            kind,
            label: self.label.clone(),
            axes: self.axes.clone(),
            vpu,
            scalar: ScalarConfig::default(),
            memory,
            compiler_lmul: self.compiler_lmul(),
        }
    }

    /// The axis metadata as an ordered JSON object (`{"mvl":256,...}`).
    #[must_use]
    pub fn axes_json(&self) -> Json {
        axes_to_json(&self.axes)
    }
}

/// Serialises recorded axes as an ordered JSON object.
pub(crate) fn axes_to_json(axes: &[Axis]) -> Json {
    let mut obj = object();
    for a in axes {
        obj = obj.field(a.name, a.value);
    }
    obj.finish()
}

/// The canonical configuration identity string used as the per-point key by
/// recorded-cost replay, duplicate-point rejection and the result store:
/// the display label extended with every recorded axis. The label alone is
/// *not* an identity — metadata axes like `iters` deliberately stay out of
/// it (solver sweeps at different depths keep comparable config names), yet
/// two such points simulate different work.
pub(crate) fn config_axes_key(label: &str, axes: &[Axis]) -> String {
    let mut key = String::from(label);
    key.push('|');
    for (i, a) in axes.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(a.name);
        key.push('=');
        key.push_str(&a.value.to_string());
    }
    key
}

/// The canonical workload identity string paired with [`config_axes_key`]
/// in the per-point key: the workload name extended with its element count.
/// The name alone is *not* an identity — one sweep may legitimately run the
/// same kernel at several problem sizes (the skewed-scheduling grids do),
/// and those points neither duplicate each other nor share a recorded cost.
pub(crate) fn workload_identity(name: &str, elements: u64) -> String {
    format!("{name}#{elements}")
}

/// Maps an axis name parsed back from JSON onto the `&'static str` the
/// in-memory [`Axis`] carries. Returns `None` for names no `with_*` override
/// produces — a store entry carrying one was written by different code and
/// must be treated as a miss.
pub(crate) fn axis_static_name(name: &str) -> Option<&'static str> {
    const KNOWN: &[&str] = &[
        "mvl",
        "pvrf_kib",
        "vvrs",
        "iq",
        "rob",
        "mem_op_overhead",
        "l1_kib",
        "l1_lat",
        "l2_kib",
        "l2_lat",
        "dram_bpc",
        "vmu_bus",
        "iters",
    ];
    KNOWN.iter().find(|&&k| k == name).copied()
}

/// Parses an axes object (`{"mvl":256,...}`, as written by [`axes_to_json`])
/// back into the in-memory representation, preserving order.
///
/// # Errors
///
/// Returns `Err` on a non-object, an unknown axis name or a non-integer
/// value.
pub(crate) fn axes_from_json(json: &Json) -> Result<Vec<Axis>, String> {
    let entries = match json {
        Json::Obj(entries) => entries,
        other => return Err(format!("axes must be an object, got {other}")),
    };
    entries
        .iter()
        .map(|(name, value)| {
            let name = axis_static_name(name)
                .ok_or_else(|| format!("unknown axis name {name:?} in stored axes"))?;
            let value = value
                .as_u64()
                .ok_or_else(|| format!("axis {name} has a non-integer value"))?;
            Ok(Axis { name, value })
        })
        .collect()
}

/// A fully resolved system: scalar core + VPU + memory hierarchy + the
/// compiler configuration used to build binaries for it, plus the scenario
/// metadata (label and axes) it was resolved from. Produced by
/// [`ScenarioConfig::resolve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Organisation and scale factor.
    pub kind: SystemKind,
    /// Scenario display label.
    pub label: String,
    /// Scenario override axes (empty for plain presets).
    pub axes: Vec<Axis>,
    /// VPU configuration.
    pub vpu: VpuConfig,
    /// Scalar-core configuration.
    pub scalar: ScalarConfig,
    /// Memory-hierarchy configuration.
    pub memory: HierarchyConfig,
    /// Register-grouping factor the compiler targets (LMUL>1 only for RG).
    pub compiler_lmul: Lmul,
}

impl SystemConfig {
    /// Short display label ("NATIVE X4", "AVA MVL=256 l2=512KiB", ...).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Maximum vector length in elements seen by software on this system.
    #[must_use]
    pub fn mvl(&self) -> usize {
        self.vpu.mvl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalences_of_table_iii_hold() {
        // AVA Xn and NATIVE Xn expose the same MVL; RG-LMULn matches NATIVE Xn.
        for n in [1usize, 2, 4, 8] {
            assert_eq!(
                ScenarioConfig::native_x(n).mvl(),
                ScenarioConfig::ava_x(n).mvl()
            );
        }
        assert_eq!(
            ScenarioConfig::rg_lmul(Lmul::M8).mvl(),
            ScenarioConfig::native_x(8).mvl()
        );
        assert_eq!(
            ScenarioConfig::rg_lmul(Lmul::M2).mvl(),
            ScenarioConfig::native_x(2).mvl()
        );
    }

    #[test]
    fn compiler_lmul_matches_the_base_organisation() {
        assert_eq!(ScenarioConfig::native_x(8).compiler_lmul(), Lmul::M1);
        assert_eq!(ScenarioConfig::ava_x(8).compiler_lmul(), Lmul::M1);
        assert_eq!(ScenarioConfig::rg_lmul(Lmul::M4).compiler_lmul(), Lmul::M4);
    }

    #[test]
    fn evaluated_set_has_fourteen_configurations() {
        let all = ScenarioConfig::all_evaluated();
        assert_eq!(all.len(), 5 + 4 + 5);
        let labels: Vec<&str> = all.iter().map(ScenarioConfig::label).collect();
        assert!(labels.contains(&"NATIVE X3"));
        assert!(labels.contains(&"RG-LMUL4"));
        assert!(labels.contains(&"AVA X8"));
    }

    #[test]
    fn only_ava_configurations_have_an_mvrf() {
        assert!(ScenarioConfig::ava_x(4).vpu_config().mvrf_bytes() > 0);
        assert_eq!(ScenarioConfig::native_x(4).vpu_config().mvrf_bytes(), 0);
        assert_eq!(
            ScenarioConfig::rg_lmul(Lmul::M4).vpu_config().mvrf_bytes(),
            0
        );
    }

    #[test]
    fn presets_resolve_to_the_paper_tables() {
        let native8 = ScenarioConfig::native_x(8).resolve();
        assert_eq!(native8.vpu.pvrf_bytes, 64 * 1024);
        assert_eq!(native8.vpu.physical_regs(), 64);
        let ava8 = ScenarioConfig::ava_x(8).resolve();
        assert_eq!(ava8.vpu.pvrf_bytes, 8 * 1024);
        assert_eq!(ava8.vpu.physical_regs(), 8);
        let rg8 = ScenarioConfig::rg_lmul(Lmul::M8).resolve();
        assert_eq!(rg8.vpu.logical_regs, 4);
        assert_eq!(rg8.compiler_lmul, Lmul::M8);
        // Presets carry no axis metadata and the default hierarchy.
        assert!(ava8.axes.is_empty());
        assert_eq!(ava8.memory, HierarchyConfig::default());
    }

    #[test]
    fn mvl_axis_extrapolates_table1_with_the_preg_floor() {
        let axis = ScenarioConfig::axis_mvl(&[64, 128, 256, 512]);
        let resolved: Vec<SystemConfig> = axis.iter().map(ScenarioConfig::resolve).collect();
        // Within Table I the 8 KB P-VRF is untouched.
        assert_eq!(resolved[0].vpu.pvrf_bytes, 8 * 1024);
        assert_eq!(resolved[0].vpu.physical_regs(), 16);
        assert_eq!(resolved[1].vpu.pvrf_bytes, 8 * 1024);
        assert_eq!(resolved[1].vpu.physical_regs(), 8);
        // Beyond it the P-VRF grows minimally to hold the X8 floor.
        assert_eq!(resolved[2].vpu.pvrf_bytes, 16 * 1024);
        assert_eq!(resolved[2].vpu.physical_regs(), 8);
        assert_eq!(resolved[3].vpu.pvrf_bytes, 32 * 1024);
        assert_eq!(resolved[3].vpu.physical_regs(), 8);
        assert_eq!(axis[3].label(), "AVA MVL=512");
        assert_eq!(
            axis[3].axes(),
            &[Axis {
                name: "mvl",
                value: 512
            }]
        );
    }

    #[test]
    fn axis_builders_cross_every_base_with_every_value() {
        let grid =
            ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(&[128, 256]), &[512, 1024, 4096]);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0].label(), "AVA MVL=128 l2=512KiB");
        assert_eq!(grid[5].label(), "AVA MVL=256 l2=4096KiB");
        assert_eq!(grid[5].resolve().memory.l2.size_bytes, 4096 * 1024);
        // Axis metadata lists both overrides in application order.
        assert_eq!(grid[5].axes().len(), 2);
        assert_eq!(grid[5].axes()[0].name, "mvl");
        assert_eq!(
            grid[5].axes()[1],
            Axis {
                name: "l2_kib",
                value: 4096
            }
        );
    }

    #[test]
    fn axis_vvr_sweeps_the_rename_pool_across_ava_bases() {
        let grid = ScenarioConfig::axis_vvr(&ScenarioConfig::axis_mvl(&[128, 256]), &[32, 64]);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].label(), "AVA MVL=128 vvrs=32");
        assert_eq!(grid[3].label(), "AVA MVL=256 vvrs=64");
        assert_eq!(grid[3].resolve().vpu.rename_pool(), 64);
        assert_eq!(
            grid[3].axes()[1],
            Axis {
                name: "vvrs",
                value: 64
            }
        );
    }

    #[test]
    fn hierarchy_overrides_resolve_into_the_config() {
        let s = ScenarioConfig::native_x(1)
            .with_l1_kib(64)
            .with_l1_latency(2)
            .with_l2_latency(20)
            .with_dram_bandwidth(24)
            .with_vmu_bus_bytes(128)
            .resolve();
        assert_eq!(s.memory.l1d.size_bytes, 64 * 1024);
        assert_eq!(s.memory.l1d.hit_latency, 2);
        assert_eq!(s.memory.l2.hit_latency, 20);
        assert_eq!(s.memory.dram.bytes_per_cycle, 24);
        assert_eq!(s.memory.vmu_bus_bytes, 128);
        assert_eq!(
            s.label(),
            "NATIVE X1 l1=64KiB l1lat=2 l2lat=20 dram=24B/c bus=128B"
        );
    }

    #[test]
    fn vpu_knob_overrides_resolve_into_the_config() {
        let s = ScenarioConfig::ava_x(8)
            .with_issue_queues(16)
            .with_rob_entries(128)
            .with_mem_op_overhead(0)
            .with_vvr_count(96)
            .resolve();
        assert_eq!(s.vpu.arith_queue_entries, 16);
        assert_eq!(s.vpu.mem_queue_entries, 16);
        assert_eq!(s.vpu.rob_entries, 128);
        assert_eq!(s.vpu.mem_op_overhead, 0);
        assert_eq!(s.vpu.rename_pool(), 96);
        assert_eq!(s.vpu.mvrf_bytes(), 96 * 128 * 8);
    }

    #[test]
    fn repeated_overrides_replace_the_axis_instead_of_duplicating() {
        let s = ScenarioConfig::ava_x(2).with_l2_kib(512).with_l2_kib(2048);
        assert_eq!(s.axes().len(), 1);
        assert_eq!(s.axes()[0].value, 2048);
        assert_eq!(s.label(), "AVA X2 l2=2048KiB");
    }

    #[test]
    fn explicit_pvrf_override_beats_the_extrapolation_rule() {
        let s = ScenarioConfig::ava_x(8).with_mvl(256).with_pvrf_kib(64);
        assert_eq!(s.resolve().vpu.physical_regs(), 32);
    }

    #[test]
    fn axes_json_is_an_ordered_object() {
        let s = ScenarioConfig::ava_x(8).with_mvl(256).with_l2_kib(512);
        assert_eq!(s.axes_json().to_string(), r#"{"mvl":256,"l2_kib":512}"#);
    }

    #[test]
    fn iters_axis_is_report_metadata_with_a_stable_label() {
        let base = ScenarioConfig::ava_x(8).with_mvl(256);
        let s = base.clone().with_iters(8);
        // Pure metadata: the label stays comparable across solver depths
        // and no hardware parameter moves...
        assert_eq!(s.label(), base.label());
        assert_eq!(s.resolve().vpu, base.resolve().vpu);
        // ...but the axis lands in the report JSON like any other knob.
        assert_eq!(s.axes_json().to_string(), r#"{"mvl":256,"iters":8}"#);
        let replaced = s.with_iters(16);
        assert_eq!(
            replaced
                .axes()
                .iter()
                .find(|a| a.name == "iters")
                .unwrap()
                .value,
            16
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iters_is_rejected_early() {
        let _ = ScenarioConfig::ava_x(8).with_iters(0);
    }

    #[test]
    #[should_panic(expected = "fixed by its LMUL")]
    fn rg_bases_reject_the_mvl_override() {
        let _ = ScenarioConfig::rg_lmul(Lmul::M4).with_mvl(256);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn unsupported_mvl_is_rejected_early() {
        let _ = ScenarioConfig::ava_x(1).with_mvl(100);
    }

    #[test]
    fn minimum_cache_sizes_still_resolve() {
        // 1 KiB is exactly one 16-way set of 64 B lines — the smallest L2
        // the KiB-granular API can express resolves to a valid cache.
        let s = ScenarioConfig::native_x(1).with_l2_kib(1).resolve();
        assert_eq!(s.memory.l2.sets(), 1);
    }
}
