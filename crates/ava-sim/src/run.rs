//! Running one workload on one system configuration.

use std::sync::Arc;

use ava_compiler::{compile, CompileOptions, CompiledKernel, IrKernel};
use ava_isa::VectorContext;
use ava_memory::{MemoryHierarchy, MemoryStats};
use ava_scalar::{ScalarCore, ScalarCost};
use ava_vpu::{Vpu, VpuStats};
use ava_workloads::{validate, ArenaPlanner, BufferBindings, Workload};

use crate::configs::{axes_to_json, Axis, ScenarioConfig, SystemConfig};
use crate::json::{object, Json};

/// Cycle/memory breakdown of one phase of a multi-kernel workload: the
/// delta of every counter across the phase's segment of the compiled
/// program. Phases run back to back on one VPU instance, so the per-phase
/// numbers partition the run's totals exactly.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Phase display name ("0:axpy" for pipeline stages, "it3:somier" for
    /// unrolled solver iterations).
    pub name: String,
    /// Iteration index when the phase is one unrolled iteration of an
    /// iterated composite (`None` for ordinary pipeline stages). Lets
    /// downstream consumers group per-iteration cycle/memory/energy
    /// breakdowns without parsing display names.
    pub iter: Option<usize>,
    /// VPU cycles attributed to the phase's program segment.
    pub vpu_cycles: u64,
    /// VPU instruction/event counters of the segment.
    pub vpu: VpuStats,
    /// Memory-system counters of the segment.
    pub mem: MemoryStats,
}

/// Everything measured from one (workload, system) simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario label ("AVA X4", "AVA MVL=256 l2=512KiB", ...).
    pub config: String,
    /// Scenario override axes the system was resolved from (empty for the
    /// paper's preset configurations).
    pub axes: Vec<Axis>,
    /// Workload name ("axpy", ...).
    pub workload: String,
    /// VPU cycles from first dispatch to last commit.
    pub vpu_cycles: u64,
    /// Total kernel cycles including the scalar-core floor.
    pub cycles: u64,
    /// VPU instruction/event counters (includes swap operations).
    pub vpu: VpuStats,
    /// Memory-system counters.
    pub mem: MemoryStats,
    /// Per-phase cycle/memory breakdowns (multi-kernel workloads only;
    /// empty for single-kernel runs).
    pub phases: Vec<PhaseBreakdown>,
    /// Compiler-inserted spill stores in the binary.
    pub compiler_spill_stores: usize,
    /// Compiler-inserted spill reloads in the binary.
    pub compiler_spill_loads: usize,
    /// Register pressure of the source kernel.
    pub register_pressure: usize,
    /// Scalar-core cost of the stripmined loop.
    pub scalar: ScalarCost,
    /// Whether every output check matched the golden reference.
    pub validated: bool,
    /// First validation error, if any.
    pub validation_error: Option<String>,
}

impl RunReport {
    /// Execution time in seconds at the 1 GHz VPU clock.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / 1e9
    }

    /// Total vector memory instructions executed, including compiler spill
    /// code and AVA swap operations (Figure 3, first column).
    #[must_use]
    pub fn memory_instructions(&self) -> u64 {
        self.vpu.memory_instrs()
    }

    /// The machine-readable form of the report: every counter of the run,
    /// grouped exactly like the struct (`vpu`, `mem`, `scalar` sub-objects,
    /// plus a `phases` array for multi-kernel runs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = object()
            .field("config", self.config.as_str())
            .field("workload", self.workload.as_str())
            .field("axes", axes_to_json(&self.axes))
            .field("cycles", self.cycles)
            .field("vpu_cycles", self.vpu_cycles)
            .field("validated", self.validated)
            .field("validation_error", self.validation_error.as_deref())
            .field("register_pressure", self.register_pressure)
            .field("compiler_spill_loads", self.compiler_spill_loads)
            .field("compiler_spill_stores", self.compiler_spill_stores)
            .field("vpu", vpu_stats_json(&self.vpu))
            .field("mem", mem_stats_json(&self.mem))
            .field(
                "scalar",
                object()
                    .field("instructions", self.scalar.instructions)
                    .field("scalar_cycles", self.scalar.scalar_cycles)
                    .field("vpu_cycles", self.scalar.vpu_cycles)
                    .finish(),
            );
        if !self.phases.is_empty() {
            obj = obj.field(
                "phases",
                self.phases
                    .iter()
                    .map(|p| {
                        let mut phase = object().field("name", p.name.as_str());
                        // Iteration grouping: unrolled solver iterations
                        // carry the iteration index and the bare phase
                        // label so consumers can aggregate per iteration.
                        if let Some(it) = p.iter {
                            phase = phase.field("iter", it).field(
                                "phase",
                                p.name.split_once(':').map_or(p.name.as_str(), |(_, n)| n),
                            );
                        }
                        phase
                            .field("vpu_cycles", p.vpu_cycles)
                            .field("vpu", vpu_stats_json(&p.vpu))
                            .field("mem", mem_stats_json(&p.mem))
                            .finish()
                    })
                    .collect::<Json>(),
            );
        }
        obj.finish()
    }
}

/// The VPU counter block shared by the run-level and per-phase JSON.
fn vpu_stats_json(s: &VpuStats) -> Json {
    object()
        .field("arith_instrs", s.arith_instrs)
        .field("vloads", s.vloads)
        .field("vstores", s.vstores)
        .field("spill_loads", s.spill_loads)
        .field("spill_stores", s.spill_stores)
        .field("swap_loads", s.swap_loads)
        .field("swap_stores", s.swap_stores)
        .field("config_instrs", s.config_instrs)
        .field("aggressive_reclaims", s.aggressive_reclaims)
        .field("rename_stall_cycles", s.rename_stall_cycles)
        .field("queue_stall_cycles", s.queue_stall_cycles)
        .field("vrf_read_elems", s.vrf_read_elems)
        .field("vrf_write_elems", s.vrf_write_elems)
        .field("fpu_ops", s.fpu_ops)
        .field("int_ops", s.int_ops)
        .field("arith_busy_cycles", s.arith_busy_cycles)
        .field("mem_busy_cycles", s.mem_busy_cycles)
        .field("memory_instrs", s.memory_instrs())
        .field("memory_fraction", s.memory_fraction())
        .finish()
}

/// The memory counter block shared by the run-level and per-phase JSON.
fn mem_stats_json(m: &MemoryStats) -> Json {
    let cache = |c: &ava_memory::CacheStats| {
        object()
            .field("read_hits", c.read_hits)
            .field("read_misses", c.read_misses)
            .field("write_hits", c.write_hits)
            .field("write_misses", c.write_misses)
            .field("writebacks", c.writebacks)
            .finish()
    };
    object()
        .field("l1d", cache(&m.l1d))
        .field("l2", cache(&m.l2))
        .field("dram_accesses", m.dram_accesses)
        .field("dram_bytes", m.dram_bytes)
        .field("vmu_bytes", m.vmu_bytes)
        .field("vector_requests", m.vector_requests)
        .finish()
}

/// Runs `workload` on the given scenario and reports cycles, statistics and
/// correctness.
///
/// # Panics
///
/// Panics if the workload produces a program that cannot be renamed (which
/// would indicate a bug in the code generator rather than a user error).
#[must_use]
pub fn run_workload(workload: &dyn Workload, scenario: &ScenarioConfig) -> RunReport {
    run_system(workload, &scenario.resolve())
}

/// Runs `workload` on an already-resolved [`SystemConfig`] (what
/// [`run_workload`] does after resolution; useful when the caller keeps
/// resolved systems around, as the sweep engine does).
#[must_use]
pub fn run_system(workload: &dyn Workload, system: &SystemConfig) -> RunReport {
    run_workload_via(workload, system, &|kernel, opts| {
        Arc::new(compile(kernel, opts))
    })
}

/// The compilation hook used by the sweep engine: given the kernel IR and
/// options, return the compiled kernel (freshly built or from a cache).
pub(crate) type CompileFn<'a> =
    &'a (dyn Fn(&IrKernel, &CompileOptions) -> Arc<CompiledKernel> + Sync);

/// The full run pipeline with an injectable compilation step. `run_workload`
/// passes a plain [`compile`]; [`crate::sweep`] passes a shared program
/// cache. Because [`compile`] is deterministic, both paths produce
/// bit-identical reports.
pub(crate) fn run_workload_via(
    workload: &dyn Workload,
    system: &SystemConfig,
    compile_fn: CompileFn<'_>,
) -> RunReport {
    let mut mem = MemoryHierarchy::new(system.memory);

    // 1. Planning step of the two-step workload protocol: the application
    //    declares its named input/output buffers and the shared planner
    //    places them. The vectorising compiler then sees the system's
    //    maximum vector length while the workload generates data + IR +
    //    golden reference against the planned layout (no external bindings
    //    here — pipelined composites bind phase to phase internally).
    let ctx = VectorContext::with_mvl(system.mvl());
    let plan = ArenaPlanner::new().plan(&mut mem, &workload.data_layout());
    let setup = workload.build_with_bindings(&mut mem, &ctx, &plan, &BufferBindings::none());

    // 2. Register allocation against the architectural budget (32 registers,
    //    or 32/LMUL under register grouping); spill slots live on the stack
    //    and are one full MVL wide. The arena is allocated directly above
    //    the application data so `spill_base` — a compile input and part of
    //    the sweep's compile-cache key — depends only on the workload and
    //    the MVL, letting NATIVE/AVA configurations of equal MVL share one
    //    compilation.
    let spill_slot_bytes = (system.mvl() * 8) as u64;
    let spill_base = mem.allocate(64 * spill_slot_bytes);
    let (_, arena_end) = mem.memory().allocated_range();
    let compiled = compile_fn(
        &setup.kernel,
        &CompileOptions::new(system.compiler_lmul, spill_base, spill_slot_bytes),
    );

    // 3. The VPU reserves its M-VRF backing store above the arena (AVA
    //    only); like the application data it belongs to the measured
    //    working set.
    let mut vpu = Vpu::new(system.vpu.clone(), &mut mem);
    let (_, mvrf_end) = mem.memory().allocated_range();

    // 4. Cycle-level + functional simulation on the VPU. The caches are
    //    warmed over the working set: the planner-derived buffer ranges the
    //    run actually touches (dead placeholder inputs of pipelined
    //    composites stay cold) and the M-VRF — but *not* the spill arena:
    //    it is not application data, and at long MVLs (64 slots × MVL ×
    //    8 B) warming it would evict the real working set from small L2
    //    configurations before the run starts.
    let mut warm = setup.warm_ranges.clone();
    warm.push((arena_end, mvrf_end));
    mem.warm_caches_ranges(&warm);

    // Multi-kernel setups run the compiled program as per-phase segments on
    // the same VPU instance — observationally identical to one continuous
    // run, but every phase's cycle/memory counters are recorded as a delta.
    let mut phases = Vec::new();
    let result = if setup.phase_marks.len() > 1 {
        let mut cycles = 0;
        let mut stats = ava_vpu::VpuStats::default();
        let mut program_start = 0;
        let mut config_name = String::new();
        let mut mem_before = mem.stats();
        for (i, mark) in setup.phase_marks.iter().enumerate() {
            // The last phase always runs to the end of the program, so any
            // trailing compiler-inserted code is attributed to it.
            let program_end = if i + 1 == setup.phase_marks.len() {
                compiled.program.len()
            } else {
                compiled.program_split(mark.ir_end)
            };
            let seg = vpu.run_range(&compiled.program, program_start..program_end, &mut mem);
            let mem_now = mem.stats();
            phases.push(PhaseBreakdown {
                name: mark.name.clone(),
                iter: mark.iter,
                vpu_cycles: seg.cycles,
                vpu: seg.stats,
                mem: mem_now.delta_since(&mem_before),
            });
            mem_before = mem_now;
            cycles += seg.cycles;
            stats.merge(&seg.stats);
            config_name = seg.config_name;
            program_start = program_end;
        }
        ava_vpu::VpuRunResult {
            config_name,
            cycles,
            stats,
        }
    } else {
        vpu.run(&compiled.program, &mut mem)
    };

    // 5. Scalar-core floor for the stripmined loop.
    let scalar_core = ScalarCore::new(system.scalar);
    let scalar = scalar_core.loop_cost(setup.strips, compiled.program.len() as u64);
    let cycles = scalar_core.combine(result.cycles, &scalar);

    // 6. Validation against the golden reference — chained across phases
    //    for pipelined composites (a consumed intermediate buffer is only
    //    checked through the downstream phase's reference).
    let validation = validate(&mem, &setup.checks);

    RunReport {
        config: system.label().to_string(),
        axes: system.axes.clone(),
        workload: workload.name().to_string(),
        vpu_cycles: result.cycles,
        cycles,
        vpu: result.stats,
        mem: mem.stats(),
        phases,
        compiler_spill_stores: compiled.spill_stores,
        compiler_spill_loads: compiled.spill_loads,
        register_pressure: compiled.max_pressure,
        scalar,
        validated: validation.is_ok(),
        validation_error: validation.err(),
    }
}

/// Convenience wrapper: runs every provided scenario on the same workload
/// and returns the reports in the same order.
#[must_use]
pub fn run_workload_sized(workload: &dyn Workload, scenarios: &[ScenarioConfig]) -> Vec<RunReport> {
    scenarios
        .iter()
        .map(|s| run_workload(workload, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::{Axpy, Blackscholes, Somier};

    use crate::configs::ScenarioConfig;

    #[test]
    fn axpy_runs_validated_on_every_organisation() {
        let w = Axpy::new(256);
        for sys in [
            ScenarioConfig::native_x(1),
            ScenarioConfig::ava_x(8),
            ScenarioConfig::rg_lmul(Lmul::M8),
        ] {
            let r = run_workload(&w, &sys);
            assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
            assert!(r.cycles > 0);
            assert_eq!(r.compiler_spill_stores, 0, "axpy never spills");
            assert_eq!(r.vpu.swap_ops(), 0, "axpy never swaps");
        }
    }

    #[test]
    fn longer_native_configurations_speed_up_axpy() {
        let w = Axpy::new(2048);
        let x1 = run_workload(&w, &ScenarioConfig::native_x(1));
        let x8 = run_workload(&w, &ScenarioConfig::native_x(8));
        let speedup = x1.cycles as f64 / x8.cycles as f64;
        assert!(
            speedup > 1.4,
            "NATIVE X8 should be clearly faster, got {speedup}"
        );
    }

    #[test]
    fn rg_lmul8_spills_blackscholes_but_ava_x2_does_not_swap() {
        let w = Blackscholes::new(128);
        let rg = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg.validated, "{:?}", rg.validation_error);
        assert!(
            rg.compiler_spill_stores > 0,
            "23-ish live values cannot fit 4 registers"
        );

        let ava2 = run_workload(&w, &ScenarioConfig::ava_x(2));
        assert!(ava2.validated, "{:?}", ava2.validation_error);
        assert_eq!(ava2.vpu.swap_ops(), 0, "32 physical registers suffice");
        assert_eq!(
            ava2.compiler_spill_stores, 0,
            "AVA keeps all 32 architectural registers"
        );
    }

    #[test]
    fn somier_only_breaks_down_at_the_largest_grouping() {
        let w = Somier::new(512);
        let rg4 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M4));
        let rg8 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg4.validated && rg8.validated);
        assert_eq!(rg4.compiler_spill_stores, 0);
        assert!(rg8.compiler_spill_stores > 0);
    }

    #[test]
    fn report_memory_instruction_accounting_is_consistent() {
        let w = Blackscholes::new(128);
        let r = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert_eq!(
            r.vpu.spill_loads as usize + r.vpu.spill_stores as usize,
            r.compiler_spill_loads + r.compiler_spill_stores,
            "executed spill operations must match what the compiler emitted"
        );
        assert!(r.memory_instructions() >= r.vpu.vloads + r.vpu.vstores);
    }
}
