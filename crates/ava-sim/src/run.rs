//! Running one workload on one system configuration.

use std::sync::Arc;

use ava_compiler::{compile, CompileOptions, CompiledKernel, IrKernel};
use ava_isa::VectorContext;
use ava_memory::{MemoryHierarchy, MemoryStats};
use ava_scalar::{ScalarCore, ScalarCost};
use ava_vpu::{Vpu, VpuStats};
use ava_workloads::{validate, Workload};

use crate::configs::{axes_to_json, Axis, ScenarioConfig, SystemConfig};
use crate::json::{object, Json};

/// Everything measured from one (workload, system) simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario label ("AVA X4", "AVA MVL=256 l2=512KiB", ...).
    pub config: String,
    /// Scenario override axes the system was resolved from (empty for the
    /// paper's preset configurations).
    pub axes: Vec<Axis>,
    /// Workload name ("axpy", ...).
    pub workload: String,
    /// VPU cycles from first dispatch to last commit.
    pub vpu_cycles: u64,
    /// Total kernel cycles including the scalar-core floor.
    pub cycles: u64,
    /// VPU instruction/event counters (includes swap operations).
    pub vpu: VpuStats,
    /// Memory-system counters.
    pub mem: MemoryStats,
    /// Compiler-inserted spill stores in the binary.
    pub compiler_spill_stores: usize,
    /// Compiler-inserted spill reloads in the binary.
    pub compiler_spill_loads: usize,
    /// Register pressure of the source kernel.
    pub register_pressure: usize,
    /// Scalar-core cost of the stripmined loop.
    pub scalar: ScalarCost,
    /// Whether every output check matched the golden reference.
    pub validated: bool,
    /// First validation error, if any.
    pub validation_error: Option<String>,
}

impl RunReport {
    /// Execution time in seconds at the 1 GHz VPU clock.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / 1e9
    }

    /// Total vector memory instructions executed, including compiler spill
    /// code and AVA swap operations (Figure 3, first column).
    #[must_use]
    pub fn memory_instructions(&self) -> u64 {
        self.vpu.memory_instrs()
    }

    /// The machine-readable form of the report: every counter of the run,
    /// grouped exactly like the struct (`vpu`, `mem`, `scalar` sub-objects).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let cache = |c: &ava_memory::CacheStats| {
            object()
                .field("read_hits", c.read_hits)
                .field("read_misses", c.read_misses)
                .field("write_hits", c.write_hits)
                .field("write_misses", c.write_misses)
                .field("writebacks", c.writebacks)
                .finish()
        };
        object()
            .field("config", self.config.as_str())
            .field("workload", self.workload.as_str())
            .field("axes", axes_to_json(&self.axes))
            .field("cycles", self.cycles)
            .field("vpu_cycles", self.vpu_cycles)
            .field("validated", self.validated)
            .field("validation_error", self.validation_error.as_deref())
            .field("register_pressure", self.register_pressure)
            .field("compiler_spill_loads", self.compiler_spill_loads)
            .field("compiler_spill_stores", self.compiler_spill_stores)
            .field(
                "vpu",
                object()
                    .field("arith_instrs", self.vpu.arith_instrs)
                    .field("vloads", self.vpu.vloads)
                    .field("vstores", self.vpu.vstores)
                    .field("spill_loads", self.vpu.spill_loads)
                    .field("spill_stores", self.vpu.spill_stores)
                    .field("swap_loads", self.vpu.swap_loads)
                    .field("swap_stores", self.vpu.swap_stores)
                    .field("config_instrs", self.vpu.config_instrs)
                    .field("aggressive_reclaims", self.vpu.aggressive_reclaims)
                    .field("rename_stall_cycles", self.vpu.rename_stall_cycles)
                    .field("queue_stall_cycles", self.vpu.queue_stall_cycles)
                    .field("vrf_read_elems", self.vpu.vrf_read_elems)
                    .field("vrf_write_elems", self.vpu.vrf_write_elems)
                    .field("fpu_ops", self.vpu.fpu_ops)
                    .field("int_ops", self.vpu.int_ops)
                    .field("arith_busy_cycles", self.vpu.arith_busy_cycles)
                    .field("mem_busy_cycles", self.vpu.mem_busy_cycles)
                    .field("memory_instrs", self.vpu.memory_instrs())
                    .field("memory_fraction", self.vpu.memory_fraction())
                    .finish(),
            )
            .field(
                "mem",
                object()
                    .field("l1d", cache(&self.mem.l1d))
                    .field("l2", cache(&self.mem.l2))
                    .field("dram_accesses", self.mem.dram_accesses)
                    .field("dram_bytes", self.mem.dram_bytes)
                    .field("vmu_bytes", self.mem.vmu_bytes)
                    .field("vector_requests", self.mem.vector_requests)
                    .finish(),
            )
            .field(
                "scalar",
                object()
                    .field("instructions", self.scalar.instructions)
                    .field("scalar_cycles", self.scalar.scalar_cycles)
                    .field("vpu_cycles", self.scalar.vpu_cycles)
                    .finish(),
            )
            .finish()
    }
}

/// Runs `workload` on the given scenario and reports cycles, statistics and
/// correctness.
///
/// # Panics
///
/// Panics if the workload produces a program that cannot be renamed (which
/// would indicate a bug in the code generator rather than a user error).
#[must_use]
pub fn run_workload(workload: &dyn Workload, scenario: &ScenarioConfig) -> RunReport {
    run_system(workload, &scenario.resolve())
}

/// Runs `workload` on an already-resolved [`SystemConfig`] (what
/// [`run_workload`] does after resolution; useful when the caller keeps
/// resolved systems around, as the sweep engine does).
#[must_use]
pub fn run_system(workload: &dyn Workload, system: &SystemConfig) -> RunReport {
    run_workload_via(workload, system, &|kernel, opts| {
        Arc::new(compile(kernel, opts))
    })
}

/// The compilation hook used by the sweep engine: given the kernel IR and
/// options, return the compiled kernel (freshly built or from a cache).
pub(crate) type CompileFn<'a> =
    &'a (dyn Fn(&IrKernel, &CompileOptions) -> Arc<CompiledKernel> + Sync);

/// The full run pipeline with an injectable compilation step. `run_workload`
/// passes a plain [`compile`]; [`crate::sweep`] passes a shared program
/// cache. Because [`compile`] is deterministic, both paths produce
/// bit-identical reports.
pub(crate) fn run_workload_via(
    workload: &dyn Workload,
    system: &SystemConfig,
    compile_fn: CompileFn<'_>,
) -> RunReport {
    let mut mem = MemoryHierarchy::new(system.memory);

    // 1. The application allocates and initialises its data, and the
    //    vectorising compiler sees the system's maximum vector length.
    let ctx = VectorContext::with_mvl(system.mvl());
    let setup = workload.build(&mut mem, &ctx);

    // 2. Register allocation against the architectural budget (32 registers,
    //    or 32/LMUL under register grouping); spill slots live on the stack
    //    and are one full MVL wide. The arena is allocated directly above
    //    the application data so `spill_base` — a compile input and part of
    //    the sweep's compile-cache key — depends only on the workload and
    //    the MVL, letting NATIVE/AVA configurations of equal MVL share one
    //    compilation.
    let (data_start, data_end) = mem.memory().allocated_range();
    let spill_slot_bytes = (system.mvl() * 8) as u64;
    let spill_base = mem.allocate(64 * spill_slot_bytes);
    let (_, arena_end) = mem.memory().allocated_range();
    let compiled = compile_fn(
        &setup.kernel,
        &CompileOptions::new(system.compiler_lmul, spill_base, spill_slot_bytes),
    );

    // 3. The VPU reserves its M-VRF backing store above the arena (AVA
    //    only); like the application data it belongs to the measured
    //    working set.
    let mut vpu = Vpu::new(system.vpu.clone(), &mut mem);
    let (_, mvrf_end) = mem.memory().allocated_range();

    // 4. Cycle-level + functional simulation on the VPU. The caches are
    //    warmed over the working set — the application data and the M-VRF,
    //    but *not* the spill arena: it is not application data, and at long
    //    MVLs (64 slots × MVL × 8 B) warming it would evict the real
    //    working set from small L2 configurations before the run starts.
    mem.warm_caches_range(data_start, data_end);
    mem.warm_caches_range(arena_end, mvrf_end);
    let result = vpu.run(&compiled.program, &mut mem);

    // 5. Scalar-core floor for the stripmined loop.
    let scalar_core = ScalarCore::new(system.scalar);
    let scalar = scalar_core.loop_cost(setup.strips, compiled.program.len() as u64);
    let cycles = scalar_core.combine(result.cycles, &scalar);

    // 6. Validation against the golden reference.
    let validation = validate(&mem, &setup.checks);

    RunReport {
        config: system.label().to_string(),
        axes: system.axes.clone(),
        workload: workload.name().to_string(),
        vpu_cycles: result.cycles,
        cycles,
        vpu: result.stats,
        mem: mem.stats(),
        compiler_spill_stores: compiled.spill_stores,
        compiler_spill_loads: compiled.spill_loads,
        register_pressure: compiled.max_pressure,
        scalar,
        validated: validation.is_ok(),
        validation_error: validation.err(),
    }
}

/// Convenience wrapper: runs every provided scenario on the same workload
/// and returns the reports in the same order.
#[must_use]
pub fn run_workload_sized(workload: &dyn Workload, scenarios: &[ScenarioConfig]) -> Vec<RunReport> {
    scenarios
        .iter()
        .map(|s| run_workload(workload, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::{Axpy, Blackscholes, Somier};

    use crate::configs::ScenarioConfig;

    #[test]
    fn axpy_runs_validated_on_every_organisation() {
        let w = Axpy::new(256);
        for sys in [
            ScenarioConfig::native_x(1),
            ScenarioConfig::ava_x(8),
            ScenarioConfig::rg_lmul(Lmul::M8),
        ] {
            let r = run_workload(&w, &sys);
            assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
            assert!(r.cycles > 0);
            assert_eq!(r.compiler_spill_stores, 0, "axpy never spills");
            assert_eq!(r.vpu.swap_ops(), 0, "axpy never swaps");
        }
    }

    #[test]
    fn longer_native_configurations_speed_up_axpy() {
        let w = Axpy::new(2048);
        let x1 = run_workload(&w, &ScenarioConfig::native_x(1));
        let x8 = run_workload(&w, &ScenarioConfig::native_x(8));
        let speedup = x1.cycles as f64 / x8.cycles as f64;
        assert!(
            speedup > 1.4,
            "NATIVE X8 should be clearly faster, got {speedup}"
        );
    }

    #[test]
    fn rg_lmul8_spills_blackscholes_but_ava_x2_does_not_swap() {
        let w = Blackscholes::new(128);
        let rg = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg.validated, "{:?}", rg.validation_error);
        assert!(
            rg.compiler_spill_stores > 0,
            "23-ish live values cannot fit 4 registers"
        );

        let ava2 = run_workload(&w, &ScenarioConfig::ava_x(2));
        assert!(ava2.validated, "{:?}", ava2.validation_error);
        assert_eq!(ava2.vpu.swap_ops(), 0, "32 physical registers suffice");
        assert_eq!(
            ava2.compiler_spill_stores, 0,
            "AVA keeps all 32 architectural registers"
        );
    }

    #[test]
    fn somier_only_breaks_down_at_the_largest_grouping() {
        let w = Somier::new(512);
        let rg4 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M4));
        let rg8 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg4.validated && rg8.validated);
        assert_eq!(rg4.compiler_spill_stores, 0);
        assert!(rg8.compiler_spill_stores > 0);
    }

    #[test]
    fn report_memory_instruction_accounting_is_consistent() {
        let w = Blackscholes::new(128);
        let r = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert_eq!(
            r.vpu.spill_loads as usize + r.vpu.spill_stores as usize,
            r.compiler_spill_loads + r.compiler_spill_stores,
            "executed spill operations must match what the compiler emitted"
        );
        assert!(r.memory_instructions() >= r.vpu.vloads + r.vpu.vstores);
    }
}
