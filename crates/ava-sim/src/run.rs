//! Running one workload on one system configuration.

use std::sync::Arc;
use std::time::Instant;

use ava_compiler::{compile, CompileOptions, CompiledKernel, IrKernel};
use ava_isa::VectorContext;
use ava_memory::{CacheStats, MemoryHierarchy, MemoryStats};
use ava_scalar::{ScalarCore, ScalarCost};
use ava_vpu::{Vpu, VpuStats};
use ava_workloads::{validate, ArenaPlanner, BufferBindings, Fingerprint, Workload};

use crate::configs::{axes_from_json, axes_to_json, Axis, ScenarioConfig, SystemConfig};
use crate::json::{object, Json};
use crate::store::{ResultStore, StoreKey};

/// Cycle/memory breakdown of one phase of a multi-kernel workload: the
/// delta of every counter across the phase's segment of the compiled
/// program. Phases run back to back on one VPU instance, so the per-phase
/// numbers partition the run's totals exactly.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Phase display name ("0:axpy" for pipeline stages, "it3:somier" for
    /// unrolled solver iterations).
    pub name: String,
    /// Iteration index when the phase is one unrolled iteration of an
    /// iterated composite (`None` for ordinary pipeline stages). Lets
    /// downstream consumers group per-iteration cycle/memory/energy
    /// breakdowns without parsing display names.
    pub iter: Option<usize>,
    /// VPU cycles attributed to the phase's program segment.
    pub vpu_cycles: u64,
    /// VPU instruction/event counters of the segment.
    pub vpu: VpuStats,
    /// Memory-system counters of the segment.
    pub mem: MemoryStats,
}

/// Everything measured from one (workload, system) simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario label ("AVA X4", "AVA MVL=256 l2=512KiB", ...).
    pub config: String,
    /// Scenario override axes the system was resolved from (empty for the
    /// paper's preset configurations).
    pub axes: Vec<Axis>,
    /// Workload name ("axpy", ...).
    pub workload: String,
    /// VPU cycles from first dispatch to last commit.
    pub vpu_cycles: u64,
    /// Total kernel cycles including the scalar-core floor.
    pub cycles: u64,
    /// VPU instruction/event counters (includes swap operations).
    pub vpu: VpuStats,
    /// Memory-system counters.
    pub mem: MemoryStats,
    /// Per-phase cycle/memory breakdowns (multi-kernel workloads only;
    /// empty for single-kernel runs).
    pub phases: Vec<PhaseBreakdown>,
    /// Compiler-inserted spill stores in the binary.
    pub compiler_spill_stores: usize,
    /// Compiler-inserted spill reloads in the binary.
    pub compiler_spill_loads: usize,
    /// Register pressure of the source kernel.
    pub register_pressure: usize,
    /// Scalar-core cost of the stripmined loop.
    pub scalar: ScalarCost,
    /// Whether every output check matched the golden reference.
    pub validated: bool,
    /// First validation error, if any.
    pub validation_error: Option<String>,
}

impl RunReport {
    /// Execution time in seconds at the 1 GHz VPU clock.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / 1e9
    }

    /// Total vector memory instructions executed, including compiler spill
    /// code and AVA swap operations (Figure 3, first column).
    #[must_use]
    pub fn memory_instructions(&self) -> u64 {
        self.vpu.memory_instrs()
    }

    /// The machine-readable form of the report: every counter of the run,
    /// grouped exactly like the struct (`vpu`, `mem`, `scalar` sub-objects,
    /// plus a `phases` array for multi-kernel runs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = object()
            .field("config", self.config.as_str())
            .field("workload", self.workload.as_str())
            .field("axes", axes_to_json(&self.axes))
            .field("cycles", self.cycles)
            .field("vpu_cycles", self.vpu_cycles)
            .field("validated", self.validated)
            .field("validation_error", self.validation_error.as_deref())
            .field("register_pressure", self.register_pressure)
            .field("compiler_spill_loads", self.compiler_spill_loads)
            .field("compiler_spill_stores", self.compiler_spill_stores)
            .field("vpu", vpu_stats_json(&self.vpu))
            .field("mem", mem_stats_json(&self.mem))
            .field(
                "scalar",
                object()
                    .field("instructions", self.scalar.instructions)
                    .field("scalar_cycles", self.scalar.scalar_cycles)
                    .field("vpu_cycles", self.scalar.vpu_cycles)
                    .finish(),
            );
        if !self.phases.is_empty() {
            obj = obj.field(
                "phases",
                self.phases
                    .iter()
                    .map(|p| {
                        let mut phase = object().field("name", p.name.as_str());
                        // Iteration grouping: unrolled solver iterations
                        // carry the iteration index and the bare phase
                        // label so consumers can aggregate per iteration.
                        if let Some(it) = p.iter {
                            phase = phase.field("iter", it).field(
                                "phase",
                                p.name.split_once(':').map_or(p.name.as_str(), |(_, n)| n),
                            );
                        }
                        phase
                            .field("vpu_cycles", p.vpu_cycles)
                            .field("vpu", vpu_stats_json(&p.vpu))
                            .field("mem", mem_stats_json(&p.mem))
                            .finish()
                    })
                    .collect::<Json>(),
            );
        }
        obj.finish()
    }

    /// Parses a report back from the document [`RunReport::to_json`] emits —
    /// the read half of the result store. Every stored counter is integral
    /// (or a string/bool), so the round trip is exact: a parsed report is
    /// bit-identical to the one that was serialized. Derived fields the
    /// emitter adds for human consumers (`memory_instrs`, `memory_fraction`,
    /// the bare per-phase `phase` label) are recomputed, not stored.
    ///
    /// # Errors
    ///
    /// Returns `Err` naming the first missing or ill-typed field; the store
    /// turns any such error into a plain cache miss.
    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        let scalar = field(json, "scalar")?;
        let phases = match json.get("phases") {
            None => Vec::new(),
            Some(p) => p
                .as_arr()
                .ok_or_else(|| "phases is not an array".to_string())?
                .iter()
                .map(phase_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let validation_error = match json.get("validation_error") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(other) => return Err(format!("validation_error is not a string: {other}")),
        };
        Ok(RunReport {
            config: get_str(json, "config")?,
            axes: axes_from_json(field(json, "axes")?)?,
            workload: get_str(json, "workload")?,
            vpu_cycles: get_u64(json, "vpu_cycles")?,
            cycles: get_u64(json, "cycles")?,
            vpu: vpu_stats_from_json(field(json, "vpu")?)?,
            mem: mem_stats_from_json(field(json, "mem")?)?,
            phases,
            compiler_spill_stores: get_usize(json, "compiler_spill_stores")?,
            compiler_spill_loads: get_usize(json, "compiler_spill_loads")?,
            register_pressure: get_usize(json, "register_pressure")?,
            scalar: ScalarCost {
                instructions: get_u64(scalar, "instructions")?,
                scalar_cycles: get_u64(scalar, "scalar_cycles")?,
                vpu_cycles: get_u64(scalar, "vpu_cycles")?,
            },
            validated: get_bool(json, "validated")?,
            validation_error,
        })
    }
}

fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(json: &Json, key: &str) -> Result<u64, String> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn get_usize(json: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(json, key)?).map_err(|_| format!("field {key:?} overflows usize"))
}

fn get_str(json: &Json, key: &str) -> Result<String, String> {
    Ok(field(json, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_string())
}

fn get_bool(json: &Json, key: &str) -> Result<bool, String> {
    field(json, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a boolean"))
}

fn phase_from_json(json: &Json) -> Result<PhaseBreakdown, String> {
    let iter = match json.get("iter") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| "phase iter is not an unsigned integer".to_string())?,
        ),
    };
    Ok(PhaseBreakdown {
        name: get_str(json, "name")?,
        iter,
        vpu_cycles: get_u64(json, "vpu_cycles")?,
        vpu: vpu_stats_from_json(field(json, "vpu")?)?,
        mem: mem_stats_from_json(field(json, "mem")?)?,
    })
}

fn vpu_stats_from_json(json: &Json) -> Result<VpuStats, String> {
    Ok(VpuStats {
        arith_instrs: get_u64(json, "arith_instrs")?,
        vloads: get_u64(json, "vloads")?,
        vstores: get_u64(json, "vstores")?,
        spill_loads: get_u64(json, "spill_loads")?,
        spill_stores: get_u64(json, "spill_stores")?,
        swap_loads: get_u64(json, "swap_loads")?,
        swap_stores: get_u64(json, "swap_stores")?,
        config_instrs: get_u64(json, "config_instrs")?,
        aggressive_reclaims: get_u64(json, "aggressive_reclaims")?,
        rename_stall_cycles: get_u64(json, "rename_stall_cycles")?,
        queue_stall_cycles: get_u64(json, "queue_stall_cycles")?,
        vrf_read_elems: get_u64(json, "vrf_read_elems")?,
        vrf_write_elems: get_u64(json, "vrf_write_elems")?,
        fpu_ops: get_u64(json, "fpu_ops")?,
        int_ops: get_u64(json, "int_ops")?,
        arith_busy_cycles: get_u64(json, "arith_busy_cycles")?,
        mem_busy_cycles: get_u64(json, "mem_busy_cycles")?,
    })
}

fn cache_stats_from_json(json: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        read_hits: get_u64(json, "read_hits")?,
        read_misses: get_u64(json, "read_misses")?,
        write_hits: get_u64(json, "write_hits")?,
        write_misses: get_u64(json, "write_misses")?,
        writebacks: get_u64(json, "writebacks")?,
    })
}

fn mem_stats_from_json(json: &Json) -> Result<MemoryStats, String> {
    Ok(MemoryStats {
        l1d: cache_stats_from_json(field(json, "l1d")?)?,
        l2: cache_stats_from_json(field(json, "l2")?)?,
        dram_accesses: get_u64(json, "dram_accesses")?,
        dram_bytes: get_u64(json, "dram_bytes")?,
        vmu_bytes: get_u64(json, "vmu_bytes")?,
        vector_requests: get_u64(json, "vector_requests")?,
    })
}

/// The VPU counter block shared by the run-level and per-phase JSON.
fn vpu_stats_json(s: &VpuStats) -> Json {
    object()
        .field("arith_instrs", s.arith_instrs)
        .field("vloads", s.vloads)
        .field("vstores", s.vstores)
        .field("spill_loads", s.spill_loads)
        .field("spill_stores", s.spill_stores)
        .field("swap_loads", s.swap_loads)
        .field("swap_stores", s.swap_stores)
        .field("config_instrs", s.config_instrs)
        .field("aggressive_reclaims", s.aggressive_reclaims)
        .field("rename_stall_cycles", s.rename_stall_cycles)
        .field("queue_stall_cycles", s.queue_stall_cycles)
        .field("vrf_read_elems", s.vrf_read_elems)
        .field("vrf_write_elems", s.vrf_write_elems)
        .field("fpu_ops", s.fpu_ops)
        .field("int_ops", s.int_ops)
        .field("arith_busy_cycles", s.arith_busy_cycles)
        .field("mem_busy_cycles", s.mem_busy_cycles)
        .field("memory_instrs", s.memory_instrs())
        .field("memory_fraction", s.memory_fraction())
        .finish()
}

/// The memory counter block shared by the run-level and per-phase JSON.
fn mem_stats_json(m: &MemoryStats) -> Json {
    let cache = |c: &ava_memory::CacheStats| {
        object()
            .field("read_hits", c.read_hits)
            .field("read_misses", c.read_misses)
            .field("write_hits", c.write_hits)
            .field("write_misses", c.write_misses)
            .field("writebacks", c.writebacks)
            .finish()
    };
    object()
        .field("l1d", cache(&m.l1d))
        .field("l2", cache(&m.l2))
        .field("dram_accesses", m.dram_accesses)
        .field("dram_bytes", m.dram_bytes)
        .field("vmu_bytes", m.vmu_bytes)
        .field("vector_requests", m.vector_requests)
        .finish()
}

/// Runs `workload` on the given scenario and reports cycles, statistics and
/// correctness.
///
/// # Panics
///
/// Panics if the workload produces a program that cannot be renamed (which
/// would indicate a bug in the code generator rather than a user error).
#[must_use]
pub fn run_workload(workload: &dyn Workload, scenario: &ScenarioConfig) -> RunReport {
    run_system(workload, &scenario.resolve())
}

/// Runs `workload` on an already-resolved [`SystemConfig`] (what
/// [`run_workload`] does after resolution; useful when the caller keeps
/// resolved systems around, as the sweep engine does).
#[must_use]
pub fn run_system(workload: &dyn Workload, system: &SystemConfig) -> RunReport {
    run_workload_via(workload, system, &|kernel, opts| {
        Arc::new(compile(kernel, opts))
    })
}

/// The compilation hook used by the sweep engine: given the kernel IR and
/// options, return the compiled kernel (freshly built or from a cache).
pub(crate) type CompileFn<'a> =
    &'a (dyn Fn(&IrKernel, &CompileOptions) -> Arc<CompiledKernel> + Sync);

/// The full run pipeline with an injectable compilation step. `run_workload`
/// passes a plain [`compile`]; [`crate::sweep`] passes a shared program
/// cache. Because [`compile`] is deterministic, both paths produce
/// bit-identical reports.
pub(crate) fn run_workload_via(
    workload: &dyn Workload,
    system: &SystemConfig,
    compile_fn: CompileFn<'_>,
) -> RunReport {
    run_workload_stored(workload, system, compile_fn, None).0
}

/// [`run_workload_via`] with an optional result store consulted between
/// compilation and simulation. Returns the report and whether it was served
/// from the store. Planning and compilation always run — they are what
/// produce the content fingerprint the store is keyed by — but on a hit the
/// simulation itself (VPU setup, cache warming, cycle-level execution,
/// validation) is skipped entirely.
pub(crate) fn run_workload_stored(
    workload: &dyn Workload,
    system: &SystemConfig,
    compile_fn: CompileFn<'_>,
    store: Option<&ResultStore>,
) -> (RunReport, bool) {
    let run_start = Instant::now();
    let mut mem = MemoryHierarchy::new(system.memory);

    // 1. Planning step of the two-step workload protocol: the application
    //    declares its named input/output buffers and the shared planner
    //    places them. The vectorising compiler then sees the system's
    //    maximum vector length while the workload generates data + IR +
    //    golden reference against the planned layout (no external bindings
    //    here — pipelined composites bind phase to phase internally).
    let ctx = VectorContext::with_mvl(system.mvl());
    let plan = ArenaPlanner::new().plan(&mut mem, &workload.data_layout());
    let setup = workload.build_with_bindings(&mut mem, &ctx, &plan, &BufferBindings::none());

    // 2. Register allocation against the architectural budget (32 registers,
    //    or 32/LMUL under register grouping); spill slots live on the stack
    //    and are one full MVL wide. The arena is allocated directly above
    //    the application data so `spill_base` — a compile input and part of
    //    the sweep's compile-cache key — depends only on the workload and
    //    the MVL, letting NATIVE/AVA configurations of equal MVL share one
    //    compilation.
    let spill_slot_bytes = (system.mvl() * 8) as u64;
    let spill_base = mem.allocate(64 * spill_slot_bytes);
    let (_, arena_end) = mem.memory().allocated_range();
    let compiled = compile_fn(
        &setup.kernel,
        &CompileOptions::new(system.compiler_lmul, spill_base, spill_slot_bytes),
    );

    // 2b. Result-store consultation. The key covers everything the
    //     simulation below reads: the compiled program bytes (via their
    //     exhaustive Debug form), the planned layout and spill arena, the
    //     golden reference and the resolved scenario identity. A hit
    //     replaces steps 3-6 wholesale with the stored report.
    let key = store.map(|_| {
        let mut h = Fingerprint::new();
        h.write_str(workload.name());
        h.write_u64(workload.elements() as u64);
        plan.fingerprint(&mut h);
        setup.fingerprint(&mut h);
        h.write_u64(spill_base);
        h.write_u64(spill_slot_bytes);
        h.write_str(&format!("{:?}", compiled.program));
        h.write_u64(compiled.spill_stores as u64);
        h.write_u64(compiled.spill_loads as u64);
        h.write_u64(compiled.max_pressure as u64);
        StoreKey::new(
            workload.name(),
            workload.elements() as u64,
            system,
            h.finish(),
        )
    });
    if let (Some(store), Some(key)) = (store, &key) {
        if let Some(report) = store.lookup(key) {
            return (report, true);
        }
    }

    // 3. The VPU reserves its M-VRF backing store above the arena (AVA
    //    only); like the application data it belongs to the measured
    //    working set.
    let mut vpu = Vpu::new(system.vpu.clone(), &mut mem);
    let (_, mvrf_end) = mem.memory().allocated_range();

    // 4. Cycle-level + functional simulation on the VPU. The caches are
    //    warmed over the working set: the planner-derived buffer ranges the
    //    run actually touches (dead placeholder inputs of pipelined
    //    composites stay cold) and the M-VRF — but *not* the spill arena:
    //    it is not application data, and at long MVLs (64 slots × MVL ×
    //    8 B) warming it would evict the real working set from small L2
    //    configurations before the run starts.
    let mut warm = setup.warm_ranges.clone();
    warm.push((arena_end, mvrf_end));
    mem.warm_caches_ranges(&warm);

    // Multi-kernel setups run the compiled program as per-phase segments on
    // the same VPU instance — observationally identical to one continuous
    // run, but every phase's cycle/memory counters are recorded as a delta.
    let mut phases = Vec::new();
    let result = if setup.phase_marks.len() > 1 {
        let mut cycles = 0;
        let mut stats = ava_vpu::VpuStats::default();
        let mut program_start = 0;
        let mut config_name = String::new();
        let mut mem_before = mem.stats();
        for (i, mark) in setup.phase_marks.iter().enumerate() {
            // The last phase always runs to the end of the program, so any
            // trailing compiler-inserted code is attributed to it.
            let program_end = if i + 1 == setup.phase_marks.len() {
                compiled.program.len()
            } else {
                compiled.program_split(mark.ir_end)
            };
            let seg = vpu.run_range(&compiled.program, program_start..program_end, &mut mem);
            let mem_now = mem.stats();
            phases.push(PhaseBreakdown {
                name: mark.name.clone(),
                iter: mark.iter,
                vpu_cycles: seg.cycles,
                vpu: seg.stats,
                mem: mem_now.delta_since(&mem_before),
            });
            mem_before = mem_now;
            cycles += seg.cycles;
            stats.merge(&seg.stats);
            config_name = seg.config_name;
            program_start = program_end;
        }
        ava_vpu::VpuRunResult {
            config_name,
            cycles,
            stats,
        }
    } else {
        vpu.run(&compiled.program, &mut mem)
    };

    // 5. Scalar-core floor for the stripmined loop.
    let scalar_core = ScalarCore::new(system.scalar);
    let scalar = scalar_core.loop_cost(setup.strips, compiled.program.len() as u64);
    let cycles = scalar_core.combine(result.cycles, &scalar);

    // 6. Validation against the golden reference — chained across phases
    //    for pipelined composites (a consumed intermediate buffer is only
    //    checked through the downstream phase's reference).
    let validation = validate(&mem, &setup.checks);

    let report = RunReport {
        config: system.label().to_string(),
        axes: system.axes.clone(),
        workload: workload.name().to_string(),
        vpu_cycles: result.cycles,
        cycles,
        vpu: result.stats,
        mem: mem.stats(),
        phases,
        compiler_spill_stores: compiled.spill_stores,
        compiler_spill_loads: compiled.spill_loads,
        register_pressure: compiled.max_pressure,
        scalar,
        validated: validation.is_ok(),
        validation_error: validation.err(),
    };

    // 7. Checkpoint: the fresh result lands in the store the moment this
    //    point finishes, so a killed sweep loses at most the points in
    //    flight. The recorded wall time seeds cost-sorted scheduling of
    //    future sweeps. A write failure degrades to an uncached run.
    if let (Some(store), Some(key)) = (store, &key) {
        let wall_ns = u64::try_from(run_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Err(e) = store.insert(key, &report, wall_ns.max(1)) {
            eprintln!("warning: result store write failed: {e}");
        }
    }
    (report, false)
}

/// Convenience wrapper: runs every provided scenario on the same workload
/// and returns the reports in the same order.
#[must_use]
pub fn run_workload_sized(workload: &dyn Workload, scenarios: &[ScenarioConfig]) -> Vec<RunReport> {
    scenarios
        .iter()
        .map(|s| run_workload(workload, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::{Axpy, Blackscholes, Somier};

    use crate::configs::ScenarioConfig;

    #[test]
    fn axpy_runs_validated_on_every_organisation() {
        let w = Axpy::new(256);
        for sys in [
            ScenarioConfig::native_x(1),
            ScenarioConfig::ava_x(8),
            ScenarioConfig::rg_lmul(Lmul::M8),
        ] {
            let r = run_workload(&w, &sys);
            assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
            assert!(r.cycles > 0);
            assert_eq!(r.compiler_spill_stores, 0, "axpy never spills");
            assert_eq!(r.vpu.swap_ops(), 0, "axpy never swaps");
        }
    }

    #[test]
    fn longer_native_configurations_speed_up_axpy() {
        let w = Axpy::new(2048);
        let x1 = run_workload(&w, &ScenarioConfig::native_x(1));
        let x8 = run_workload(&w, &ScenarioConfig::native_x(8));
        let speedup = x1.cycles as f64 / x8.cycles as f64;
        assert!(
            speedup > 1.4,
            "NATIVE X8 should be clearly faster, got {speedup}"
        );
    }

    #[test]
    fn rg_lmul8_spills_blackscholes_but_ava_x2_does_not_swap() {
        let w = Blackscholes::new(128);
        let rg = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg.validated, "{:?}", rg.validation_error);
        assert!(
            rg.compiler_spill_stores > 0,
            "23-ish live values cannot fit 4 registers"
        );

        let ava2 = run_workload(&w, &ScenarioConfig::ava_x(2));
        assert!(ava2.validated, "{:?}", ava2.validation_error);
        assert_eq!(ava2.vpu.swap_ops(), 0, "32 physical registers suffice");
        assert_eq!(
            ava2.compiler_spill_stores, 0,
            "AVA keeps all 32 architectural registers"
        );
    }

    #[test]
    fn somier_only_breaks_down_at_the_largest_grouping() {
        let w = Somier::new(512);
        let rg4 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M4));
        let rg8 = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert!(rg4.validated && rg8.validated);
        assert_eq!(rg4.compiler_spill_stores, 0);
        assert!(rg8.compiler_spill_stores > 0);
    }

    #[test]
    fn reports_round_trip_through_json_bit_identically() {
        let w = Axpy::new(256);
        let mut r = run_workload(&w, &ScenarioConfig::ava_x(8).with_mvl(64).with_iters(2));
        // Graft synthetic phases (with and without an iteration index) and a
        // validation failure so every optional field of the schema is
        // exercised by one document.
        r.phases.push(PhaseBreakdown {
            name: "it0:axpy".to_string(),
            iter: Some(0),
            vpu_cycles: r.vpu_cycles,
            vpu: r.vpu,
            mem: r.mem,
        });
        r.phases.push(PhaseBreakdown {
            name: "body".to_string(),
            iter: None,
            vpu_cycles: 1,
            vpu: r.vpu,
            mem: r.mem,
        });
        r.validation_error = Some("synthetic mismatch".to_string());
        r.validated = false;
        let parsed = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(format!("{r:?}"), format!("{parsed:?}"));
    }

    #[test]
    fn from_json_rejects_missing_and_mistyped_fields() {
        let r = run_workload(&Axpy::new(256), &ScenarioConfig::native_x(1));
        let Json::Obj(fields) = r.to_json() else {
            panic!("report JSON is not an object")
        };
        let mut missing = fields.clone();
        missing.retain(|(k, _)| k != "cycles");
        assert!(RunReport::from_json(&Json::Obj(missing))
            .unwrap_err()
            .contains("cycles"));
        let mut mistyped = fields;
        for (k, v) in &mut mistyped {
            if k == "validated" {
                *v = Json::Str("yes".to_string());
            }
        }
        assert!(RunReport::from_json(&Json::Obj(mistyped)).is_err());
    }

    #[test]
    fn report_memory_instruction_accounting_is_consistent() {
        let w = Blackscholes::new(128);
        let r = run_workload(&w, &ScenarioConfig::rg_lmul(Lmul::M8));
        assert_eq!(
            r.vpu.spill_loads as usize + r.vpu.spill_stores as usize,
            r.compiler_spill_loads + r.compiler_spill_stores,
            "executed spill operations must match what the compiler emitted"
        );
        assert!(r.memory_instructions() >= r.vpu.vloads + r.vpu.vstores);
    }
}
