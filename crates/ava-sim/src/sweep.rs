//! The parallel experiment-sweep engine.
//!
//! Every figure and table of the paper's evaluation is an embarrassingly
//! parallel fan-out: Figure 3 alone is 6 workloads × 14 system
//! configurations, each point an independent compile + simulate + validate
//! pass. This module runs such grids across all available cores while
//! guaranteeing **bit-identical results to a serial run**:
//!
//! * every point gets a fresh [`MemoryHierarchy`], so no simulation state is
//!   shared;
//! * the only shared structure is a [`ProgramCache`] that deduplicates
//!   *compilations* — and because [`ava_compiler::compile`] is a pure
//!   function of its inputs, reusing its output cannot change any report;
//! * results are written into per-point slots, so the returned `Vec` is in
//!   grid order regardless of which thread finished first.
//!
//! The cache also makes the sweep cheaper than the sum of its points: on the
//! full Figure 3 grid, NATIVE Xn, AVA Xn and RG-LMUL1 all compile the same
//! (kernel, LMUL, MVL) combination, so 14 configurations need only 8
//! compilations per workload.
//!
//! ```
//! use ava_sim::{Sweep, SystemConfig};
//! use ava_workloads::{Axpy, SharedWorkload, Somier};
//! use std::sync::Arc;
//!
//! let workloads: Vec<SharedWorkload> =
//!     vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))];
//! let sweep = Sweep::grid(workloads, SystemConfig::all_ava());
//! let reports = sweep.run_parallel();
//! assert_eq!(reports.len(), 2 * 5);
//! assert!(reports.iter().all(|r| r.validated));
//! // Grid order is workload-major: the first five reports are Axpy.
//! assert!(reports[..5].iter().all(|r| r.workload == "axpy"));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use ava_compiler::{compile, CompileOptions, CompiledKernel};
use ava_workloads::SharedWorkload;

use crate::configs::SystemConfig;
use crate::run::{run_workload_via, RunReport};

/// Key identifying one compilation in a sweep: the workload (by grid index —
/// the kernel IR is a function of the workload and the MVL), the MVL the
/// kernel was stripmined for, and the register-allocation inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    workload: usize,
    mvl: usize,
    lmul_factor: usize,
    spill_base: u64,
    spill_slot_bytes: u64,
}

/// A thread-safe cache of compiled kernels shared by every point of a sweep.
///
/// Keyed on everything that feeds [`ava_compiler::compile`], so a hit is
/// guaranteed to return exactly the bytes a fresh compilation would produce.
#[derive(Debug, Default)]
pub struct ProgramCache {
    entries: Mutex<HashMap<CacheKey, Arc<CompiledKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached kernel for `key`, compiling it on first use.
    fn get_or_compile(
        &self,
        key: CacheKey,
        kernel: &ava_compiler::IrKernel,
        opts: &CompileOptions,
    ) -> Arc<CompiledKernel> {
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compile outside the lock: distinct keys must not serialise on one
        // long compilation. Two threads racing on the same key both compile,
        // but `compile` is deterministic so either result is correct.
        let compiled = Arc::new(compile(kernel, opts));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(compiled)
            .clone()
    }

    /// Number of compilations served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of compilations actually performed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A declarative grid of (workload, [`SystemConfig`]) experiment points.
///
/// Construct with [`Sweep::grid`] (full cross product) or
/// [`Sweep::from_points`] (explicit pairs), then execute with
/// [`Sweep::run_serial`] or [`Sweep::run_parallel`]. Both return one
/// [`RunReport`] per point, in point order, and are guaranteed to produce
/// identical reports.
pub struct Sweep {
    workloads: Vec<SharedWorkload>,
    systems: Vec<SystemConfig>,
    points: Vec<(usize, usize)>,
}

impl Sweep {
    /// The full cross product of `workloads` × `systems`, workload-major:
    /// point `w * systems.len() + s` runs workload `w` on system `s`.
    #[must_use]
    pub fn grid(workloads: Vec<SharedWorkload>, systems: Vec<SystemConfig>) -> Self {
        let points = (0..workloads.len())
            .flat_map(|w| (0..systems.len()).map(move |s| (w, s)))
            .collect();
        Self {
            workloads,
            systems,
            points,
        }
    }

    /// An explicit list of `(workload index, system index)` points over the
    /// given axes, for sweeps that are not a full cross product (e.g. the
    /// ablation study, which varies one system parameter per point).
    ///
    /// # Panics
    ///
    /// Panics if any point indexes outside `workloads` or `systems`.
    #[must_use]
    pub fn from_points(
        workloads: Vec<SharedWorkload>,
        systems: Vec<SystemConfig>,
        points: Vec<(usize, usize)>,
    ) -> Self {
        for &(w, s) in &points {
            assert!(w < workloads.len(), "workload index {w} out of range");
            assert!(s < systems.len(), "system index {s} out of range");
        }
        Self {
            workloads,
            systems,
            points,
        }
    }

    /// Number of experiment points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep contains no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The system axis, in the order grid points reference it.
    #[must_use]
    pub fn systems(&self) -> &[SystemConfig] {
        &self.systems
    }

    /// The workload axis, in the order grid points reference it.
    #[must_use]
    pub fn workloads(&self) -> &[SharedWorkload] {
        &self.workloads
    }

    fn run_point(&self, point: usize, cache: &ProgramCache) -> RunReport {
        let (w, s) = self.points[point];
        let workload = &self.workloads[w];
        let system = &self.systems[s];
        run_workload_via(workload.as_ref(), system, &|kernel, opts| {
            let key = CacheKey {
                workload: w,
                mvl: system.mvl(),
                lmul_factor: opts.lmul.factor(),
                spill_base: opts.spill_base,
                spill_slot_bytes: opts.spill_slot_bytes,
            };
            cache.get_or_compile(key, kernel, opts)
        })
    }

    /// Runs every point on the calling thread, in point order.
    #[must_use]
    pub fn run_serial(&self) -> Vec<RunReport> {
        let cache = ProgramCache::new();
        (0..self.points.len())
            .map(|i| self.run_point(i, &cache))
            .collect()
    }

    /// Runs the sweep across all available cores. Reports come back in point
    /// order and are bit-identical to [`Sweep::run_serial`].
    #[must_use]
    pub fn run_parallel(&self) -> Vec<RunReport> {
        let threads = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.run_parallel_with(threads)
    }

    /// Runs the sweep on at most `threads` worker threads (clamped to the
    /// number of points; `0` behaves like `1`).
    #[must_use]
    pub fn run_parallel_with(&self, threads: usize) -> Vec<RunReport> {
        let n = self.points.len();
        let workers = threads.clamp(1, n.max(1));
        let cache = ProgramCache::new();
        let slots: Vec<OnceLock<RunReport>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = self.run_point(i, &cache);
                    slots[i]
                        .set(report)
                        .expect("each point is claimed by one worker");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every point completed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::{Axpy, Blackscholes};

    fn small_axes() -> (Vec<SharedWorkload>, Vec<SystemConfig>) {
        let workloads: Vec<SharedWorkload> =
            vec![Arc::new(Axpy::new(256)), Arc::new(Blackscholes::new(64))];
        let systems = vec![
            SystemConfig::native_x(1),
            SystemConfig::ava_x(2),
            SystemConfig::rg_lmul(Lmul::M4),
        ];
        (workloads, systems)
    }

    #[test]
    fn grid_is_workload_major_and_complete() {
        let (w, s) = small_axes();
        let reports = Sweep::grid(w, s).run_serial();
        assert_eq!(reports.len(), 6);
        assert_eq!(reports[0].workload, "axpy");
        assert_eq!(reports[2].workload, "axpy");
        assert_eq!(reports[3].workload, "blackscholes");
        assert_eq!(reports[0].config, "NATIVE X1");
        assert_eq!(reports[4].config, "AVA X2");
        assert!(reports.iter().all(|r| r.validated));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);
        let serial = sweep.run_serial();
        for threads in [1, 2, 7] {
            let parallel = sweep.run_parallel_with(threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.cycles, b.cycles, "{} on {}", a.workload, a.config);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "full report must match");
            }
        }
    }

    #[test]
    fn equivalent_configurations_share_one_compilation() {
        // NATIVE X2 and AVA X2 expose the same MVL and LMUL, so the second
        // run of the same workload must hit the cache.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let systems = vec![SystemConfig::native_x(2), SystemConfig::ava_x(2)];
        let sweep = Sweep::grid(workloads, systems);
        let cache = ProgramCache::new();
        let a = sweep.run_point(0, &cache);
        let b = sweep.run_point(1, &cache);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // And the cached compile feeds a report identical to a fresh one.
        assert_eq!(
            b.cycles,
            crate::run::run_workload(sweep.workloads[0].as_ref(), &sweep.systems[1]).cycles
        );
        assert!(a.validated && b.validated);
    }

    #[test]
    fn distinct_lmuls_do_not_share_compilations() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Blackscholes::new(64))];
        let systems = vec![SystemConfig::native_x(8), SystemConfig::rg_lmul(Lmul::M8)];
        let sweep = Sweep::grid(workloads, systems);
        let cache = ProgramCache::new();
        let _ = sweep.run_point(0, &cache);
        let _ = sweep.run_point(1, &cache);
        assert_eq!(
            cache.misses(),
            2,
            "LMUL=1 and LMUL=8 need different spill code"
        );
    }

    #[test]
    fn explicit_points_run_in_declared_order() {
        let (w, s) = small_axes();
        let sweep = Sweep::from_points(w, s, vec![(1, 2), (0, 0), (1, 0)]);
        let reports = sweep.run_parallel_with(2);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].workload, "blackscholes");
        assert_eq!(reports[0].config, "RG-LMUL4");
        assert_eq!(reports[1].workload, "axpy");
        assert_eq!(reports[2].workload, "blackscholes");
        assert_eq!(reports[2].config, "NATIVE X1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_points_are_rejected() {
        let (w, s) = small_axes();
        let _ = Sweep::from_points(w, s, vec![(0, 99)]);
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![SystemConfig::native_x(1)]);
        let reports = sweep.run_parallel_with(0);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].validated);
    }
}
