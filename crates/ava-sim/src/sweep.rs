//! The parallel experiment-sweep engine.
//!
//! Every figure and table of the paper's evaluation is an embarrassingly
//! parallel fan-out: Figure 3 alone is 6 workloads × 14 system
//! configurations, each point an independent compile + simulate + validate
//! pass. This module runs such grids across all available cores while
//! guaranteeing **bit-identical results to a serial run**:
//!
//! * every point gets a fresh [`MemoryHierarchy`], so no simulation state is
//!   shared;
//! * the only shared structure is a [`ProgramCache`] that deduplicates
//!   *compilations* — and because [`ava_compiler::compile`] is a pure
//!   function of its inputs, reusing its output cannot change any report;
//! * results are written into per-point slots, so the returned `Vec` is in
//!   grid order regardless of which thread finished first.
//!
//! Execution goes through the builder-style [`SweepRunner`] — thread count,
//! profile-guided scheduling, cross-process sharding and the on-disk
//! [`ResultStore`] are independent knobs on one `run()` path (the old
//! six-method `run_{serial,parallel}[_report][_with]` family is gone).
//!
//! # Scheduling
//!
//! Per-point simulation cost is heavily skewed — one large Blackscholes
//! point can cost more than a dozen Axpy points — so claiming points in
//! grid order lets an expensive point picked up last tail the whole sweep.
//! Scheduling is two-tier ([`WorkStealScheduler`]): the points are sorted
//! once by a per-point **cost estimate** ([`Workload::elements`] over the
//! configuration's effective width `MVL / LMUL` — narrower width means more
//! strips, hence more dynamic instructions to simulate) and dealt
//! round-robin into one pending deque per worker. Each worker then pops the
//! highest-cost point of its *own* deque — claims touch one small
//! per-worker lock, not a global mutex, so grids of thousands of points do
//! not serialise on the claim path — and a worker whose deque runs dry
//! **steals** the highest-cost pending point from the most-loaded victim.
//! The estimates are also updated **online**: every point that finishes
//! feeds its measured wall-clock back into a shared median
//! nanoseconds-per-heuristic-unit, and every later claim re-ranks the
//! candidates it is choosing between under the refreshed median — a run
//! whose static heuristic misjudged the workload corrects itself mid-sweep.
//! The estimate only orders work; results are still reported in grid order
//! and remain bit-identical at any thread count, any steal pattern and any
//! estimate quality.
//!
//! [`Workload::elements`]: ava_workloads::Workload::elements
//!
//! # Sharding
//!
//! [`SweepRunner::shard`] restricts one execution to a deterministic slice
//! of the grid: every process hashes each point's canonical identity (the
//! same stable workload ⊕ config keys the result store and recorded-cost
//! replay use) and keeps the points landing in its shard, so `n` processes
//! — or `n` machines sharing one store directory — partition a grid with no
//! communication at all. Each sharded run checkpoints its slice into the
//! shared [`ResultStore`] (the atomic rename writes make concurrent writers
//! safe), and a final *unsharded* run over the same store assembles the
//! complete [`SweepReport`] from all-hits without simulating anything.
//!
//! # Incremental sweeps
//!
//! A runner pointed at a [`ResultStore`] consults it before simulating each
//! point and checkpoints every fresh result the moment it finishes:
//! a warm rerun performs zero simulations, a killed sweep resumes where it
//! stopped, and a change to one workload invalidates only that workload's
//! points (the store is keyed by a content fingerprint of the compiled
//! program, planned layout and golden reference). Recorded per-point wall
//! times in the store seed cost-sorted scheduling automatically.
//!
//! Compilations persist the same way: a runner pointed at a
//! [`DiskProgramCache`] ([`SweepRunner::program_cache`]) serves in-memory
//! cache misses from disk and checkpoints every fresh compilation, so a
//! warm rerun performs zero compilations ([`SweepReport::compiles`]).
//!
//! # Instrumentation
//!
//! [`SweepRunner::run`] returns a [`SweepReport`] that wraps the
//! [`RunReport`]s with per-point wall-clock timing, the cost estimate,
//! store provenance and claiming worker of every point, compile-cache and
//! result-store hit/miss counters and the sweep's total wall-clock — the
//! raw material for the `--json` report pipeline and CI wall-clock
//! baselines.
//!
//! The cache also makes the sweep cheaper than the sum of its points: on the
//! full Figure 3 grid, NATIVE Xn, AVA Xn and RG-LMUL1 all compile the same
//! (kernel, LMUL, MVL) combination, so 14 configurations need only 8
//! compilations per workload.
//!
//! ```
//! use ava_sim::{ScenarioConfig, Sweep};
//! use ava_workloads::{Axpy, SharedWorkload, Somier};
//! use std::sync::Arc;
//!
//! let workloads: Vec<SharedWorkload> =
//!     vec![Arc::new(Axpy::new(256)), Arc::new(Somier::new(256))];
//! let sweep = Sweep::grid(workloads, ScenarioConfig::all_ava());
//! let report = sweep.runner().run();
//! assert_eq!(report.reports.len(), 2 * 5);
//! assert!(report.reports.iter().all(|r| r.validated));
//! // Grid order is workload-major: the first five reports are Axpy.
//! assert!(report.reports[..5].iter().all(|r| r.workload == "axpy"));
//! // Every point carries its own timing and cost estimate.
//! assert!(report.points.iter().all(|p| p.cost_estimate > 0));
//! // No store attached: nothing was (or could be) served from disk.
//! assert_eq!(report.store_hits + report.store_misses, 0);
//! ```
//!
//! [`MemoryHierarchy`]: ava_memory::MemoryHierarchy

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

use ava_compiler::{compile, CompileOptions, CompiledKernel};
use ava_workloads::SharedWorkload;

use crate::configs::{config_axes_key, workload_identity, ScenarioConfig, SystemConfig};
use crate::json::{object, Json};
use crate::progcache::{compile_fingerprint, DiskProgramCache};
use crate::run::{run_workload_stored, RunReport};
use crate::store::ResultStore;

/// The static per-point cost heuristic: `elements * 16 / width` (element
/// operations over the effective register width, normalised to the
/// 16-element baseline), floored at 1 so every point carries weight.
///
/// A degenerate scenario override can resolve to an effective width of 0
/// (`MVL / LMUL` truncating to nothing); dividing by it would panic mid-sweep
/// on a worker thread. Such a point is the *narrowest* configuration
/// imaginable — the guard returns the max-cost sentinel so it is scheduled
/// first instead of crashing the sweep.
fn heuristic_points_cost(elements: u64, width: u64) -> u64 {
    match elements.saturating_mul(16).checked_div(width) {
        Some(cost) => cost.max(1),
        None => u64::MAX,
    }
}

/// Key identifying one compilation in a sweep: the workload (by grid index —
/// the kernel IR is a function of the workload and the MVL), the MVL the
/// kernel was stripmined for, and the register-allocation inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    workload: usize,
    mvl: usize,
    lmul_factor: usize,
    spill_base: u64,
    spill_slot_bytes: u64,
}

/// A thread-safe cache of compiled kernels shared by every point of a sweep,
/// with an optional persistent on-disk tier ([`DiskProgramCache`]).
///
/// Keyed on everything that feeds [`ava_compiler::compile`], so a hit —
/// in-memory or on-disk — is guaranteed to return exactly the bytes a fresh
/// compilation would produce. An in-memory miss consults the disk tier
/// before compiling; a warm disk cache therefore serves a whole sweep with
/// zero compilations.
#[derive(Debug, Default)]
pub struct ProgramCache {
    entries: Mutex<HashMap<CacheKey, Arc<CompiledKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    compiles: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached kernel for `key`: from memory, else from `disk`
    /// when attached, else by compiling (and checkpointing to `disk`).
    fn get_or_compile(
        &self,
        key: CacheKey,
        kernel: &ava_compiler::IrKernel,
        opts: &CompileOptions,
        disk: Option<&DiskProgramCache>,
    ) -> Arc<CompiledKernel> {
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Disk lookups and compilation run outside the lock: distinct keys
        // must not serialise on one long compilation. Two threads racing on
        // the same key both compile, but `compile` is deterministic so
        // either result is correct.
        if let Some(disk) = disk {
            let fingerprint = compile_fingerprint(kernel, opts);
            if let Some(cached) = disk.lookup(fingerprint) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return self
                    .entries
                    .lock()
                    .expect("cache poisoned")
                    .entry(key)
                    .or_insert(Arc::new(cached))
                    .clone();
            }
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            let compiled = Arc::new(compile(kernel, opts));
            self.compiles.fetch_add(1, Ordering::Relaxed);
            // A failed checkpoint write just means the compilation stays
            // uncached — never a reason to fail the sweep.
            let _ = disk.insert(fingerprint, &compiled);
            return self
                .entries
                .lock()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(compiled)
                .clone();
        }
        let compiled = Arc::new(compile(kernel, opts));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(compiled)
            .clone()
    }

    /// Number of compilations served from the in-memory cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of compile requests the in-memory cache could not serve
    /// (every one is then either a disk hit or an actual compilation, so
    /// `hits() + misses()` always equals the number of compile requests).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// In-memory misses served from the attached [`DiskProgramCache`]
    /// (always 0 without one).
    #[must_use]
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// In-memory misses the attached [`DiskProgramCache`] could not serve
    /// (always 0 without one).
    #[must_use]
    pub fn disk_misses(&self) -> u64 {
        self.disk_misses.load(Ordering::Relaxed)
    }

    /// Number of compilations actually performed (`misses()` minus the
    /// disk hits). Zero on a sweep fully served by a warm disk cache.
    #[must_use]
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }
}

/// Scheduling and timing metadata for one executed sweep point. Parallel to
/// [`SweepReport::reports`], in grid order.
#[derive(Debug, Clone)]
pub struct PointStats {
    /// Workload name of the point ("axpy", ...).
    pub workload: String,
    /// Configuration label of the point ("AVA X4", ...).
    pub config: String,
    /// The scheduler's cost estimate for the point *at the moment it was
    /// claimed*: workload element operations over the configuration's
    /// effective width, rescaled online by the median
    /// nanoseconds-per-heuristic-unit of every point finished so far — or
    /// the recorded wall-clock of a previous sweep under
    /// [`SweepRunner::recorded_costs`] / an attached store, which a
    /// rescale never overrides. Orders execution only.
    pub cost_estimate: u64,
    /// The workload's element-operation count ([`Workload::elements`]) —
    /// the denominator of derived per-element metrics such as
    /// energy-per-element.
    ///
    /// [`Workload::elements`]: ava_workloads::Workload::elements
    pub elements: u64,
    /// Wall-clock time of the compile + simulate + validate pass, in
    /// nanoseconds. For a point served from the result store this is the
    /// plan + compile + lookup time — the simulation itself never ran.
    pub wall_ns: u64,
    /// Index of the worker thread that executed the point (`0` for a serial
    /// run).
    pub worker: usize,
    /// Whether the point's report was served from the attached
    /// [`ResultStore`] instead of being simulated (always `false` without a
    /// store).
    pub from_store: bool,
}

/// An executed sweep: the bit-identical-to-serial [`RunReport`]s plus the
/// instrumentation CI and downstream plotting consume.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One report per point, in grid order.
    pub reports: Vec<RunReport>,
    /// Per-point scheduling/timing metadata, parallel to `reports`.
    pub points: Vec<PointStats>,
    /// Compile requests served from the sweep's in-memory program cache.
    pub cache_hits: u64,
    /// Compile requests the in-memory program cache could not serve
    /// (`cache_hits + cache_misses` is the total number of requests).
    pub cache_misses: u64,
    /// In-memory misses served from the attached [`DiskProgramCache`]
    /// (0 without one).
    pub cache_disk_hits: u64,
    /// In-memory misses the attached [`DiskProgramCache`] could not serve
    /// (0 without one).
    pub cache_disk_misses: u64,
    /// Compilations actually performed. Zero when a warm
    /// [`DiskProgramCache`] served every miss — the warm-start invariant CI
    /// asserts.
    pub compiles: u64,
    /// Points served from the attached result store (0 without a store).
    pub store_hits: u64,
    /// Points simulated because the attached store had no usable entry
    /// (0 without a store — an uncached sweep reports no misses).
    pub store_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Claims served from another worker's deque by the work-stealing
    /// scheduler (always 0 on a single-threaded run, where there is nobody
    /// to steal from).
    pub steals: u64,
    /// The `(index, of)` shard this run executed ([`SweepRunner::shard`]),
    /// or `None` for a whole-grid run. A sharded report covers only the
    /// shard's own points, still in grid order.
    pub shard: Option<(usize, usize)>,
    /// Wall-clock time of the whole sweep, in nanoseconds.
    pub wall_ns: u64,
}

impl SweepReport {
    /// Drops the instrumentation, keeping only the per-point reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RunReport> {
        self.reports
    }

    /// Sum of the per-point wall-clock times (the cost a serial run would
    /// pay; compare with [`SweepReport::wall_ns`] for effective speedup).
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.points.iter().map(|p| p.wall_ns).sum()
    }

    /// Names of the scenario axes exercised anywhere in the sweep, in
    /// first-appearance order (empty when every point is a plain preset).
    #[must_use]
    pub fn axis_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for r in &self.reports {
            for a in &r.axes {
                if !names.contains(&a.name) {
                    names.push(a.name);
                }
            }
        }
        names
    }

    /// The machine-readable form of the sweep consumed by CI and plotting:
    /// schema marker, the scenario axes in play, scheduling/cache/store
    /// instrumentation, and the full per-point reports (each carrying its
    /// own axis values).
    #[must_use]
    pub fn to_json(&self) -> Json {
        object()
            .field("schema", "ava-sweep-report/v1")
            .field(
                "axes",
                self.axis_names()
                    .into_iter()
                    .map(Json::from)
                    .collect::<Json>(),
            )
            .field("threads", self.threads)
            .field("steals", self.steals)
            .field(
                "shard",
                match self.shard {
                    Some((index, of)) => object().field("index", index).field("of", of).finish(),
                    None => Json::Null,
                },
            )
            .field("wall_ns", self.wall_ns)
            .field("busy_ns", self.busy_ns())
            .field(
                "cache",
                object()
                    .field("hits", self.cache_hits)
                    .field("misses", self.cache_misses)
                    .field("disk_hits", self.cache_disk_hits)
                    .field("disk_misses", self.cache_disk_misses)
                    .field("compiles", self.compiles)
                    .finish(),
            )
            .field(
                "store",
                object()
                    .field("hits", self.store_hits)
                    .field("misses", self.store_misses)
                    .finish(),
            )
            .field(
                "points",
                self.points
                    .iter()
                    .zip(&self.reports)
                    .map(|(p, r)| {
                        object()
                            .field("workload", p.workload.as_str())
                            .field("config", p.config.as_str())
                            .field("cost_estimate", p.cost_estimate)
                            .field("elements", p.elements)
                            .field("wall_ns", p.wall_ns)
                            .field("worker", p.worker)
                            .field("from_store", p.from_store)
                            .field("report", r.to_json())
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    }
}

/// A declarative grid of (workload, [`ScenarioConfig`]) experiment points.
///
/// Construct with [`Sweep::grid`] (full cross product) or
/// [`Sweep::from_points`] (explicit pairs), then execute through the
/// [`Sweep::runner`] builder. All execution paths return per-point results
/// in point order and are guaranteed to produce identical reports.
/// Scenarios are resolved once, at construction, so the per-point cost is
/// one compile + simulate pass — and construction rejects two points with
/// the same `(workload name + size, configuration)` identity, which would
/// make recorded-cost replay and the store's timing metadata ambiguous.
pub struct Sweep {
    workloads: Vec<SharedWorkload>,
    scenarios: Vec<ScenarioConfig>,
    resolved: Vec<SystemConfig>,
    points: Vec<(usize, usize)>,
}

impl Sweep {
    /// The full cross product of `workloads` × `scenarios`, workload-major:
    /// point `w * scenarios.len() + s` runs workload `w` on scenario `s`.
    ///
    /// # Panics
    ///
    /// Panics if two points share one `(workload name + size, configuration)`
    /// identity — e.g. two workloads with the same `name()` and element
    /// count crossed with one scenario list.
    #[must_use]
    pub fn grid(workloads: Vec<SharedWorkload>, scenarios: Vec<ScenarioConfig>) -> Self {
        let points = (0..workloads.len())
            .flat_map(|w| (0..scenarios.len()).map(move |s| (w, s)))
            .collect();
        Self::build(workloads, scenarios, points)
    }

    /// An explicit list of `(workload index, scenario index)` points over
    /// the given axes, for sweeps that are not a full cross product (e.g.
    /// the ablation study, which varies one system parameter per point).
    ///
    /// # Panics
    ///
    /// Panics if any point indexes outside `workloads` or `scenarios`, or
    /// if two points share one `(workload name + size, configuration)`
    /// identity.
    #[must_use]
    pub fn from_points(
        workloads: Vec<SharedWorkload>,
        scenarios: Vec<ScenarioConfig>,
        points: Vec<(usize, usize)>,
    ) -> Self {
        for &(w, s) in &points {
            assert!(w < workloads.len(), "workload index {w} out of range");
            assert!(s < scenarios.len(), "scenario index {s} out of range");
        }
        Self::build(workloads, scenarios, points)
    }

    fn build(
        workloads: Vec<SharedWorkload>,
        scenarios: Vec<ScenarioConfig>,
        points: Vec<(usize, usize)>,
    ) -> Self {
        let resolved: Vec<SystemConfig> = scenarios.iter().map(ScenarioConfig::resolve).collect();
        // Every point must have a unique (workload ⊕ size, config ⊕ axes)
        // identity: it is the key of recorded-cost replay and of the result
        // store's timing metadata, so a duplicate would make one point's
        // schedule speak for another. Neither half is a display string —
        // metadata axes like `iters` stay out of the config label by
        // design, and one kernel legitimately appears at several problem
        // sizes in skewed grids — hence the canonical keys.
        let mut seen: HashMap<(String, String), usize> = HashMap::new();
        for (i, &(w, s)) in points.iter().enumerate() {
            let identity = (
                workload_identity(workloads[w].name(), workloads[w].elements() as u64),
                config_axes_key(resolved[s].label(), &resolved[s].axes),
            );
            if let Some(&first) = seen.get(&identity) {
                panic!(
                    "duplicate sweep point: points {first} and {i} are both \
                     workload {:?} on configuration {:?} — give the workloads \
                     distinct names or sizes, or the scenarios distinct axes",
                    identity.0, identity.1
                );
            }
            seen.insert(identity, i);
        }
        Self {
            workloads,
            scenarios,
            resolved,
            points,
        }
    }

    /// Number of experiment points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep contains no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The scenario axis, in the order grid points reference it.
    #[must_use]
    pub fn systems(&self) -> &[ScenarioConfig] {
        &self.scenarios
    }

    /// The resolved systems, parallel to [`Sweep::systems`].
    #[must_use]
    pub fn resolved_systems(&self) -> &[SystemConfig] {
        &self.resolved
    }

    /// The workload axis, in the order grid points reference it.
    #[must_use]
    pub fn workloads(&self) -> &[SharedWorkload] {
        &self.workloads
    }

    /// Starts configuring an execution of this sweep: thread count,
    /// profile-guided scheduling and the result store are independent
    /// builder knobs, finished with [`SweepRunner::run`].
    #[must_use]
    pub fn runner(&self) -> SweepRunner<'_> {
        SweepRunner {
            sweep: self,
            threads: None,
            recorded: HashMap::new(),
            store: None,
            program_cache: None,
            shard: None,
        }
    }

    /// The static cost heuristic for one point — the workload's
    /// element-operation count divided by the configuration's effective
    /// register width (`MVL / LMUL`, normalised to the 16-element
    /// baseline). A narrower effective width means more strips and
    /// therefore more dynamic instructions to simulate for the same element
    /// count, so narrow-width points (NATIVE X1, the spill-heavy RG-LMUL8)
    /// rank as expensive — matching recorded per-point wall-clock. A
    /// heuristic — it orders execution so skewed points start early, and
    /// can never change a result. Recorded costs fed through
    /// [`SweepRunner::recorded_costs`] or an attached store replace it
    /// point by point.
    #[must_use]
    pub fn point_cost(&self, point: usize) -> u64 {
        self.heuristic_cost(point)
    }

    /// The scheduling identity of one point: the workload name plus element
    /// count, and the canonical config-plus-axes key.
    fn point_identity(&self, point: usize) -> (String, String) {
        let (w, s) = self.points[point];
        (
            workload_identity(
                self.workloads[w].name(),
                self.workloads[w].elements() as u64,
            ),
            config_axes_key(self.resolved[s].label(), &self.resolved[s].axes),
        )
    }

    /// The recorded wall-clock for one point's identity, if `recorded`
    /// has seen it.
    fn recorded_cost_in(
        &self,
        point: usize,
        recorded: &HashMap<(String, String), u64>,
    ) -> Option<u64> {
        // Guarded so the common no-feedback path stays allocation-free.
        if recorded.is_empty() {
            return None;
        }
        recorded.get(&self.point_identity(point)).copied()
    }

    /// The static cost heuristic for one point (element operations over the
    /// effective width).
    fn heuristic_cost(&self, point: usize) -> u64 {
        let (w, s) = self.points[point];
        let system = &self.resolved[s];
        let elements = self.workloads[w].elements() as u64;
        let width = (system.mvl() / system.compiler_lmul.factor()) as u64;
        heuristic_points_cost(elements, width)
    }

    /// Every point's cost estimate, computed once per sweep execution:
    /// [`Workload::elements`] can be arbitrarily expensive (composite
    /// workloads sum their phases), so neither the execution-order sort nor
    /// the report assembly recomputes it per use.
    ///
    /// When recorded costs cover only part of the grid, the unseen points'
    /// heuristic estimates are rescaled by the median nanoseconds-per-
    /// heuristic-unit observed on the covered points: raw element counts
    /// and wall-clock nanoseconds are not commensurable, and without the
    /// rescale one new grid point would sort arbitrarily against every
    /// measured point. The rescale (like every cost) only orders execution
    /// and can never change a result.
    ///
    /// [`Workload::elements`]: ava_workloads::Workload::elements
    #[cfg(test)]
    fn point_costs(&self, recorded_map: &HashMap<(String, String), u64>) -> Vec<u64> {
        let owned: Vec<usize> = (0..self.points.len()).collect();
        self.scheduler(&owned, 1, recorded_map).initial_costs()
    }

    /// The claim-time scheduler for one execution over the `owned` subset
    /// of the grid: initial cost estimates from recorded timings where
    /// available (heuristics rescaled by the median recorded
    /// ns-per-heuristic-unit to fill the gaps), dealt across `workers`
    /// deques and re-ranked online as this run's own timings land.
    fn scheduler(
        &self,
        owned: &[usize],
        workers: usize,
        recorded_map: &HashMap<(String, String), u64>,
    ) -> WorkStealScheduler {
        let heuristic: Vec<u64> = owned.iter().map(|&i| self.heuristic_cost(i)).collect();
        let recorded: Vec<Option<u64>> = owned
            .iter()
            .map(|&i| self.recorded_cost_in(i, recorded_map))
            .collect();
        WorkStealScheduler::new(workers, heuristic, recorded)
    }

    /// The grid-order point indices owned by shard `index` of `of`.
    ///
    /// The partition hashes each point's canonical identity — the same
    /// stable `(workload ⊕ size, config ⊕ axes)` keys recorded-cost replay
    /// and the result store use — with the workspace's fixed FNV-1a
    /// fingerprint, so every process (or machine) computes the identical
    /// partition with no communication, and the shards are disjoint and
    /// exhaustive by construction. `shard_points(0, 1)` is the whole grid.
    ///
    /// # Panics
    ///
    /// Panics if `of` is zero or `index` is not below `of`.
    #[must_use]
    pub fn shard_points(&self, index: usize, of: usize) -> Vec<usize> {
        assert!(of >= 1, "shard count must be at least 1");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        (0..self.points.len())
            .filter(|&i| {
                let (workload, config) = self.point_identity(i);
                let mut hash = ava_workloads::Fingerprint::new();
                hash.write_str(&workload);
                hash.write_str(&config);
                (hash.finish() % of as u64) as usize == index
            })
            .collect()
    }

    /// Point indices in execution order under *fixed* costs: descending
    /// cost estimate, grid order as the tie-break. The online scheduler
    /// claims in exactly this order until its first completion lands;
    /// kept as the test oracle for the initial schedule.
    #[cfg(test)]
    fn execution_order(&self, costs: &[u64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
        order
    }

    #[cfg(test)]
    fn run_point(&self, point: usize, cache: &ProgramCache) -> RunReport {
        self.run_point_stored(point, cache, None, None).0
    }

    /// Runs one point through the shared program cache (and its optional
    /// on-disk tier), consulting `store` when attached. Returns the report
    /// and whether it came from the store.
    fn run_point_stored(
        &self,
        point: usize,
        cache: &ProgramCache,
        store: Option<&ResultStore>,
        program_cache: Option<&DiskProgramCache>,
    ) -> (RunReport, bool) {
        let (w, s) = self.points[point];
        let workload = &self.workloads[w];
        let system = &self.resolved[s];
        run_workload_stored(
            workload.as_ref(),
            system,
            &|kernel, opts| {
                let key = CacheKey {
                    workload: w,
                    mvl: system.mvl(),
                    lmul_factor: opts.lmul.factor(),
                    spill_base: opts.spill_base,
                    spill_slot_bytes: opts.spill_slot_bytes,
                };
                cache.get_or_compile(key, kernel, opts, program_cache)
            },
            store,
        )
    }
}

/// The median of a sorted slice of observations, or 1.0 when empty (the
/// heuristic is then internally consistent without rescaling).
fn sorted_median(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let mid = ratios.len() / 2;
    if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        f64::midpoint(ratios[mid - 1], ratios[mid])
    }
}

/// The two-tier work-stealing point scheduler behind [`SweepRunner::run`].
///
/// Tier one is **distribution**: the points are ranked once by descending
/// initial cost estimate (recorded wall-clock where known, the static
/// heuristic rescaled by the median recorded ns-per-heuristic-unit
/// otherwise; grid order breaks ties) and dealt round-robin into one
/// pending deque per worker, so every worker starts with a balanced mix of
/// expensive and cheap points. Tier two is **execution**: a worker claims
/// the highest-cost pending point of its *own* deque — each deque sits
/// behind its own small lock, so claims never serialise on one global
/// mutex the way the previous single-`Mutex` scheduler did — and a worker
/// whose deque runs dry *steals* the highest-cost pending point from the
/// most-loaded victim, so nobody idles while a skewed point's backlog
/// queues behind one thread.
///
/// The online re-ranking survives at the batch level: every finished point
/// feeds its measured wall-clock back as a nanoseconds-per-heuristic-unit
/// observation, and the median of all observations — seed ratios from
/// recorded costs plus everything that landed this run — is published as a
/// single atomic scale factor that each claim reads to re-rank the
/// candidates it is choosing between. Points with recorded timings keep
/// them (a measurement always beats a rescaled guess).
///
/// Cost estimates only order execution: given the same sequence of claim
/// and completion events the schedule is fully deterministic, and under
/// any timing feed, worker count or steal pattern the results are
/// bit-identical — only the schedule moves. With one worker the scheduler
/// degenerates to exactly the old global claim order (highest current
/// cost, grid order on ties).
pub struct WorkStealScheduler {
    /// Per-worker pending deques of point indices, each behind its own
    /// lock. A local claim touches exactly one shard; a steal locks only
    /// the victim's (never two shards at once, so no lock-order cycles).
    deques: Vec<Mutex<Vec<usize>>>,
    /// Deque occupancy mirrors, so victim selection scans without locking.
    /// Updated under the owning deque's lock and only ever decreasing, a
    /// stale read can overestimate a victim (harmless: the steal locks and
    /// re-checks) but never hide pending work.
    occupancy: Vec<AtomicUsize>,
    /// Static heuristic per point — the unit the median ratio rescales.
    heuristic: Vec<u64>,
    /// Recorded wall-clock per point; a recording is never rescaled.
    recorded: Vec<Option<u64>>,
    /// Bit pattern of the current median ns-per-heuristic-unit `f64`,
    /// republished on every completion and read on every claim.
    scale_bits: AtomicU64,
    /// Sorted ns-per-heuristic-unit observations (recorded seeds plus this
    /// run's completions).
    ratios: Mutex<Vec<f64>>,
    /// Claims served from another worker's deque.
    steals: AtomicU64,
}

impl WorkStealScheduler {
    /// Builds the initial schedule for `workers` deques from the static
    /// `heuristic` costs and the `recorded` wall-clock times covering part
    /// (or none) of the grid.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the slices disagree in length.
    #[must_use]
    pub fn new(workers: usize, heuristic: Vec<u64>, recorded: Vec<Option<u64>>) -> Self {
        assert!(workers >= 1, "a scheduler needs at least one worker");
        assert_eq!(heuristic.len(), recorded.len());
        let mut ratios = Vec::new();
        for (h, r) in heuristic.iter().zip(&recorded) {
            if let Some(ns) = *r {
                push_ratio(&mut ratios, *h, ns);
            }
        }
        let scale = sorted_median(&ratios);
        let scheduler = Self {
            deques: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            occupancy: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            heuristic,
            recorded,
            scale_bits: AtomicU64::new(scale.to_bits()),
            ratios: Mutex::new(ratios),
            steals: AtomicU64::new(0),
        };
        // Cost-sorted round-robin distribution: rank every point by its
        // initial estimate, then deal rank j to deque j mod workers, so
        // each worker starts with its fair share of the expensive points.
        let costs = scheduler.initial_costs();
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
        for (rank, &point) in order.iter().enumerate() {
            let deque = rank % workers;
            scheduler.deques[deque]
                .lock()
                .expect("deque poisoned")
                .push(point);
            scheduler.occupancy[deque].fetch_add(1, Ordering::Relaxed);
        }
        scheduler
    }

    /// Every point's cost estimate under the current median scale.
    fn initial_costs(&self) -> Vec<u64> {
        let scale = f64::from_bits(self.scale_bits.load(Ordering::Relaxed));
        (0..self.heuristic.len())
            .map(|i| self.cost_of(i, scale))
            .collect()
    }

    /// The current cost estimate of one point: its recorded nanoseconds if
    /// any, else the heuristic rescaled by `scale` (`f64 as u64` saturates,
    /// so a huge product — or the zero-width max-cost sentinel — stays the
    /// maximum).
    fn cost_of(&self, point: usize, scale: f64) -> u64 {
        match self.recorded[point] {
            Some(ns) => ns,
            None => ((self.heuristic[point] as f64 * scale).round() as u64).max(1),
        }
    }

    /// Removes the highest-cost entry of one locked deque under the current
    /// median (earliest position — i.e. highest initial rank — on ties),
    /// returning its point index and claim-time cost estimate.
    fn pop_best(&self, deque: &mut Vec<usize>) -> Option<(usize, u64)> {
        let scale = f64::from_bits(self.scale_bits.load(Ordering::Relaxed));
        let mut best: Option<(usize, u64)> = None;
        for (pos, &point) in deque.iter().enumerate() {
            let cost = self.cost_of(point, scale);
            if best.is_none_or(|(_, b)| cost > b) {
                best = Some((pos, cost));
            }
        }
        let (pos, cost) = best?;
        Some((deque.remove(pos), cost))
    }

    /// Claims the most expensive pending point for `worker`: from its own
    /// deque, else stolen from the most-loaded victim. Returns the point
    /// index and claim-time cost estimate, or `None` when every deque is
    /// empty (every remaining point is already claimed).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is not below the scheduler's worker count.
    pub fn claim(&self, worker: usize) -> Option<(usize, u64)> {
        {
            let mut own = self.deques[worker].lock().expect("deque poisoned");
            if let Some(claimed) = self.pop_best(&mut own) {
                self.occupancy[worker].store(own.len(), Ordering::Relaxed);
                return Some(claimed);
            }
        }
        self.steal(worker)
    }

    /// Steals the highest-cost pending point from the most-loaded victim
    /// (lowest worker index on ties). Occupancy mirrors can overestimate,
    /// so a raced-empty victim just re-runs the scan; mirrors never
    /// underestimate, so `None` means genuinely nothing left to claim.
    fn steal(&self, thief: usize) -> Option<(usize, u64)> {
        loop {
            let victim = (0..self.deques.len())
                .filter(|&w| w != thief)
                .map(|w| (self.occupancy[w].load(Ordering::Relaxed), w))
                .filter(|&(load, _)| load > 0)
                .max_by_key(|&(load, w)| (load, std::cmp::Reverse(w)))?
                .1;
            let mut deque = self.deques[victim].lock().expect("deque poisoned");
            if let Some(claimed) = self.pop_best(&mut deque) {
                self.occupancy[victim].store(deque.len(), Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(claimed);
            }
            self.occupancy[victim].store(0, Ordering::Relaxed);
        }
    }

    /// Feeds one finished point's measured wall-clock back into the
    /// schedule: its ns-per-heuristic-unit observation joins the sorted
    /// list and the republished median re-ranks every later claim.
    pub fn complete(&self, point: usize, wall_ns: u64) {
        let mut ratios = self.ratios.lock().expect("ratios poisoned");
        push_ratio(&mut ratios, self.heuristic[point], wall_ns.max(1));
        self.scale_bits
            .store(sorted_median(&ratios).to_bits(), Ordering::Relaxed);
    }

    /// Number of claims served from another worker's deque so far.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Inserts one ns-per-heuristic-unit observation into the sorted list.
/// The degenerate zero-width sentinel is not a real unit count — its ratio
/// would drag the median toward zero — so it is skipped.
fn push_ratio(ratios: &mut Vec<f64>, heuristic: u64, wall_ns: u64) {
    if heuristic == u64::MAX {
        return;
    }
    let ratio = wall_ns as f64 / heuristic.max(1) as f64;
    let pos = ratios.partition_point(|&r| r < ratio);
    ratios.insert(pos, ratio);
}

/// Builder-style execution of one [`Sweep`]: configure the thread count
/// ([`SweepRunner::threads`]), profile-guided scheduling
/// ([`SweepRunner::recorded_costs`]) and the on-disk result store
/// ([`SweepRunner::store`]) independently, then [`SweepRunner::run`].
///
/// ```no_run
/// # use ava_sim::{ResultStore, ScenarioConfig, Sweep};
/// # use ava_workloads::Axpy;
/// # let sweep = Sweep::grid(
/// #     vec![std::sync::Arc::new(Axpy::new(256))],
/// #     ScenarioConfig::all_ava(),
/// # );
/// let store = ResultStore::open("results").unwrap();
/// let first = sweep.runner().threads(4).store(&store).run();
/// // Later sweeps reuse both the stored results and the recorded timings.
/// let again = sweep
///     .runner()
///     .recorded_costs(&first)
///     .store(&store)
///     .run();
/// assert_eq!(again.store_hits, again.points.len() as u64);
/// ```
pub struct SweepRunner<'a> {
    sweep: &'a Sweep,
    threads: Option<usize>,
    recorded: HashMap<(String, String), u64>,
    store: Option<&'a ResultStore>,
    program_cache: Option<&'a DiskProgramCache>,
    shard: Option<(usize, usize)>,
}

impl<'a> SweepRunner<'a> {
    /// Caps the sweep at `threads` worker threads (further clamped to the
    /// number of points; `0` behaves like `1`). Without this the runner
    /// uses every available core.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Profile-guided scheduling: feeds a previous sweep's measured
    /// per-point wall-clock back into this run's execution order. Points
    /// whose `(workload, configuration)` identity appears in `report` are
    /// ordered by the recorded nanoseconds instead of the static
    /// [`Workload::elements`] heuristic; unseen points fall back to the
    /// heuristic, *rescaled into the recorded unit* so a new grid point
    /// sorts commensurably against the measured ones rather than
    /// arbitrarily. Calling this several times (or combining it with an
    /// attached store, whose recorded wall times join the same map) keeps
    /// the *largest* recorded time per identity, so an ambiguous point is
    /// scheduled early rather than risking it tailing the sweep. Like the
    /// heuristic, recorded costs only order execution and can never change
    /// a result.
    ///
    /// [`Workload::elements`]: ava_workloads::Workload::elements
    #[must_use]
    pub fn recorded_costs(mut self, report: &SweepReport) -> Self {
        for (p, r) in report.points.iter().zip(&report.reports) {
            let key = (
                workload_identity(&p.workload, p.elements),
                config_axes_key(&p.config, &r.axes),
            );
            let entry = self.recorded.entry(key).or_insert(0);
            *entry = (*entry).max(p.wall_ns.max(1));
        }
        self
    }

    /// Attaches the on-disk result store: points with a usable entry are
    /// served from it instead of being simulated, every freshly simulated
    /// point is checkpointed into it as it finishes, and the store's
    /// recorded wall times seed the execution order (largest time wins when
    /// they overlap with [`SweepRunner::recorded_costs`]).
    #[must_use]
    pub fn store(mut self, store: &'a ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Restricts this execution to shard `index` of `of` equal slices of
    /// the grid ([`Sweep::shard_points`]): every process hashing the same
    /// point identities computes the same partition, so `of` independent
    /// processes — or machines sharing one store directory — cover the grid
    /// exactly once with no communication. The returned report holds only
    /// the shard's own points (in grid order); run the full grid afterwards
    /// with an attached [`SweepRunner::store`] to assemble the complete
    /// report from all-hits.
    ///
    /// # Panics
    ///
    /// Panics if `of` is zero or `index` is not below `of`.
    #[must_use]
    pub fn shard(mut self, index: usize, of: usize) -> Self {
        assert!(of >= 1, "shard count must be at least 1");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        self.shard = Some((index, of));
        self
    }

    /// Attaches the persistent on-disk program cache: compilations the
    /// in-memory per-sweep cache misses are served from `cache` when a
    /// usable entry exists, and every fresh compilation is checkpointed
    /// into it. A warm cache serves a whole sweep with zero compilations
    /// ([`SweepReport::compiles`]); corrupted or version-drifted entries
    /// degrade to misses and are overwritten in place.
    #[must_use]
    pub fn program_cache(mut self, cache: &'a DiskProgramCache) -> Self {
        self.program_cache = Some(cache);
        self
    }

    /// Explicit recorded costs and the store's recorded wall times,
    /// max-merged into one scheduling map.
    fn merged_recorded(&self) -> HashMap<(String, String), u64> {
        let mut recorded = self.recorded.clone();
        if let Some(store) = self.store {
            for (key, wall_ns) in store.recorded_costs() {
                let entry = recorded.entry(key).or_insert(0);
                *entry = (*entry).max(wall_ns);
            }
        }
        recorded
    }

    /// The per-point cost estimates this run will *start* scheduling by:
    /// recorded costs where known, heuristics rescaled to fill the gaps.
    /// The online scheduler then re-ranks still-pending points as measured
    /// timings land during the run.
    #[cfg(test)]
    fn effective_costs(&self) -> Vec<u64> {
        self.sweep.point_costs(&self.merged_recorded())
    }

    /// Executes the sweep. Results come back in point order and are
    /// bit-identical at any thread count, with or without a store, and
    /// under any cost estimates.
    #[must_use]
    pub fn run(self) -> SweepReport {
        let sweep = self.sweep;
        // The points this execution owns, in grid order. `local` indices
        // below index into this list; `owned[local]` is the grid index.
        let owned: Vec<usize> = match self.shard {
            Some((index, of)) => sweep.shard_points(index, of),
            None => (0..sweep.points.len()).collect(),
        };
        let n = owned.len();
        let requested = self.threads.unwrap_or_else(|| {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        let workers = requested.clamp(1, n.max(1));
        let cache = ProgramCache::new();
        let scheduler = sweep.scheduler(&owned, workers, &self.merged_recorded());
        let store = self.store;
        let program_cache = self.program_cache;
        let sweep_start = Instant::now();
        // (report, from_store, wall_ns, worker, claim-time cost estimate)
        type PointSlot = (RunReport, bool, u64, usize, u64);
        let slots: Vec<OnceLock<PointSlot>> = (0..n).map(|_| OnceLock::new()).collect();
        let work = |worker: usize| {
            while let Some((local, cost)) = scheduler.claim(worker) {
                let point_start = Instant::now();
                let (report, from_store) =
                    sweep.run_point_stored(owned[local], &cache, store, program_cache);
                let wall_ns = point_start.elapsed().as_nanos() as u64;
                scheduler.complete(local, wall_ns);
                slots[local]
                    .set((report, from_store, wall_ns, worker, cost))
                    .expect("each point is claimed by one worker");
            }
        };
        if workers == 1 {
            work(0);
        } else {
            thread::scope(|scope| {
                for worker in 0..workers {
                    let work = &work;
                    scope.spawn(move || work(worker));
                }
            });
        }

        let mut reports = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        for (local, slot) in slots.into_iter().enumerate() {
            let (report, from_store, wall_ns, worker, cost_estimate) =
                slot.into_inner().expect("every point completed");
            points.push(PointStats {
                workload: report.workload.clone(),
                config: report.config.clone(),
                cost_estimate,
                elements: sweep.workloads[sweep.points[owned[local]].0].elements() as u64,
                wall_ns,
                worker,
                from_store,
            });
            reports.push(report);
        }
        let store_hits = points.iter().filter(|p| p.from_store).count() as u64;
        let store_misses = if store.is_some() {
            n as u64 - store_hits
        } else {
            0
        };
        SweepReport {
            reports,
            points,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_disk_hits: cache.disk_hits(),
            cache_disk_misses: cache.disk_misses(),
            compiles: cache.compiles(),
            store_hits,
            store_misses,
            threads: workers,
            steals: scheduler.steals(),
            shard: self.shard,
            wall_ns: sweep_start.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::{Axpy, Blackscholes, Workload};

    fn small_scenarios() -> Vec<ScenarioConfig> {
        vec![
            ScenarioConfig::native_x(1),
            ScenarioConfig::ava_x(2),
            ScenarioConfig::rg_lmul(Lmul::M4),
        ]
    }

    fn small_axes() -> (Vec<SharedWorkload>, Vec<ScenarioConfig>) {
        let workloads: Vec<SharedWorkload> =
            vec![Arc::new(Axpy::new(256)), Arc::new(Blackscholes::new(64))];
        (workloads, small_scenarios())
    }

    fn no_recorded() -> HashMap<(String, String), u64> {
        HashMap::new()
    }

    #[test]
    fn grid_is_workload_major_and_complete() {
        let (w, s) = small_axes();
        let reports = Sweep::grid(w, s).runner().threads(1).run().into_reports();
        assert_eq!(reports.len(), 6);
        assert_eq!(reports[0].workload, "axpy");
        assert_eq!(reports[2].workload, "axpy");
        assert_eq!(reports[3].workload, "blackscholes");
        assert_eq!(reports[0].config, "NATIVE X1");
        assert_eq!(reports[4].config, "AVA X2");
        assert!(reports.iter().all(|r| r.validated));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);
        let serial = sweep.runner().threads(1).run().into_reports();
        for threads in [2, 7] {
            let parallel = sweep.runner().threads(threads).run().into_reports();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.cycles, b.cycles, "{} on {}", a.workload, a.config);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "full report must match");
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate sweep point")]
    fn duplicate_point_identities_are_rejected_at_construction() {
        // Two workloads with the same name() crossed with one scenario are
        // indistinguishable to recorded-cost replay and the result store.
        let workloads: Vec<SharedWorkload> =
            vec![Arc::new(Axpy::new(256)), Arc::new(Axpy::new(256))];
        let _ = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
    }

    #[test]
    fn metadata_axes_disambiguate_identical_labels() {
        // with_iters stays out of the config label by design, so these two
        // scenarios *display* identically — but the axes make their point
        // identities distinct, so the grid is accepted.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let scenarios = vec![
            ScenarioConfig::ava_x(2).with_iters(2),
            ScenarioConfig::ava_x(2).with_iters(4),
        ];
        assert_eq!(scenarios[0].label(), scenarios[1].label());
        let sweep = Sweep::grid(workloads, scenarios);
        assert_ne!(sweep.point_identity(0), sweep.point_identity(1));
    }

    #[test]
    fn execution_order_starts_with_the_most_expensive_point() {
        let workloads: Vec<SharedWorkload> = vec![
            Arc::new(Axpy::new(64)),
            Arc::new(Blackscholes::new(4096)),
            Arc::new(ava_workloads::Somier::new(16)),
        ];
        let systems = vec![ScenarioConfig::native_x(1)];
        let sweep = Sweep::grid(workloads, systems);
        let order = sweep.execution_order(&sweep.point_costs(&no_recorded()));
        assert_eq!(order[0], 1, "the huge Blackscholes point must start first");
        assert_eq!(
            sweep.point_cost(1),
            sweep
                .point_cost(1)
                .max(sweep.point_cost(0))
                .max(sweep.point_cost(2))
        );
    }

    #[test]
    fn recorded_costs_reorder_execution_without_changing_results() {
        // The static heuristic ranks the big Blackscholes first; recorded
        // wall-clock claiming Axpy is the slow point must flip the order —
        // and the reports must stay bit-identical either way.
        let workloads: Vec<SharedWorkload> =
            vec![Arc::new(Axpy::new(128)), Arc::new(Blackscholes::new(1024))];
        let systems = vec![ScenarioConfig::native_x(1)];
        let sweep = Sweep::grid(workloads, systems);
        let baseline = sweep.runner().threads(1).run();
        assert_eq!(
            sweep.execution_order(&sweep.point_costs(&no_recorded())),
            vec![1, 0]
        );

        // Forge a report claiming the Axpy point took far longer.
        let mut forged = baseline.clone();
        forged.points[0].wall_ns = 1_000_000_000;
        forged.points[1].wall_ns = 1_000;
        let tuned = sweep.runner().recorded_costs(&forged);
        let costs = tuned.effective_costs();
        assert_eq!(costs, vec![1_000_000_000, 1_000]);
        assert_eq!(sweep.execution_order(&costs), vec![0, 1]);

        let retimed = tuned.threads(2).run();
        for (a, b) in baseline.reports.iter().zip(&retimed.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "results must not move");
        }
        // The recorded costs surface as the new points' cost estimates.
        assert_eq!(retimed.points[0].cost_estimate, 1_000_000_000);
    }

    #[test]
    fn recorded_costs_key_on_axes_not_just_labels() {
        // Two scenarios sharing one display label (the iters metadata axis
        // stays out of it) must not alias in recorded-cost replay.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let scenarios = vec![
            ScenarioConfig::ava_x(2).with_iters(2),
            ScenarioConfig::ava_x(2).with_iters(4),
        ];
        let sweep = Sweep::grid(workloads, scenarios);
        let mut forged = sweep.runner().threads(1).run();
        forged.points[0].wall_ns = 9_000;
        forged.points[1].wall_ns = 70;
        let costs = sweep.runner().recorded_costs(&forged).effective_costs();
        assert_eq!(
            costs,
            vec![9_000, 70],
            "label-only keying would have max-merged both points to 9000"
        );
    }

    #[test]
    fn heuristic_cost_guards_the_degenerate_zero_width() {
        // A degenerate scenario override yielding effective width 0 must
        // not panic the sweep with a division by zero: the point reports
        // the max-cost sentinel and is simply scheduled first.
        assert_eq!(heuristic_points_cost(100, 0), u64::MAX);
        // The regular path is unchanged: elements * 16 / width, floored.
        assert_eq!(heuristic_points_cost(1024, 16), 1024);
        assert_eq!(heuristic_points_cost(0, 64), 1);
        // Huge element counts saturate instead of overflowing.
        assert_eq!(heuristic_points_cost(u64::MAX, 1), u64::MAX);
    }

    #[test]
    fn unseen_labels_are_rescaled_into_the_recorded_unit() {
        // One recorded point (wall-clock nanoseconds) and one unseen point
        // (element-count heuristic): the raw units are not commensurable.
        // NATIVE X1 is heuristically the *more* expensive point (narrower
        // effective width), so after rescaling it must still sort first —
        // comparing the raw heuristic against the raw nanoseconds would
        // have flipped the order.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(4096))];
        let recorded_grid = Sweep::grid(workloads.clone(), vec![ScenarioConfig::native_x(1)]);
        let mut forged = recorded_grid.runner().threads(1).run();
        forged.points[0].wall_ns = 50;

        let sweep = Sweep::grid(
            workloads,
            vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(2)],
        );
        let runner = sweep.runner().recorded_costs(&forged);
        // Heuristics: X1 = 4096*4*16/16 = 16384, X2 (width 32) = 8192.
        assert_eq!(sweep.heuristic_cost(0), 16384);
        assert_eq!(sweep.heuristic_cost(1), 8192);
        let costs = runner.effective_costs();
        // The recorded point keeps its nanoseconds; the unseen point's
        // heuristic is scaled by 50 ns / 16384 units ≈ 0.00305..., i.e.
        // 8192 * 50 / 16384 = 25 ns.
        assert_eq!(costs, vec![50, 25]);
        assert_eq!(
            sweep.execution_order(&costs),
            vec![0, 1],
            "the heuristically-narrower X1 point must still be scheduled \
             first; raw unit mixing would have ranked the unseen point's \
             8192 'elements' above 50 ns"
        );
        // And, like every cost, the rescale cannot move a result.
        let reports = runner.threads(2).run().into_reports();
        assert!(reports.iter().all(|r| r.validated));
        assert_eq!(reports[0].config, "NATIVE X1");
        assert_eq!(reports[1].config, "AVA X2");
    }

    #[test]
    fn recorded_costs_fall_back_to_the_heuristic_for_unseen_labels() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads.clone(), vec![ScenarioConfig::native_x(1)]);
        let report = sweep.runner().threads(1).run();
        // A different grid (new config label) keeps the heuristic.
        let other = Sweep::grid(workloads, vec![ScenarioConfig::ava_x(2)]);
        let costs = other.runner().recorded_costs(&report).effective_costs();
        assert_eq!(other.point_cost(0), costs[0]);
        assert_eq!(
            other.point_cost(0),
            (Axpy::new(128).elements() as u64 * 16 / 32).max(1),
            "unseen label must use elements() over the effective width"
        );
    }

    #[test]
    fn point_stats_carry_raw_element_counts() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let report = sweep.runner().threads(1).run();
        assert_eq!(report.points[0].elements, Axpy::new(128).elements() as u64);
        assert!(report.to_json().to_string().contains("\"elements\":"));
    }

    #[test]
    fn cost_ties_break_on_grid_order() {
        // NATIVE X2 and AVA X2 expose the same MVL and LMUL, so both points
        // carry identical heuristic costs; the order must still be
        // deterministic (grid order).
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let scenarios = vec![ScenarioConfig::native_x(2), ScenarioConfig::ava_x(2)];
        let sweep = Sweep::grid(workloads, scenarios);
        let costs = sweep.point_costs(&no_recorded());
        assert_eq!(costs[0], costs[1], "the tie this test is about");
        assert_eq!(sweep.execution_order(&costs), vec![0, 1]);
    }

    #[test]
    fn report_instrumentation_covers_every_point() {
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);
        let report = sweep.runner().threads(3).run();
        assert_eq!(report.reports.len(), 6);
        assert_eq!(report.points.len(), 6);
        assert_eq!(report.threads, 3);
        assert!(report.wall_ns > 0);
        assert!(report.busy_ns() > 0);
        for (p, r) in report.points.iter().zip(&report.reports) {
            assert_eq!(p.workload, r.workload, "stats stay parallel to reports");
            assert_eq!(p.config, r.config);
            assert!(p.cost_estimate > 0);
            assert!(p.worker < 3);
            assert!(!p.from_store, "no store was attached");
        }
        // No store attached: store counters stay at zero.
        assert_eq!(report.store_hits, 0);
        assert_eq!(report.store_misses, 0);
        // The shared cache was exercised: every compile is a hit or a miss.
        assert!(report.cache_misses > 0);
        assert_eq!(
            report.cache_hits + report.cache_misses,
            6,
            "one compile request per point"
        );
    }

    #[test]
    fn single_threaded_runs_use_one_worker_and_match_parallel() {
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);
        let serial = sweep.runner().threads(1).run();
        assert_eq!(serial.threads, 1);
        assert!(serial.points.iter().all(|p| p.worker == 0));
        let parallel = sweep.runner().threads(4).run();
        for (a, b) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn equivalent_configurations_share_one_compilation() {
        // NATIVE X2 and AVA X2 expose the same MVL and LMUL, so the second
        // run of the same workload must hit the cache.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let systems = vec![ScenarioConfig::native_x(2), ScenarioConfig::ava_x(2)];
        let sweep = Sweep::grid(workloads, systems);
        let cache = ProgramCache::new();
        let a = sweep.run_point(0, &cache);
        let b = sweep.run_point(1, &cache);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // And the cached compile feeds a report identical to a fresh one.
        assert_eq!(
            b.cycles,
            crate::run::run_workload(sweep.workloads[0].as_ref(), &sweep.scenarios[1]).cycles
        );
        assert!(a.validated && b.validated);
    }

    #[test]
    fn distinct_lmuls_do_not_share_compilations() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Blackscholes::new(64))];
        let systems = vec![
            ScenarioConfig::native_x(8),
            ScenarioConfig::rg_lmul(Lmul::M8),
        ];
        let sweep = Sweep::grid(workloads, systems);
        let cache = ProgramCache::new();
        let _ = sweep.run_point(0, &cache);
        let _ = sweep.run_point(1, &cache);
        assert_eq!(
            cache.misses(),
            2,
            "LMUL=1 and LMUL=8 need different spill code"
        );
    }

    #[test]
    fn explicit_points_run_in_declared_order() {
        let (w, s) = small_axes();
        let sweep = Sweep::from_points(w, s, vec![(1, 2), (0, 0), (1, 0)]);
        let reports = sweep.runner().threads(2).run().into_reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].workload, "blackscholes");
        assert_eq!(reports[0].config, "RG-LMUL4");
        assert_eq!(reports[1].workload, "axpy");
        assert_eq!(reports[2].workload, "blackscholes");
        assert_eq!(reports[2].config, "NATIVE X1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_points_are_rejected() {
        let (w, s) = small_axes();
        let _ = Sweep::from_points(w, s, vec![(0, 99)]);
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let report = sweep.runner().threads(0).run();
        assert_eq!(report.threads, 1);
        assert_eq!(report.reports.len(), 1);
        assert!(report.reports[0].validated);
    }

    #[test]
    fn sweep_report_json_has_the_documented_shape() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let json = sweep.runner().threads(2).run().to_json().to_string();
        assert!(json.starts_with("{\"schema\":\"ava-sweep-report/v1\""));
        assert!(json.contains("\"cache\":{\"hits\":"));
        assert!(json.contains("\"store\":{\"hits\":0,\"misses\":0}"));
        assert!(json.contains("\"steals\":"));
        assert!(json.contains("\"shard\":null"), "unsharded runs emit null");
        assert!(json.contains("\"cost_estimate\":"));
        assert!(json.contains("\"from_store\":false"));
        assert!(json.contains("\"report\":{\"config\":\"NATIVE X1\""));
    }

    #[test]
    fn scenario_axes_flow_into_reports_and_json() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let scenarios = ScenarioConfig::axis_l2_kib(
            &[ScenarioConfig::native_x(1), ScenarioConfig::ava_x(2)],
            &[512, 1024],
        );
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(2).run();
        assert_eq!(report.reports.len(), 4);
        assert_eq!(report.axis_names(), vec!["l2_kib"]);
        assert_eq!(report.reports[1].config, "NATIVE X1 l2=1024KiB");
        assert_eq!(report.reports[1].axes.len(), 1);
        assert_eq!(report.reports[1].axes[0].value, 1024);
        let json = report.to_json().to_string();
        assert!(json.contains("\"axes\":[\"l2_kib\"]"));
        assert!(json.contains("\"axes\":{\"l2_kib\":512}"));
    }

    #[test]
    fn scheduler_rescales_pending_points_as_results_land() {
        // Three unmeasured points; the initial order is by raw heuristic.
        let s = WorkStealScheduler::new(1, vec![1000, 100, 10], vec![None, None, None]);
        assert_eq!(s.claim(0), Some((0, 1000)));
        // Point 0 finishing at 10 ns per heuristic unit rescales the rest.
        s.complete(0, 10_000);
        assert_eq!(s.claim(0), Some((1, 1000)), "100 units * 10 ns/unit");
        // A second, slower observation moves the median to 255 ns/unit.
        s.complete(1, 50_000);
        assert_eq!(s.claim(0), Some((2, 2550)));
        s.complete(2, 1);
        assert_eq!(s.claim(0), None, "all points claimed exactly once");
        assert_eq!(s.steals(), 0, "one worker has nobody to steal from");
    }

    #[test]
    fn scheduler_never_rescales_measured_points() {
        // Point 0 carries a recorded timing (100 ns over 100 units seeds a
        // 1 ns/unit median), point 1 starts from the rescaled heuristic.
        let s = WorkStealScheduler::new(1, vec![100, 100], vec![Some(100), None]);
        assert_eq!(s.initial_costs(), vec![100, 100]);
        // Grid order breaks the tie; the claim-time cost is the recording.
        assert_eq!(s.claim(0), Some((0, 100)));
        // The measured point finishing far slower than recorded re-ranks
        // the unmeasured point, never the recording itself.
        s.complete(0, 300_000);
        assert_eq!(
            s.claim(0),
            Some((1, 150_050)),
            "median of ratios [1, 3000] is 1500.5 ns/unit"
        );
    }

    #[test]
    fn scheduler_is_deterministic_given_the_same_timings() {
        let feed = [(50_u64, 7_000_u64), (8, 100), (300, 2)];
        let run = || {
            let s = WorkStealScheduler::new(1, vec![50, 8, 300], vec![None, None, None]);
            let mut order = Vec::new();
            while let Some((i, cost)) = s.claim(0) {
                order.push((i, cost));
                s.complete(i, feed[i].1);
            }
            order
        };
        assert_eq!(run(), run(), "same timings feed, same schedule");
        assert_eq!(run()[0], (2, 300), "initial claim follows the heuristic");
    }

    #[test]
    fn scheduler_deals_points_round_robin_by_descending_cost() {
        // Rank order is 0,1,2,3; two workers deal ranks alternately, so
        // worker 0 owns {0, 2} and worker 1 owns {1, 3} — each deque gets
        // its fair share of the expensive points.
        let s = WorkStealScheduler::new(2, vec![40, 30, 20, 10], vec![None; 4]);
        assert_eq!(s.claim(0), Some((0, 40)));
        assert_eq!(s.claim(1), Some((1, 30)));
        assert_eq!(s.claim(0), Some((2, 20)));
        assert_eq!(s.claim(1), Some((3, 10)));
        assert_eq!(s.claim(0), None);
        assert_eq!(s.steals(), 0, "both workers stayed on their own deques");
    }

    #[test]
    fn an_idle_worker_steals_the_highest_cost_pending_point() {
        // Worker 1 drains its own deque {1, 3}, then must steal from
        // worker 0's {0, 2} — highest cost first.
        let s = WorkStealScheduler::new(2, vec![40, 30, 20, 10], vec![None; 4]);
        assert_eq!(s.claim(1), Some((1, 30)));
        assert_eq!(s.claim(1), Some((3, 10)));
        assert_eq!(s.claim(1), Some((0, 40)), "steals the most expensive");
        assert_eq!(s.claim(1), Some((2, 20)));
        assert_eq!(s.claim(1), None);
        assert_eq!(s.steals(), 2);
    }

    #[test]
    fn steals_come_from_the_most_loaded_victim() {
        // Three workers: deques {0, 3}, {1, 4}, {2, 5}. Worker 2 drains its
        // own deque, worker 0 claims once leaving loads (1, 2) — the steal
        // must hit worker 1, the most-loaded victim.
        let s = WorkStealScheduler::new(3, vec![60, 50, 40, 30, 20, 10], vec![None; 6]);
        assert_eq!(s.claim(2), Some((2, 40)));
        assert_eq!(s.claim(2), Some((5, 10)));
        assert_eq!(s.claim(0), Some((0, 60)));
        assert_eq!(s.claim(2), Some((1, 50)), "victim is worker 1 (load 2)");
        assert_eq!(s.steals(), 1);
    }

    #[test]
    fn the_zero_width_sentinel_never_feeds_the_median() {
        // A max-cost sentinel point schedules first, and its completion is
        // excluded from the ratio pool — its "heuristic units" are not a
        // real count and would drag the median toward zero.
        let s = WorkStealScheduler::new(1, vec![u64::MAX, 10], vec![None, None]);
        assert_eq!(s.claim(0), Some((0, u64::MAX)));
        s.complete(0, 5);
        assert_eq!(s.claim(0), Some((1, 10)), "median stayed at 1.0 ns/unit");
    }

    fn temp_program_cache(tag: &str) -> DiskProgramCache {
        let dir =
            std::env::temp_dir().join(format!("ava-progcache-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskProgramCache::open(dir).unwrap()
    }

    #[test]
    fn a_warm_program_cache_serves_a_sweep_with_zero_compilations() {
        let disk = temp_program_cache("warm");
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);

        let cold = sweep.runner().threads(2).program_cache(&disk).run();
        assert_eq!(cold.cache_hits + cold.cache_misses, 6);
        assert_eq!(cold.cache_disk_hits, 0, "cold cache cannot hit");
        assert_eq!(cold.cache_disk_misses, cold.cache_misses);
        assert_eq!(cold.compiles, cold.cache_misses);
        assert!(!disk.is_empty(), "cold run checkpoints its compilations");

        let warm = sweep.runner().threads(2).program_cache(&disk).run();
        assert_eq!(warm.compiles, 0, "warm rerun compiles nothing");
        assert_eq!(warm.cache_disk_hits, warm.cache_misses);
        assert_eq!(warm.cache_disk_misses, 0);
        for (a, b) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "cached = compiled");
        }
        let _ = std::fs::remove_dir_all(disk.dir());
    }

    #[test]
    fn a_program_cache_attached_sweep_is_bit_identical_to_a_cacheless_one() {
        let disk = temp_program_cache("bitident");
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);
        let plain = sweep.runner().threads(1).run();
        assert_eq!(plain.cache_disk_hits + plain.cache_disk_misses, 0);
        assert_eq!(plain.compiles, plain.cache_misses, "no disk tier attached");
        let cached = sweep.runner().threads(1).program_cache(&disk).run();
        // Warm pass exercises the deserialization path end to end.
        let warm = sweep.runner().threads(1).program_cache(&disk).run();
        assert_eq!(warm.compiles, 0);
        for ((a, b), c) in plain.reports.iter().zip(&cached.reports).zip(&warm.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(format!("{a:?}"), format!("{c:?}"));
        }
        let _ = std::fs::remove_dir_all(disk.dir());
    }

    #[test]
    fn corrupted_program_cache_entries_degrade_to_recompilation() {
        let disk = temp_program_cache("corrupt");
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let cold = sweep.runner().threads(1).program_cache(&disk).run();
        assert_eq!(cold.compiles, 1);
        // Truncate every entry: the warm run must recompile, not crash,
        // and self-repair the entries for the run after it.
        for entry in std::fs::read_dir(disk.dir()).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        }
        let repaired = sweep.runner().threads(1).program_cache(&disk).run();
        assert_eq!(repaired.compiles, 1, "corrupted entry recompiles");
        assert_eq!(repaired.cache_disk_hits, 0);
        let warm = sweep.runner().threads(1).program_cache(&disk).run();
        assert_eq!(warm.compiles, 0, "self-repaired entry hits again");
        for (a, b) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        let _ = std::fs::remove_dir_all(disk.dir());
    }

    #[test]
    fn a_store_serves_the_second_run_without_simulating() {
        let dir = std::env::temp_dir().join(format!(
            "ava-store-sweep-unit-{}",
            std::process::id() // one test uses this tag; pid suffices
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let (w, s) = small_axes();
        let sweep = Sweep::grid(w, s);

        let cold = sweep.runner().threads(2).store(&store).run();
        assert_eq!(cold.store_hits, 0);
        assert_eq!(cold.store_misses, 6);
        assert_eq!(store.len(), 6);

        let warm = sweep.runner().threads(2).store(&store).run();
        assert_eq!(warm.store_hits, 6);
        assert_eq!(warm.store_misses, 0);
        assert!(warm.points.iter().all(|p| p.from_store));
        for (a, b) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "stored = simulated");
        }
        // And a run *without* the store still simulates identically.
        let fresh = sweep.runner().threads(1).run();
        for (a, b) in fresh.reports.iter().zip(&warm.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
