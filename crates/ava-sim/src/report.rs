//! Small reporting helpers shared by the benchmark binaries and examples.

use crate::run::RunReport;
use crate::sweep::SweepReport;

/// Speedup of every run relative to the run whose configuration label is
/// `baseline` (the paper normalises to NATIVE X1). Returns
/// `(label, speedup)` pairs in input order.
///
/// # Panics
///
/// Panics if `baseline` is not among the reports.
#[must_use]
pub fn speedup_vs<'a>(reports: &'a [RunReport], baseline: &str) -> Vec<(&'a str, f64)> {
    let base = reports
        .iter()
        .find(|r| r.config == baseline)
        .unwrap_or_else(|| panic!("baseline configuration {baseline} not present"))
        .cycles as f64;
    reports
        .iter()
        .map(|r| (r.config.as_str(), base / r.cycles as f64))
        .collect()
}

/// Geometric mean of a set of strictly positive values (used for the
/// average-speedup summaries).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty set");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Formats a set of runs as an aligned text table (one row per run) listing
/// cycles, speedup vs the given baseline, instruction breakdown and
/// validation status. Used by the figure-regeneration binaries.
#[must_use]
pub fn format_runs_table(reports: &[RunReport], baseline: &str) -> String {
    let speedups = speedup_vs(reports, baseline);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>12} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6}\n",
        "config",
        "cycles",
        "speedup",
        "vload",
        "vstore",
        "spill-ld",
        "spill-st",
        "swap-ld",
        "swap-st",
        "%mem",
        "ok"
    ));
    for (r, (_, s)) in reports.iter().zip(speedups.iter()) {
        out.push_str(&format!(
            "{:<12} {:>12} {:>8.2} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>5.1}% {:>6}\n",
            r.config,
            r.cycles,
            s,
            r.vpu.vloads,
            r.vpu.vstores,
            r.vpu.spill_loads,
            r.vpu.spill_stores,
            r.vpu.swap_loads,
            r.vpu.swap_stores,
            100.0 * r.vpu.memory_fraction(),
            if r.validated { "yes" } else { "NO" },
        ));
    }
    out
}

/// One-line execution summary of a sweep: shard (when restricted), points,
/// threads, wall/busy time, compile-cache traffic, work-steal count and
/// (when a store was attached) how many points the result store served.
/// Printed by the benchmark binaries under `--threads`, `--shard` and
/// `--store` so incremental runs show what they skipped.
#[must_use]
pub fn format_sweep_summary(report: &SweepReport) -> String {
    let mut out = String::new();
    if let Some((index, of)) = report.shard {
        out.push_str(&format!("shard {index}/{of}: "));
    }
    out.push_str(&format!(
        "{} points on {} thread{} in {:.1} ms (busy {:.1} ms); compile cache {} hit / {} miss",
        report.points.len(),
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.wall_ns as f64 / 1e6,
        report.busy_ns() as f64 / 1e6,
        report.cache_hits,
        report.cache_misses,
    ));
    if report.steals > 0 {
        out.push_str(&format!(
            "; {} steal{}",
            report.steals,
            if report.steals == 1 { "" } else { "s" }
        ));
    }
    if report.store_hits + report.store_misses > 0 {
        out.push_str(&format!(
            "; store served {} of {}",
            report.store_hits,
            report.store_hits + report.store_misses
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ScenarioConfig;
    use crate::run::run_workload;
    use crate::sweep::Sweep;
    use ava_workloads::{Axpy, SharedWorkload};
    use std::sync::Arc;

    fn two_reports() -> Vec<RunReport> {
        let w = Axpy::new(256);
        vec![
            run_workload(&w, &ScenarioConfig::native_x(1)),
            run_workload(&w, &ScenarioConfig::native_x(4)),
        ]
    }

    #[test]
    fn speedups_are_relative_to_the_baseline() {
        let reports = two_reports();
        let s = speedup_vs(&reports, "NATIVE X1");
        assert_eq!(s[0].1, 1.0);
        assert!(s[1].1 > 1.0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn unknown_baseline_panics() {
        let reports = two_reports();
        let _ = speedup_vs(&reports, "NATIVE X9");
    }

    #[test]
    fn geometric_mean_of_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geometric_mean_rejects_empty_input() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    fn sweep_summary_mentions_the_store_only_when_attached() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let summary = format_sweep_summary(&sweep.runner().threads(1).run());
        assert!(summary.contains("1 point"));
        assert!(summary.contains("compile cache"));
        assert!(!summary.contains("store served"));

        let mut with_store = sweep.runner().threads(1).run();
        with_store.store_hits = 1;
        assert!(format_sweep_summary(&with_store).contains("store served 1 of 1"));
    }

    #[test]
    fn sweep_summary_mentions_shards_and_steals_when_present() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(128))];
        let sweep = Sweep::grid(workloads, vec![ScenarioConfig::native_x(1)]);
        let plain = sweep.runner().threads(1).run();
        let summary = format_sweep_summary(&plain);
        assert!(!summary.contains("shard"), "whole-grid runs stay terse");
        assert!(!summary.contains("steal"), "serial runs cannot steal");

        let mut forged = plain;
        forged.shard = Some((1, 4));
        forged.steals = 1;
        let summary = format_sweep_summary(&forged);
        assert!(summary.starts_with("shard 1/4: "));
        assert!(summary.contains("; 1 steal"));
    }

    #[test]
    fn table_lists_every_configuration_and_flags_validation() {
        let reports = two_reports();
        let table = format_runs_table(&reports, "NATIVE X1");
        assert!(table.contains("NATIVE X1"));
        assert!(table.contains("NATIVE X4"));
        assert!(table.contains("yes"));
        assert!(!table.contains(" NO"));
    }
}
