//! The content-addressed on-disk result store behind incremental sweeps.
//!
//! Every simulated point of a sweep is a pure function of three things: the
//! *content* of the work (the compiled program bytes, the planned data
//! layout and the golden reference, folded into one stable
//! [`Fingerprint`]), the *resolved scenario* it runs on (display label plus
//! every recorded axis) and the *code version* of the simulator itself.
//! [`StoreKey`] captures exactly that triple, and [`ResultStore`] maps it to
//! the full [`RunReport`] of the run, serialized through [`crate::json`] and
//! parsed back bit-identically with [`RunReport::from_json`].
//!
//! The store is an ordinary directory of one JSON document per point.
//! Writes go through a temp-file-plus-rename so a killed process never
//! leaves a half-written entry under a final name, and *every* failure mode
//! on the read side — missing file, unreadable file, malformed JSON, schema
//! or version drift, key mismatch from a filename hash collision, truncated
//! report — degrades to a plain miss: the point is simply simulated again
//! and the entry overwritten. A sweep pointed at a store therefore
//! checkpoints itself as workers finish, resumes where it was killed, and
//! re-simulates only the points whose fingerprints changed.
//!
//! Entries also record the wall-clock time of the original run; a sweep
//! consults [`ResultStore::recorded_costs`] to start its historically
//! slowest points first (the recorded-cost rescaling of the scheduler
//! absorbs the ns-vs-heuristic unit mixing).
//!
//! ```no_run
//! use ava_sim::{ResultStore, ScenarioConfig, Sweep};
//! use ava_workloads::Axpy;
//!
//! let store = ResultStore::open("results").unwrap();
//! let sweep = Sweep::grid(
//!     vec![std::sync::Arc::new(Axpy::new(4096))],
//!     ScenarioConfig::all_evaluated(),
//! );
//! // First run simulates and checkpoints; the second is served entirely
//! // from disk.
//! let cold = sweep.runner().store(&store).run();
//! assert_eq!(cold.store_misses, cold.points.len() as u64);
//! let warm = sweep.runner().store(&store).run();
//! assert_eq!(warm.store_hits, warm.points.len() as u64);
//! ```

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ava_workloads::Fingerprint;

use crate::configs::{
    axes_from_json, axes_to_json, config_axes_key, workload_identity, Axis, SystemConfig,
};
use crate::json::{object, parse, Json};
use crate::run::RunReport;

/// The code-version component of every store key. Bumped implicitly by
/// every release: results computed by one simulator version are never
/// served to another, because any model change — even one the fingerprint
/// cannot see, like a cache-replacement tweak — may change every counter.
pub const CODE_VERSION: &str = concat!("ava-", env!("CARGO_PKG_VERSION"), "+store.v1");

/// The identity of one stored result: which workload content ran on which
/// resolved scenario under which simulator version.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreKey {
    /// Workload name ("axpy", "pipelined", ...).
    pub workload: String,
    /// Workload element count — together with the name this is the sweep
    /// scheduler's workload identity, so the recorded timings of one kernel
    /// run at several problem sizes stay separate.
    pub elements: u64,
    /// Resolved scenario display label ("AVA X4", ...).
    pub config: String,
    /// Every recorded scenario axis, including pure-metadata axes like
    /// `iters` that deliberately stay out of the label.
    pub axes: Vec<Axis>,
    /// Content fingerprint over the compiled program, planned layout and
    /// golden reference.
    pub fingerprint: u64,
}

impl StoreKey {
    /// The key for `workload`'s content `fingerprint` on `system`.
    #[must_use]
    pub fn new(workload: &str, elements: u64, system: &SystemConfig, fingerprint: u64) -> Self {
        Self {
            workload: workload.to_string(),
            elements,
            config: system.label().to_string(),
            axes: system.axes.clone(),
            fingerprint,
        }
    }

    /// The entry file name: a sanitized workload prefix for human
    /// `ls`-ability plus a hash of the full key (fingerprint, config, axes
    /// and code version) for uniqueness. Collisions are not fatal — the
    /// full key is verified on read — they only cost a re-simulation.
    #[must_use]
    pub fn file_name(&self) -> String {
        let mut h = Fingerprint::new();
        h.write_str(CODE_VERSION);
        h.write_str(&self.workload);
        h.write_str(&self.config);
        h.write_u64(self.axes.len() as u64);
        for a in &self.axes {
            h.write_str(a.name);
            h.write_u64(a.value);
        }
        h.write_u64(self.fingerprint);
        let prefix: String = self
            .workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{prefix}-{:016x}.json", h.finish())
    }
}

/// A directory of checkpointed [`RunReport`]s, keyed by [`StoreKey`]. Safe
/// to share across sweep worker threads (all methods take `&self`; the
/// rename-based writes are atomic) and across processes pointed at the same
/// directory.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

/// What one [`ResultStore::gc`] pass did: how much it evicted and what the
/// directory holds afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Entries removed, least-recently-written first.
    pub evicted: usize,
    /// Total bytes of the removed entries.
    pub evicted_bytes: u64,
    /// Entries left on disk after the pass.
    pub remaining: usize,
    /// Total bytes of the remaining entries.
    pub remaining_bytes: u64,
}

const SCHEMA: &str = "ava-result-store/v1";

impl ResultStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create result store at {}: {e}", dir.display()))?;
        Ok(Self {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries currently on disk (including entries written by
    /// other versions, which [`ResultStore::lookup`] will ignore).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entries(&self) -> impl Iterator<Item = PathBuf> {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The stored report for `key`, or `None`. Every failure — absent or
    /// unreadable entry, malformed JSON, schema/version drift, a key
    /// mismatch behind a colliding file name, a truncated report — is a
    /// plain miss; the caller re-simulates and overwrites.
    #[must_use]
    pub fn lookup(&self, key: &StoreKey) -> Option<RunReport> {
        let text = fs::read_to_string(self.dir.join(key.file_name())).ok()?;
        let doc = parse(&text).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA)
            || doc.get("version").and_then(Json::as_str) != Some(CODE_VERSION)
            || doc.get("workload").and_then(Json::as_str) != Some(&key.workload)
            || doc.get("elements").and_then(Json::as_u64) != Some(key.elements)
            || doc.get("config").and_then(Json::as_str) != Some(&key.config)
            || doc.get("fingerprint").and_then(Json::as_u64) != Some(key.fingerprint)
            || axes_from_json(doc.get("axes")?).ok()? != key.axes
        {
            return None;
        }
        RunReport::from_json(doc.get("report")?).ok()
    }

    /// Checkpoints one finished run under `key`, recording the wall time it
    /// took to simulate. The write is atomic (temp file + rename), so a
    /// concurrent reader sees either the previous entry or the complete new
    /// one — never a torn document.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the entry cannot be written; the caller can treat
    /// the run as simply uncached.
    pub fn insert(&self, key: &StoreKey, report: &RunReport, wall_ns: u64) -> Result<(), String> {
        let doc = object()
            .field("schema", SCHEMA)
            .field("version", CODE_VERSION)
            .field("workload", key.workload.as_str())
            .field("elements", key.elements)
            .field("config", key.config.as_str())
            .field("axes", axes_to_json(&key.axes))
            .field("fingerprint", key.fingerprint)
            .field("wall_ns", wall_ns)
            .field("report", report.to_json())
            .finish();
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.dir.join(key.file_name());
        fs::write(&tmp, format!("{doc}\n"))
            .map_err(|e| format!("cannot write store entry {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("cannot commit store entry {}: {e}", path.display())
        })
    }

    /// The recorded wall time of every readable entry of the current code
    /// version, keyed like the sweep scheduler's recorded-cost map: the
    /// workload identity (name plus element count) and the canonical
    /// config-plus-axes identity. Entries from other versions or with
    /// unreadable metadata are skipped; where several entries land on one
    /// key (e.g. a re-simulated point whose fingerprint changed), the
    /// largest time wins — pessimistic ordering starts the potentially
    /// slowest point first.
    #[must_use]
    pub fn recorded_costs(&self) -> HashMap<(String, String), u64> {
        let mut costs = HashMap::new();
        for path in self.entries() {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(doc) = parse(&text) else { continue };
            if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA)
                || doc.get("version").and_then(Json::as_str) != Some(CODE_VERSION)
            {
                continue;
            }
            let (Some(workload), Some(elements), Some(config), Some(wall_ns)) = (
                doc.get("workload").and_then(Json::as_str),
                doc.get("elements").and_then(Json::as_u64),
                doc.get("config").and_then(Json::as_str),
                doc.get("wall_ns").and_then(Json::as_u64),
            ) else {
                continue;
            };
            let Some(Ok(axes)) = doc.get("axes").map(axes_from_json) else {
                continue;
            };
            let key = (
                workload_identity(workload, elements),
                config_axes_key(config, &axes),
            );
            let slot = costs.entry(key).or_insert(0);
            *slot = (*slot).max(wall_ns.max(1));
        }
        costs
    }

    /// Caps the store directory at `max_bytes` by evicting whole entries,
    /// least-recently-*written* first (entry files are written exactly once
    /// per checkpoint, so mtime order is write order; equal mtimes break
    /// ties by file name for determinism). A long-lived store shared by many
    /// sweeps therefore keeps its freshest results and sheds the stale
    /// tail.
    ///
    /// Every removal is as safe as a lookup miss: a concurrent reader of an
    /// evicted entry simply re-simulates the point and (if its sweep writes
    /// to the store) re-checkpoints it, and an entry a concurrent process
    /// already removed is skipped without error. Unreadable metadata
    /// (e.g. an entry vanishing between the scan and its `stat`) just
    /// excludes that file from this pass.
    #[must_use]
    pub fn gc(&self, max_bytes: u64) -> GcStats {
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = self
            .entries()
            .filter_map(|path| {
                let meta = fs::metadata(&path).ok()?;
                Some((meta.modified().ok()?, path, meta.len()))
            })
            .collect();
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut total: u64 = entries.iter().map(|e| e.2).sum();
        let mut stats = GcStats {
            evicted: 0,
            evicted_bytes: 0,
            remaining: entries.len(),
            remaining_bytes: total,
        };
        for (_, path, bytes) in entries {
            if total <= max_bytes {
                break;
            }
            // A concurrent process may have removed (or replaced) the entry
            // already; either way this pass has nothing left to reclaim
            // from it, so count the eviction only when the unlink is ours.
            if fs::remove_file(&path).is_ok() {
                stats.evicted += 1;
                stats.evicted_bytes += bytes;
                stats.remaining -= 1;
                stats.remaining_bytes -= bytes;
            }
            total -= bytes;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ScenarioConfig;
    use crate::run::run_workload;
    use ava_workloads::Axpy;

    fn temp_store(tag: &str) -> ResultStore {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ava-store-unit-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    fn sample() -> (StoreKey, RunReport) {
        let scenario = ScenarioConfig::ava_x(2).with_iters(3);
        let report = run_workload(&Axpy::new(256), &scenario);
        let key = StoreKey::new("axpy", 512, &scenario.resolve(), 0xfeed_face);
        (key, report)
    }

    #[test]
    fn insert_then_lookup_round_trips_bit_identically() {
        let store = temp_store("roundtrip");
        let (key, report) = sample();
        assert!(store.lookup(&key).is_none(), "fresh store must miss");
        store.insert(&key, &report, 12_345).unwrap();
        let cached = store.lookup(&key).expect("hit after insert");
        assert_eq!(format!("{report:?}"), format!("{cached:?}"));
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn any_key_component_mismatch_is_a_miss() {
        let store = temp_store("mismatch");
        let (key, report) = sample();
        store.insert(&key, &report, 1).unwrap();
        let mut other = key.clone();
        other.fingerprint ^= 1;
        assert!(store.lookup(&other).is_none(), "fingerprint change");
        let mut other = key.clone();
        other.axes[0].value += 1;
        assert!(store.lookup(&other).is_none(), "axis change");
        assert!(store.lookup(&key).is_some(), "original still hits");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_truncated_and_tampered_entries_are_misses() {
        let store = temp_store("corrupt");
        let (key, report) = sample();
        store.insert(&key, &report, 1).unwrap();
        let path = store.dir().join(key.file_name());

        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.lookup(&key).is_none(), "truncated entry");

        fs::write(&path, "not json at all").unwrap();
        assert!(store.lookup(&key).is_none(), "garbage entry");

        // Valid JSON claiming a different simulator version.
        let tampered = full.replace(CODE_VERSION, "ava-0.0.0+store.v0");
        fs::write(&path, tampered).unwrap();
        assert!(store.lookup(&key).is_none(), "version drift");

        // Re-inserting overwrites the bad entry in place.
        store.insert(&key, &report, 1).unwrap();
        assert!(store.lookup(&key).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn recorded_costs_key_on_config_and_axes_and_keep_the_max() {
        let store = temp_store("costs");
        let (key, report) = sample();
        store.insert(&key, &report, 500).unwrap();
        // Same workload + scenario, different fingerprint (a re-simulated
        // point): separate file, same cost key, max wins.
        let mut rekeyed = key.clone();
        rekeyed.fingerprint ^= 0xff;
        store.insert(&rekeyed, &report, 900).unwrap();
        assert_eq!(store.len(), 2);

        let costs = store.recorded_costs();
        assert_eq!(costs.len(), 1);
        let identity = config_axes_key(&key.config, &key.axes);
        assert_eq!(costs[&("axpy#512".to_string(), identity)], 900);

        // The same kernel at a different problem size is a separate
        // scheduling identity, not a max-merge victim.
        let mut resized = key.clone();
        resized.elements = 1024;
        resized.fingerprint ^= 0xabc;
        store.insert(&resized, &report, 50).unwrap();
        assert_eq!(store.recorded_costs().len(), 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Backdates one entry's mtime by `secs` so eviction order is forced
    /// regardless of filesystem timestamp granularity.
    fn backdate(store: &ResultStore, key: &StoreKey, secs: u64) {
        let path = store.dir().join(key.file_name());
        let file = fs::File::options().write(true).open(path).unwrap();
        let then = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
        file.set_times(fs::FileTimes::new().set_modified(then))
            .unwrap();
    }

    #[test]
    fn gc_evicts_least_recently_written_entries_first() {
        let store = temp_store("gc-order");
        let (key, report) = sample();
        let mut newer = key.clone();
        newer.fingerprint ^= 1;
        store.insert(&key, &report, 1).unwrap();
        store.insert(&newer, &report, 1).unwrap();
        backdate(&store, &key, 3600);
        let entry_bytes = fs::metadata(store.dir().join(key.file_name()))
            .unwrap()
            .len();

        // A cap fitting exactly one entry must shed the backdated one.
        let stats = store.gc(entry_bytes);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.evicted_bytes, entry_bytes);
        assert_eq!(stats.remaining, 1);
        assert!(stats.remaining_bytes <= entry_bytes);
        assert!(store.lookup(&key).is_none(), "the old entry is gone");
        assert!(store.lookup(&newer).is_some(), "the fresh entry survives");

        // An evicted entry is an ordinary miss: re-inserting self-repairs.
        store.insert(&key, &report, 1).unwrap();
        assert!(store.lookup(&key).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_under_the_cap_is_a_no_op() {
        let store = temp_store("gc-noop");
        let (key, report) = sample();
        store.insert(&key, &report, 1).unwrap();
        let stats = store.gc(u64::MAX);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.evicted_bytes, 0);
        assert_eq!(stats.remaining, 1);
        assert!(stats.remaining_bytes > 0);
        assert!(store.lookup(&key).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_to_zero_empties_the_store() {
        let store = temp_store("gc-zero");
        let (key, report) = sample();
        let mut other = key.clone();
        other.fingerprint ^= 2;
        store.insert(&key, &report, 1).unwrap();
        store.insert(&other, &report, 1).unwrap();
        let stats = store.gc(0);
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.remaining, 0);
        assert_eq!(stats.remaining_bytes, 0);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn file_names_are_sanitized_and_key_dependent() {
        let scenario = ScenarioConfig::ava_x(8).with_mvl(256);
        let key = StoreKey::new("pipelined/mix", 64, &scenario.resolve(), 7);
        let name = key.file_name();
        assert!(name.starts_with("pipelined-mix-"));
        assert!(name.ends_with(".json"));
        let mut other = key.clone();
        other.fingerprint = 8;
        assert_ne!(name, other.file_name());
    }
}
