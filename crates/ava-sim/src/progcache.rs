//! The persistent on-disk tier of the sweep's program cache.
//!
//! Compilation is a pure function of the IR kernel and the
//! [`CompileOptions`], so its output can be checkpointed across *processes*
//! just like simulation results are checkpointed in the [`ResultStore`]:
//! a [`DiskProgramCache`] is a directory of one JSON document per compiled
//! kernel, keyed by a content [`Fingerprint`] over the kernel IR, the
//! register-grouping factor, the spill-area layout and the simulator
//! [`CODE_VERSION`]. A warm sweep pointed at the same directory performs
//! zero compilations.
//!
//! The store discipline mirrors [`ResultStore`] exactly:
//!
//! * writes are atomic (temp file + rename), so a killed process never
//!   leaves a torn entry under a final name;
//! * *every* read-side failure — missing file, unreadable file, malformed
//!   JSON, schema or version drift, a key mismatch behind a colliding file
//!   name, a truncated program — degrades to a plain miss: the kernel is
//!   recompiled and the entry overwritten in place (self-repair).
//!
//! The serialized form round-trips a [`CompiledKernel`] bit-identically:
//! scalar operands travel as raw `f64` bit patterns (never through decimal
//! text), opcodes as their unique mnemonics, and the `ir_map` in full, so a
//! cache-served kernel feeds the simulator exactly the bytes a fresh
//! compilation would.
//!
//! [`ResultStore`]: crate::store::ResultStore

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ava_compiler::{CompileOptions, CompiledKernel, IrKernel};
use ava_isa::{Element, InstrRole, MemAccess, Opcode, Operand, Program, VReg, VecInstr, VlMode};
use ava_workloads::Fingerprint;

use crate::json::{object, parse, Json};
use crate::store::CODE_VERSION;

const SCHEMA: &str = "ava-program-cache/v1";

/// The content key of one compilation: everything [`ava_compiler::compile`]
/// reads, folded into one stable fingerprint together with the simulator
/// version (a compiler change may change every emitted program, so entries
/// never cross versions).
#[must_use]
pub fn compile_fingerprint(kernel: &IrKernel, opts: &CompileOptions) -> u64 {
    let mut h = Fingerprint::new();
    h.write_str(CODE_VERSION);
    // The IR's Debug form is a complete, deterministic rendering of every
    // instruction, operand and scalar bit pattern.
    h.write_str(&format!("{kernel:?}"));
    h.write_u64(opts.lmul.factor() as u64);
    h.write_u64(opts.spill_base);
    h.write_u64(opts.spill_slot_bytes);
    h.finish()
}

/// A directory of checkpointed [`CompiledKernel`]s. Safe to share across
/// sweep worker threads (all methods take `&self`; the rename-based writes
/// are atomic) and across processes pointed at the same directory.
#[derive(Debug)]
pub struct DiskProgramCache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl DiskProgramCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create program cache at {}: {e}", dir.display()))?;
        Ok(Self {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries currently on disk (including entries written by
    /// other versions, which [`DiskProgramCache::lookup`] will ignore).
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
            .count()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("prog-{fingerprint:016x}.json"))
    }

    /// The cached kernel under `fingerprint`, or `None`. Every failure —
    /// absent or unreadable entry, malformed JSON, schema/version drift, a
    /// fingerprint mismatch, a truncated program — is a plain miss; the
    /// caller recompiles and overwrites.
    #[must_use]
    pub fn lookup(&self, fingerprint: u64) -> Option<CompiledKernel> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let doc = parse(&text).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA)
            || doc.get("version").and_then(Json::as_str) != Some(CODE_VERSION)
            || doc.get("fingerprint").and_then(Json::as_u64) != Some(fingerprint)
        {
            return None;
        }
        compiled_from_json(doc.get("compiled")?)
    }

    /// Checkpoints one compilation under `fingerprint`. The write is atomic
    /// (temp file + rename), so a concurrent reader sees either the previous
    /// entry or the complete new one — never a torn document.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the entry cannot be written; the caller can treat
    /// the compilation as simply uncached.
    pub fn insert(&self, fingerprint: u64, compiled: &CompiledKernel) -> Result<(), String> {
        let doc = object()
            .field("schema", SCHEMA)
            .field("version", CODE_VERSION)
            .field("fingerprint", fingerprint)
            .field("compiled", compiled_to_json(compiled))
            .finish();
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.entry_path(fingerprint);
        fs::write(&tmp, format!("{doc}\n"))
            .map_err(|e| format!("cannot write program cache entry {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("cannot commit program cache entry {}: {e}", path.display())
        })
    }
}

fn opt_u64(value: Option<u64>) -> Json {
    match value {
        Some(v) => Json::from(v),
        None => Json::Null,
    }
}

fn operand_to_json(op: &Operand) -> Json {
    match op {
        Operand::Reg(r) => object().field("reg", r.index()).finish(),
        // Scalars travel as raw bit patterns: decimal f64 text would not
        // round-trip every value bit-identically.
        Operand::Scalar(e) => object().field("scalar_bits", e.bits()).finish(),
    }
}

fn operand_from_json(doc: &Json) -> Option<Operand> {
    if let Some(reg) = doc.get("reg") {
        let idx = u8::try_from(reg.as_u64()?).ok()?;
        return Some(Operand::Reg(VReg::try_new(idx)?));
    }
    Some(Operand::Scalar(Element::from_bits(
        doc.get("scalar_bits")?.as_u64()?,
    )))
}

fn mem_to_json(mem: &MemAccess) -> Json {
    object()
        .field("base", mem.base)
        .field("stride", mem.stride)
        .field(
            "index_reg",
            opt_u64(mem.index_reg.map(|r| r.index() as u64)),
        )
        .finish()
}

fn mem_from_json(doc: &Json) -> Option<MemAccess> {
    let index_reg = match doc.get("index_reg")? {
        Json::Null => None,
        v => Some(VReg::try_new(u8::try_from(v.as_u64()?).ok()?)?),
    };
    Some(MemAccess {
        base: doc.get("base")?.as_u64()?,
        stride: doc.get("stride")?.as_i64()?,
        index_reg,
    })
}

fn role_name(role: InstrRole) -> &'static str {
    match role {
        InstrRole::Normal => "normal",
        InstrRole::SpillLoad => "spill_load",
        InstrRole::SpillStore => "spill_store",
    }
}

fn role_from_name(name: &str) -> Option<InstrRole> {
    match name {
        "normal" => Some(InstrRole::Normal),
        "spill_load" => Some(InstrRole::SpillLoad),
        "spill_store" => Some(InstrRole::SpillStore),
        _ => None,
    }
}

fn instr_to_json(instr: &VecInstr) -> Json {
    object()
        .field("op", instr.opcode.mnemonic())
        .field("dst", opt_u64(instr.dst.map(|r| r.index() as u64)))
        .field(
            "srcs",
            instr.srcs.iter().map(operand_to_json).collect::<Json>(),
        )
        .field(
            "mem",
            match &instr.mem {
                Some(m) => mem_to_json(m),
                None => Json::Null,
            },
        )
        .field("full_mvl", matches!(instr.vl_mode, VlMode::FullMvl))
        .field("setvl", opt_u64(instr.setvl_request.map(|v| v as u64)))
        .field("role", role_name(instr.role))
        .finish()
}

fn instr_from_json(doc: &Json) -> Option<VecInstr> {
    let opcode = Opcode::from_mnemonic(doc.get("op")?.as_str()?)?;
    let dst = match doc.get("dst")? {
        Json::Null => None,
        v => Some(VReg::try_new(u8::try_from(v.as_u64()?).ok()?)?),
    };
    let srcs = doc
        .get("srcs")?
        .as_arr()?
        .iter()
        .map(operand_from_json)
        .collect::<Option<Vec<Operand>>>()?;
    let mem = match doc.get("mem")? {
        Json::Null => None,
        v => Some(mem_from_json(v)?),
    };
    let vl_mode = if doc.get("full_mvl")?.as_bool()? {
        VlMode::FullMvl
    } else {
        VlMode::Current
    };
    let setvl_request = match doc.get("setvl")? {
        Json::Null => None,
        v => Some(usize::try_from(v.as_u64()?).ok()?),
    };
    let role = role_from_name(doc.get("role")?.as_str()?)?;
    // VecInstr's constructors each cover one shape; a deserializer fills the
    // fields directly so one path restores every shape bit-identically.
    Some(VecInstr {
        opcode,
        dst,
        srcs,
        mem,
        vl_mode,
        setvl_request,
        role,
    })
}

fn compiled_to_json(compiled: &CompiledKernel) -> Json {
    object()
        .field("name", compiled.program.name())
        .field(
            "instrs",
            compiled
                .program
                .instructions()
                .iter()
                .map(instr_to_json)
                .collect::<Json>(),
        )
        .field("spill_stores", compiled.spill_stores)
        .field("spill_loads", compiled.spill_loads)
        .field("registers_used", compiled.registers_used)
        .field("max_pressure", compiled.max_pressure)
        .field("spill_area_bytes", compiled.spill_area_bytes)
        .field(
            "ir_map",
            compiled
                .ir_map
                .iter()
                .map(|&i| Json::from(i))
                .collect::<Json>(),
        )
        .finish()
}

fn compiled_from_json(doc: &Json) -> Option<CompiledKernel> {
    let mut program = Program::new(doc.get("name")?.as_str()?);
    let instrs = doc.get("instrs")?.as_arr()?;
    for instr in instrs {
        program.push(instr_from_json(instr)?);
    }
    let ir_map = doc
        .get("ir_map")?
        .as_arr()?
        .iter()
        .map(|v| v.as_u64().and_then(|u| usize::try_from(u).ok()))
        .collect::<Option<Vec<usize>>>()?;
    // A torn document that still parses must not smuggle in a program whose
    // attribution map disagrees with it.
    if ir_map.len() != instrs.len() {
        return None;
    }
    Some(CompiledKernel {
        program,
        spill_stores: usize::try_from(doc.get("spill_stores")?.as_u64()?).ok()?,
        spill_loads: usize::try_from(doc.get("spill_loads")?.as_u64()?).ok()?,
        registers_used: usize::try_from(doc.get("registers_used")?.as_u64()?).ok()?,
        max_pressure: usize::try_from(doc.get("max_pressure")?.as_u64()?).ok()?,
        spill_area_bytes: doc.get("spill_area_bytes")?.as_u64()?,
        ir_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_compiler::compile;
    use ava_isa::{Lmul, VectorContext};
    use ava_memory::MemoryHierarchy;
    use ava_workloads::{Blackscholes, Workload};

    fn temp_cache(tag: &str) -> DiskProgramCache {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ava-progcache-unit-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        DiskProgramCache::open(dir).unwrap()
    }

    /// A kernel exercising every serialized feature: strided and indexed
    /// memory accesses, scalar operands, spill code with full-MVL semantics.
    fn sample_kernel(mvl: usize) -> IrKernel {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(mvl);
        Blackscholes::new(64).build(&mut mem, &ctx).kernel
    }

    fn sample() -> (IrKernel, CompileOptions, CompiledKernel) {
        let kernel = sample_kernel(64);
        // A tight register budget forces spill stores and reloads into the
        // program, so the role/vl_mode round-trip is actually exercised.
        let opts = CompileOptions::new(Lmul::M8, 0x40_0000, 64 * 8);
        let compiled = compile(&kernel, &opts);
        assert!(compiled.spill_stores > 0, "sample must contain spill code");
        (kernel, opts, compiled)
    }

    #[test]
    fn insert_then_lookup_round_trips_bit_identically() {
        let cache = temp_cache("roundtrip");
        let (kernel, opts, compiled) = sample();
        let key = compile_fingerprint(&kernel, &opts);
        assert!(cache.lookup(key).is_none(), "fresh cache must miss");
        cache.insert(key, &compiled).unwrap();
        let cached = cache.lookup(key).expect("hit after insert");
        assert_eq!(format!("{compiled:?}"), format!("{cached:?}"));
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fingerprints_separate_kernels_and_options() {
        let (kernel, opts, _) = sample();
        let base = compile_fingerprint(&kernel, &opts);
        let mut other = opts;
        other.spill_base += 8;
        assert_ne!(base, compile_fingerprint(&kernel, &other));
        let mut other = opts;
        other.lmul = Lmul::M1;
        assert_ne!(base, compile_fingerprint(&kernel, &other));
        let smaller = sample_kernel(32);
        assert_ne!(base, compile_fingerprint(&smaller, &opts));
    }

    #[test]
    fn corrupted_truncated_and_drifted_entries_miss_and_self_repair() {
        let cache = temp_cache("corrupt");
        let (kernel, opts, compiled) = sample();
        let key = compile_fingerprint(&kernel, &opts);
        cache.insert(key, &compiled).unwrap();
        let path = cache.entry_path(key);
        let full = fs::read_to_string(&path).unwrap();

        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.lookup(key).is_none(), "truncated entry");

        fs::write(&path, "not json at all").unwrap();
        assert!(cache.lookup(key).is_none(), "garbage entry");

        let tampered = full.replace(CODE_VERSION, "ava-0.0.0+store.v0");
        fs::write(&path, tampered).unwrap();
        assert!(cache.lookup(key).is_none(), "version drift");

        let rekeyed = full.replace(
            &format!("\"fingerprint\":{key}"),
            &format!("\"fingerprint\":{}", key ^ 1),
        );
        fs::write(&path, rekeyed).unwrap();
        assert!(cache.lookup(key).is_none(), "fingerprint mismatch");

        // Re-inserting overwrites the bad entry in place.
        cache.insert(key, &compiled).unwrap();
        assert!(cache.lookup(key).is_some(), "self-repair after overwrite");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn every_instruction_shape_survives_the_round_trip() {
        // Hand-build instructions covering shapes the compiled sample may
        // not produce: indexed scatter, negative strides, slides, setvl.
        let mut program = Program::new("shapes");
        program.push(VecInstr::setvl(100));
        program.push(VecInstr::vload_strided(VReg::new(1), 0x80, -16));
        program.push(VecInstr::vload_indexed(VReg::new(2), 0x100, VReg::new(1)));
        program.push(VecInstr::vstore_indexed(VReg::new(2), 0x200, VReg::new(1)));
        program.push(VecInstr::vmerge(
            VReg::new(3),
            Operand::scalar_f64(-0.0),
            VReg::new(2),
            VReg::new(1),
        ));
        program.push(VecInstr::vsplat(VReg::new(4), f64::MAX));
        let original = CompiledKernel {
            program,
            spill_stores: 0,
            spill_loads: 0,
            registers_used: 5,
            max_pressure: 4,
            spill_area_bytes: 0,
            ir_map: vec![0, 1, 2, 3, 4, 5],
        };
        let restored = compiled_from_json(&compiled_to_json(&original)).unwrap();
        assert_eq!(format!("{original:?}"), format!("{restored:?}"));
        // -0.0 must survive as a bit pattern, not collapse to 0.0.
        let Operand::Scalar(e) = restored.program.instructions()[4].srcs[0] else {
            panic!("merge keeps its scalar operand");
        };
        assert_eq!(e.bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn ir_map_length_mismatch_is_a_miss() {
        let (_, _, compiled) = sample();
        let mut doc = compiled_to_json(&compiled);
        // Drop the last ir_map element while keeping the JSON well-formed.
        let Json::Obj(fields) = &mut doc else {
            panic!("compiled kernels serialise as objects");
        };
        let (_, ir_map) = fields
            .iter_mut()
            .find(|(key, _)| key == "ir_map")
            .expect("serialised kernel has an ir_map field");
        let Json::Arr(items) = ir_map else {
            panic!("ir_map serialises as an array");
        };
        items
            .pop()
            .expect("sample kernel has at least one instruction");
        assert!(compiled_from_json(&doc).is_none());
    }
}
