//! # ava-sim — full-system simulation of the paper's evaluated platforms
//!
//! This crate assembles the pieces built by the rest of the workspace into
//! the systems of Table II / Table III: a dual-issue scalar core, a
//! decoupled VPU (NATIVE, AVA or Register-Grouping organisation), the shared
//! L2/DRAM memory hierarchy, and the vectorising "tool-chain" (the
//! register allocator that emits spill code). Given a workload and a system
//! configuration it produces a [`RunReport`] with the cycle count,
//! instruction breakdown, memory traffic and validation status — the raw
//! material for every figure and table in the evaluation.
//!
//! ```
//! use ava_sim::{run_workload, ScenarioConfig};
//! use ava_workloads::Axpy;
//!
//! let report = run_workload(&Axpy::new(256), &ScenarioConfig::native_x(1));
//! assert!(report.validated);
//! assert!(report.cycles > 0);
//!
//! // Scenarios compose: the same preset with a quarter-size L2.
//! let small_l2 = ScenarioConfig::native_x(1).with_l2_kib(256);
//! assert!(run_workload(&Axpy::new(256), &small_l2).validated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod json;
pub mod progcache;
pub mod report;
pub mod run;
pub mod store;
pub mod sweep;

pub use configs::{Axis, ScenarioConfig, SystemConfig, SystemKind, AVA_EXTRAPOLATION_PREG_FLOOR};
pub use json::Json;
pub use progcache::DiskProgramCache;
pub use report::{format_runs_table, format_sweep_summary, geometric_mean, speedup_vs};
pub use run::{run_system, run_workload, run_workload_sized, PhaseBreakdown, RunReport};
pub use store::{GcStats, ResultStore, StoreKey, CODE_VERSION};
pub use sweep::{PointStats, ProgramCache, Sweep, SweepReport, SweepRunner, WorkStealScheduler};
