//! A dependency-free JSON value tree, emitter and parser.
//!
//! The workspace builds offline, so serde is not available; this module
//! provides the small subset the report pipeline needs: a [`Json`] value
//! tree with order-preserving objects, RFC 8259 string escaping, lossless
//! integers (cycle counters exceed 2^53, so they are not routed through
//! `f64`) and compact emission. Everything CI and downstream plotting
//! consume — `--json` report files and the `BENCH_*.json` baselines — is
//! produced here, and [`parse`] reads the documents back so tooling (the
//! `lint` binary, the round-trip tests) can verify its own output without
//! an external JSON implementation.
//!
//! ```
//! use ava_sim::json::{object, Json};
//!
//! let report = object()
//!     .field("workload", "axpy")
//!     .field("cycles", 123_456_u64)
//!     .field("validated", true)
//!     .field("speedups", Json::from_iter([1.0, 2.5]))
//!     .finish();
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"workload":"axpy","cycles":123456,"validated":true,"speedups":[1,2.5]}"#
//! );
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order so emitted reports are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted losslessly (cycle counts exceed 2^53).
    U64(u64),
    /// A signed integer, emitted losslessly.
    I64(i64),
    /// A floating-point number. Non-finite values emit as `null` (JSON has
    /// no NaN/Infinity).
    F64(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object. Returns `None` for missing keys and
    /// non-object values alike, so lookups chain with `and_then`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`: a [`Json::U64`], or a non-negative
    /// [`Json::I64`].
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`: a [`Json::I64`], or a [`Json::U64`] that
    /// fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: any numeric variant (integers convert, with
    /// the usual precision loss past 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string contents, if this is a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Arr`].
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is [`Json::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Emits the value as a compact JSON document (no whitespace).
    ///
    /// `Json` also implements [`fmt::Display`], so `format!("{value}")` and
    /// `value.to_string()` produce the same document.
    fn write(&self, out: &mut impl fmt::Write) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::U64(n) => write!(out, "{n}"),
            Json::I64(n) => write!(out, "{n}"),
            Json::F64(x) if !x.is_finite() => out.write_str("null"),
            Json::F64(x) => write!(out, "{x}"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write(out)?;
                }
                out.write_char(']')
            }
            Json::Obj(fields) => {
                out.write_char('{')?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    write_escaped(out, key)?;
                    out.write_char(':')?;
                    value.write(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

/// Writes `s` as a JSON string literal: quotes, backslashes and all control
/// characters below U+0020 are escaped (`\n`, `\r`, `\t`, `\b`, `\f` get
/// their short forms, the rest `\u00XX`).
fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{0008}' => out.write_str("\\b")?,
            '\u{000C}' => out.write_str("\\f")?,
            c if c < '\u{0020}' => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds a JSON object field by field, preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjectBuilder {
    /// Appends one `key: value` field.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn finish(self) -> Json {
        Json::Obj(self.fields)
    }
}

/// Starts an [`ObjectBuilder`].
#[must_use]
pub fn object() -> ObjectBuilder {
    ObjectBuilder::default()
}

/// Parses an RFC 8259 JSON document into a [`Json`] tree.
///
/// Numbers without a fraction or exponent stay integral ([`Json::U64`],
/// falling back to [`Json::I64`] when negative), so `u64` counters beyond
/// 2^53 round-trip exactly through emit-then-parse. Object key order is
/// preserved, which means a document built from strings, booleans and
/// integers satisfies `parse(&doc.to_string()) == Ok(doc)`.
///
/// Errors report the byte offset of the first problem.
///
/// ```
/// use ava_sim::json::{parse, Json};
///
/// let doc = parse(r#"{"cycles": 9007199254740993, "ok": true}"#).unwrap();
/// assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some((1 << 53) + 1));
/// assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
/// assert!(parse("{\"unterminated\": ").is_err());
/// ```
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Recursive-descent parser state: bytes plus a cursor.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Result<u8, String> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of document at byte {}", self.pos))
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                want as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + text.len();
        if self.bytes.get(self.pos..end) != Some(text.as_bytes()) {
            return Err(format!("expected '{text}' at byte {}", self.pos));
        }
        self.pos = end;
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    /// One `\uXXXX` unit (the cursor sits just past the `u`).
    fn hex_unit(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape '{hex}' at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let code = self.hex_unit()?;
                        let c = match code {
                            // A high surrogate must pair with a `\uXXXX`
                            // low surrogate (how non-BMP chars are escaped).
                            0xD800..=0xDBFF => {
                                if self.bump()? != b'\\' || self.bump()? != b'u' {
                                    return Err(format!(
                                        "unpaired surrogate before byte {}",
                                        self.pos
                                    ));
                                }
                                let low = self.hex_unit()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate before byte {}",
                                        self.pos
                                    ));
                                }
                                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                            }
                            _ => char::from_u32(code),
                        };
                        out.push(c.ok_or_else(|| {
                            format!("invalid \\u escape before byte {}", self.pos)
                        })?);
                    }
                    other => {
                        return Err(format!(
                            "bad escape '\\{}' at byte {}",
                            other as char,
                            self.pos - 1
                        ))
                    }
                },
                b if b < 0x80 => out.push(b as char),
                // Multi-byte UTF-8: copy the whole sequence through.
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let seq = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(seq);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.contains(['.', 'e', 'E']) {
            text.parse()
                .map(Json::F64)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Json::U64(n))
        } else {
            text.parse()
                .map(Json::I64)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(Json::Arr(items)),
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos - 1,
                        other as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(Json::Obj(fields)),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        other as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_emit_their_json_form() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::from(42_u64).to_string(), "42");
        assert_eq!(Json::from(-7_i64).to_string(), "-7");
        assert_eq!(Json::from(2.5).to_string(), "2.5");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn large_counters_survive_without_f64_rounding() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let n = (1_u64 << 53) + 1;
        assert_eq!(Json::from(n).to_string(), "9007199254740993");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_control_chars() {
        let s = "a\"b\\c\nd\te\r\u{0008}\u{000C}\u{0001}µ";
        assert_eq!(
            Json::from(s).to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001µ\""
        );
    }

    #[test]
    fn arrays_and_objects_nest_and_preserve_order() {
        let v = object()
            .field("z", 1_u64)
            .field("a", Json::from_iter([Json::Null, Json::from(true)]))
            .field("nested", object().field("k", "v").finish())
            .finish();
        assert_eq!(
            v.to_string(),
            r#"{"z":1,"a":[null,true],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn option_maps_to_null_or_value() {
        assert_eq!(Json::from(None::<&str>).to_string(), "null");
        assert_eq!(Json::from(Some("x")).to_string(), "\"x\"");
    }

    #[test]
    fn parse_reads_scalars() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse("true"), Ok(Json::Bool(true)));
        assert_eq!(parse("false"), Ok(Json::Bool(false)));
        assert_eq!(parse("42"), Ok(Json::U64(42)));
        assert_eq!(parse("-5"), Ok(Json::I64(-5)));
        assert_eq!(parse("0.25"), Ok(Json::F64(0.25)));
        assert_eq!(parse("\"hi\""), Ok(Json::Str("hi".to_string())));
    }

    #[test]
    fn parse_tolerates_interior_whitespace() {
        let v = parse("  { \"a\" : [ 1 , 2 ] , \"b\" : { } }  ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr),
            Some(&[Json::U64(1), Json::U64(2)][..])
        );
        assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parse_keeps_large_counters_integral() {
        let n = (1_u64 << 53) + 1;
        assert_eq!(parse("9007199254740993"), Ok(Json::U64(n)));
    }

    #[test]
    fn builder_documents_round_trip_exactly() {
        let doc = object()
            .field("name", "lint")
            .field("count", 3_u64)
            .field("neg", -1_i64)
            .field("flag", false)
            .field("none", Json::Null)
            .field("list", Json::from_iter([1_u64, 2]))
            .field("inner", object().field("k", "v").finish())
            .finish();
        assert_eq!(parse(&doc.to_string()), Ok(doc));
    }

    #[test]
    fn parse_decodes_every_escape_form() {
        assert_eq!(
            parse(r#""q\" b\\ s\/ n\n r\r t\t b\b f\f u\u00e9""#).unwrap(),
            Json::Str("q\" b\\ s/ n\n r\r t\t b\u{0008} f\u{000C} u\u{00e9}".to_string())
        );
        // Non-BMP characters arrive as surrogate pairs from external
        // emitters; our own emitter writes them literally.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        assert_eq!(parse("\"µ→☃\"").unwrap(), Json::Str("µ→☃".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,]",
            "[1 2]",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\ud800 unpaired\"",
            "1.2.3",
            "{} trailing",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Errors carry the byte offset of the first problem.
        assert!(parse("{} trailing").unwrap_err().contains("byte 3"));
    }

    #[test]
    fn accessors_read_the_matching_variant_only() {
        let v = parse(r#"{"s":"x","u":7,"i":-7,"f":1.5,"b":true,"a":[null]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("u").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("i").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.get("i").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("u").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("a").unwrap().as_arr().unwrap()[0].is_null());
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
        assert_eq!(v.get("s").and_then(Json::as_u64), None);
    }
}
