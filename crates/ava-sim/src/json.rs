//! A dependency-free JSON value tree and emitter.
//!
//! The workspace builds offline, so serde is not available; this module
//! provides the small subset the report pipeline needs: a [`Json`] value
//! tree with order-preserving objects, RFC 8259 string escaping, lossless
//! integers (cycle counters exceed 2^53, so they are not routed through
//! `f64`) and compact or indented emission. Everything CI and downstream
//! plotting consume — `--json` report files and the `BENCH_*.json`
//! baselines — is produced here.
//!
//! ```
//! use ava_sim::json::{object, Json};
//!
//! let report = object()
//!     .field("workload", "axpy")
//!     .field("cycles", 123_456_u64)
//!     .field("validated", true)
//!     .field("speedups", Json::from_iter([1.0, 2.5]))
//!     .finish();
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"workload":"axpy","cycles":123456,"validated":true,"speedups":[1,2.5]}"#
//! );
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order so emitted reports are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted losslessly (cycle counts exceed 2^53).
    U64(u64),
    /// A signed integer, emitted losslessly.
    I64(i64),
    /// A floating-point number. Non-finite values emit as `null` (JSON has
    /// no NaN/Infinity).
    F64(f64),
    /// A string (escaped on emission).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Emits the value as a compact JSON document (no whitespace).
    ///
    /// `Json` also implements [`fmt::Display`], so `format!("{value}")` and
    /// `value.to_string()` produce the same document.
    fn write(&self, out: &mut impl fmt::Write) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::U64(n) => write!(out, "{n}"),
            Json::I64(n) => write!(out, "{n}"),
            Json::F64(x) if !x.is_finite() => out.write_str("null"),
            Json::F64(x) => write!(out, "{x}"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write(out)?;
                }
                out.write_char(']')
            }
            Json::Obj(fields) => {
                out.write_char('{')?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    write_escaped(out, key)?;
                    out.write_char(':')?;
                    value.write(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

/// Writes `s` as a JSON string literal: quotes, backslashes and all control
/// characters below U+0020 are escaped (`\n`, `\r`, `\t`, `\b`, `\f` get
/// their short forms, the rest `\u00XX`).
fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{0008}' => out.write_str("\\b")?,
            '\u{000C}' => out.write_str("\\f")?,
            c if c < '\u{0020}' => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds a JSON object field by field, preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjectBuilder {
    /// Appends one `key: value` field.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn finish(self) -> Json {
        Json::Obj(self.fields)
    }
}

/// Starts an [`ObjectBuilder`].
#[must_use]
pub fn object() -> ObjectBuilder {
    ObjectBuilder::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_emit_their_json_form() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(Json::from(42_u64).to_string(), "42");
        assert_eq!(Json::from(-7_i64).to_string(), "-7");
        assert_eq!(Json::from(2.5).to_string(), "2.5");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn large_counters_survive_without_f64_rounding() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        let n = (1_u64 << 53) + 1;
        assert_eq!(Json::from(n).to_string(), "9007199254740993");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_control_chars() {
        let s = "a\"b\\c\nd\te\r\u{0008}\u{000C}\u{0001}µ";
        assert_eq!(
            Json::from(s).to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001µ\""
        );
    }

    #[test]
    fn arrays_and_objects_nest_and_preserve_order() {
        let v = object()
            .field("z", 1_u64)
            .field("a", Json::from_iter([Json::Null, Json::from(true)]))
            .field("nested", object().field("k", "v").finish())
            .finish();
        assert_eq!(
            v.to_string(),
            r#"{"z":1,"a":[null,true],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn option_maps_to_null_or_value() {
        assert_eq!(Json::from(None::<&str>).to_string(), "null");
        assert_eq!(Json::from(Some("x")).to_string(), "\"x\"");
    }
}
