//! The spec-driven experiment driver.
//!
//! [`execute`] turns one validated [`ExperimentSpec`] plus the shared
//! execution options ([`BenchArgs`]) into the experiment's artefacts: the
//! chart/table text that goes to stdout and the machine-readable JSON
//! document. It is a port of the four figure binaries' bodies onto one code
//! path — the binaries themselves are shims that translate flags into a
//! spec and call [`run`] — so a manifest run and a legacy flag run of the
//! same experiment produce byte-identical output.
//!
//! Progress lines (sweep size, scheduler summary, store GC) still stream to
//! stderr while the sweeps run; the stdout text is accumulated and printed
//! by [`run`] in one piece, which is also what lets in-process tests pin it
//! byte for byte without spawning processes.

use std::process::ExitCode;
use std::sync::Arc;

use ava_sim::json::{object, Json};
use ava_sim::{format_sweep_summary, ScenarioConfig, Sweep};
use ava_workloads::{Axpy, Blackscholes, SharedWorkload};

use crate::cli::{emit_json, BenchArgs};
use crate::spec::{ArtefactKind, ExperimentSpec, MixRegistry};
use crate::{
    evaluated_systems, figure4_data_with, format_cache_sensitivity, format_energy,
    format_energy_sensitivity, format_figure4_from, format_instruction_mix,
    format_memory_breakdown, format_mvl_extrapolation, format_performance, sensitivity_grid_with,
    sensitivity_json, sweep_energy_json,
};

/// The artefacts of one executed experiment.
pub struct ExperimentRun {
    /// The accumulated chart/table text (what the legacy binaries printed
    /// to stdout, byte for byte).
    pub stdout: String,
    /// The machine-readable document (what `--json` writes).
    pub document: Json,
}

/// Executes the experiment and prints its artefacts: the chart text to
/// stdout, the JSON document to the path picked by the CLI `--json` flag
/// or, failing that, the manifest's `output.json`.
///
/// # Errors
///
/// Returns a diagnostic when the spec's workloads cannot be built or the
/// `app` filter matches nothing.
pub fn run(spec: &ExperimentSpec, args: &BenchArgs) -> Result<ExitCode, String> {
    let outcome = execute(spec, args)?;
    print!("{}", outcome.stdout);
    let json_path = args.json.clone().or_else(|| spec.output.json.clone());
    Ok(emit_json(json_path.as_deref(), || outcome.document))
}

/// Executes the experiment described by `spec` under the execution options
/// of `args`, returning the artefacts instead of printing them.
///
/// # Errors
///
/// Returns a diagnostic when the spec's workloads cannot be built or the
/// `app` filter matches nothing.
pub fn execute(spec: &ExperimentSpec, args: &BenchArgs) -> Result<ExperimentRun, String> {
    let mut stdout = String::new();
    let document = match spec.artefact {
        ArtefactKind::Fig3 => fig3(spec, args, &mut stdout)?,
        ArtefactKind::Fig4 => fig4(spec, args, &mut stdout)?,
        ArtefactKind::Sensitivity => sensitivity(spec, args, &mut stdout)?,
        ArtefactKind::Ablation => ablation(spec, args, &mut stdout),
    };
    Ok(ExperimentRun { stdout, document })
}

/// Builds the spec's workload entries and applies the `app` filter.
/// `no_match` is the artefact's legacy diagnostic for an empty result.
fn build_workloads(spec: &ExperimentSpec, no_match: &str) -> Result<Vec<SharedWorkload>, String> {
    let mut workloads = Vec::with_capacity(spec.workloads.len());
    for w in &spec.workloads {
        workloads.push(MixRegistry::build(w)?);
    }
    let workloads: Vec<SharedWorkload> = workloads
        .into_iter()
        .filter(|w| spec.app.as_ref().is_none_or(|f| w.name() == f))
        .collect();
    if workloads.is_empty() {
        return Err(no_match.to_string());
    }
    Ok(workloads)
}

/// The unroll depth of the spec's solver entry, if it has one. Like the
/// legacy `--mix solver` flow, the depth becomes a grid-wide scenario axis
/// even when the `app` filter later drops the solver itself.
fn solver_iters(spec: &ExperimentSpec) -> Option<usize> {
    spec.workloads
        .iter()
        .find(|w| w.name == "solver")
        .map(|w| w.iters.unwrap_or(4))
}

fn fig3(spec: &ExperimentSpec, args: &BenchArgs, out: &mut String) -> Result<Json, String> {
    let chart = spec.chart();
    let workloads = build_workloads(spec, "no workload matches --app filter")?;
    let mut systems = evaluated_systems();
    if spec.reduced {
        // Scale-down: the first two evaluated systems (NATIVE X1 plus one
        // comparison point) keep the smoke representative without pricing
        // all fourteen.
        systems.truncate(2);
    }
    if let Some(iters) = solver_iters(spec) {
        // Solver sweeps record the unroll depth as a first-class scenario
        // axis so every emitted report carries `"axes":{"iters":n}`.
        systems = systems.into_iter().map(|c| c.with_iters(iters)).collect();
    }

    let per_workload = systems.len();
    let sweep = Sweep::grid(workloads.clone(), systems);
    eprintln!(
        "sweeping {} points ({} workloads x {} configurations)...",
        sweep.len(),
        workloads.len(),
        per_workload
    );
    let report = args.configure(sweep.runner()).run();
    eprintln!("{}", format_sweep_summary(&report));
    args.run_store_gc();

    // A sharded run holds only its slice of the grid, so the per-workload
    // charts (which need every configuration of a workload) are deferred to
    // the final unsharded merge pass over the shared store.
    if args.shard.is_none() {
        for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
            let name = workload.name();
            if chart == "mem" || chart == "all" {
                push_line(out, &format_memory_breakdown(name, runs));
            }
            if chart == "mix" || chart == "all" {
                push_line(out, &format_instruction_mix(name, runs));
            }
            if chart == "perf" || chart == "all" {
                push_line(out, &format_performance(name, runs));
            }
            if chart == "energy" || chart == "all" {
                push_line(out, &format_energy(name, runs));
            }
        }
    }

    Ok(object()
        .field("artefact", "fig3")
        .field("chart", chart)
        .field(
            "energy",
            sweep_energy_json(&report, sweep.resolved_systems()),
        )
        .field("sweep", report.to_json())
        .finish())
}

fn fig4(spec: &ExperimentSpec, args: &BenchArgs, out: &mut String) -> Result<Json, String> {
    let workloads = build_workloads(spec, "no workload matches the manifest's workload list")?;
    let data = figure4_data_with(&workloads, args.threads, args.store.as_ref());
    out.push_str(&format_figure4_from(&data));

    Ok(object()
        .field("artefact", "fig4")
        .field(
            "rows",
            data.rows
                .iter()
                .map(|r| {
                    object()
                        .field("config", r.label.as_str())
                        .field("vrf_mm2", r.vrf)
                        .field("fpu_mm2", r.fpus)
                        .field("ava_mm2", r.ava_structures)
                        .field("vpu_total_mm2", r.vpu_total)
                        .field("core_mm2", r.core)
                        .field("l1_mm2", r.l1)
                        .field("l2_mm2", r.l2)
                        .field("perf_per_mm2", r.perf_per_mm2)
                        .finish()
                })
                .collect::<Json>(),
        )
        .field("sweep", data.sweep.to_json())
        .finish())
}

fn sensitivity(spec: &ExperimentSpec, args: &BenchArgs, out: &mut String) -> Result<Json, String> {
    let chart = spec.chart();
    let mvls = &spec.axes.mvl;
    let l2_kib = &spec.axes.l2_kib;
    let extra = &spec.axes.extra;
    let workloads = build_workloads(
        spec,
        "no workload matches --app filter (axpy, blackscholes, somier, composite, \
         pipelined with --mix pipelined, and iterated with --mix solver)",
    )?;

    let mut scenarios = sensitivity_grid_with(mvls, l2_kib, extra);
    if let Some(iters) = solver_iters(spec) {
        // Record the unroll depth as a first-class scenario axis so every
        // emitted report carries `"axes":{"iters":n}` — rerunning with a
        // different depth then sweeps that axis like any other.
        scenarios = scenarios.into_iter().map(|c| c.with_iters(iters)).collect();
    }
    let per_workload = scenarios.len();
    let sweep = Sweep::grid(workloads.clone(), scenarios);
    eprintln!(
        "sweeping {} points ({} workloads x {} scenarios: {} MVLs x {} L2 sizes{})...",
        sweep.len(),
        workloads.len(),
        per_workload,
        mvls.len(),
        l2_kib.len(),
        if extra.is_empty() {
            String::new()
        } else {
            format!(
                " x {} L1 x {} DRAM-bw x {} bus",
                extra.l1_kib.len().max(1),
                extra.dram_bw.len().max(1),
                extra.vmu_bus.len().max(1)
            )
        },
    );
    let report = args.configure(sweep.runner()).run();
    for r in &report.reports {
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
    }

    // A sharded run holds only its slice of the grid; the per-workload
    // tables need every scenario of a workload, so they are deferred to the
    // final unsharded merge pass over the shared store.
    if args.shard.is_none() {
        for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
            if chart == "tables" || chart == "all" {
                push_line(
                    out,
                    &format_mvl_extrapolation(workload.name(), sweep.resolved_systems(), runs),
                );
                push_line(out, &format_cache_sensitivity(workload.name(), runs));
            }
            if chart == "energy" || chart == "all" {
                push_line(
                    out,
                    &format_energy_sensitivity(workload.name(), sweep.resolved_systems(), runs),
                );
            }
        }
    }
    eprintln!("{}", format_sweep_summary(&report));
    args.run_store_gc();

    Ok(sensitivity_json(
        mvls,
        l2_kib,
        extra,
        sweep.resolved_systems(),
        &report,
    ))
}

fn ablation(spec: &ExperimentSpec, args: &BenchArgs, out: &mut String) -> Json {
    let repeat = spec.repeat;
    // Scale-down shrinks the fixed study workloads; the variant list is the
    // experiment itself and stays whole.
    let (axpy_n, blackscholes_n) = if spec.reduced {
        (512, 256)
    } else {
        (4096, 1024)
    };
    let studies = vec![
        study(
            "swap-free baseline",
            &ScenarioConfig::native_x(1),
            Arc::new(Axpy::new(axpy_n)),
            repeat,
            args,
            out,
        ),
        study(
            "swap-heavy AVA",
            &ScenarioConfig::ava_x(8),
            Arc::new(Blackscholes::new(blackscholes_n)),
            repeat,
            args,
            out,
        ),
    ];
    args.run_store_gc();
    out.push_str("The per-operation overhead of the vector memory unit dominates the\n");
    out.push_str("short-vector baseline (three memory operations per 16-element strip),\n");
    out.push_str("while the swap-heavy AVA X8 case is bound by the arithmetic pipeline and\n");
    out.push_str("the swap data movement itself, so it is largely insensitive to queue,\n");
    out.push_str("ROB and overhead settings — the sizes of Table II are not the limiter.\n");

    object()
        .field("artefact", "ablation")
        .field("studies", Json::Arr(studies))
        .finish()
}

/// The variant axis of one ablation study: a display name per scenario.
/// Each variant is the base scenario with exactly one knob overridden — the
/// scenario layer records the override as axis metadata, so the JSON report
/// carries it point by point.
fn variants(base: &ScenarioConfig) -> (Vec<String>, Vec<ScenarioConfig>) {
    let mut names = vec!["reference".to_string()];
    let mut systems = vec![base.clone()];
    for entries in [8usize, 16, 64] {
        names.push(format!("issue queues = {entries}"));
        systems.push(base.clone().with_issue_queues(entries));
    }
    for rob in [16usize, 32, 128] {
        names.push(format!("reorder buffer = {rob}"));
        systems.push(base.clone().with_rob_entries(rob));
    }
    for overhead in [0u64, 8, 16] {
        names.push(format!("mem-op overhead = {overhead}"));
        systems.push(base.clone().with_mem_op_overhead(overhead));
    }
    (names, systems)
}

fn study(
    label: &str,
    base: &ScenarioConfig,
    workload: SharedWorkload,
    repeat: usize,
    args: &BenchArgs,
    out: &mut String,
) -> Json {
    out.push_str(&format!(
        "--- {label}: {} on {}\n",
        workload.name(),
        base.label()
    ));
    let (names, systems) = variants(base);
    // First pass is ordered by the static heuristic; every further pass
    // reorders its queue by the previous pass's measured per-point time.
    let grid = Sweep::grid(vec![workload.clone()], systems);
    let mut sweep = args.configure(grid.runner()).run();
    for _ in 1..repeat.max(1) {
        sweep = args.configure(grid.runner().recorded_costs(&sweep)).run();
    }
    for r in &sweep.reports {
        assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
    }
    // A sharded run holds only its slice of the grid: the variant table
    // (and its reference point) need every variant, so they are deferred to
    // the final unsharded merge pass over the shared store.
    if args.shard.is_some() {
        push_line(out, &format_sweep_summary(&sweep));
        out.push('\n');
        return object()
            .field("study", label)
            .field("workload", workload.name())
            .field("base_config", base.label())
            .field("variants", Json::Arr(Vec::new()))
            .field("sweep", sweep.to_json())
            .finish();
    }
    let reference = sweep.reports[0].cycles;
    out.push_str(&format!(
        "{:<28} {:>10} {:>8}\n",
        "variant", "cycles", "vs ref"
    ));
    for (name, r) in names.iter().zip(&sweep.reports) {
        out.push_str(&format!(
            "{:<28} {:>10} {:>7.2}x\n",
            name,
            r.cycles,
            reference as f64 / r.cycles as f64
        ));
    }
    out.push('\n');

    object()
        .field("study", label)
        .field("workload", workload.name())
        .field("base_config", base.label())
        .field(
            "variants",
            names
                .iter()
                .zip(&sweep.reports)
                .map(|(name, r)| {
                    object()
                        .field("variant", name.as_str())
                        .field("cycles", r.cycles)
                        .field("vs_reference", reference as f64 / r.cycles as f64)
                        .finish()
                })
                .collect::<Json>(),
        )
        .field("sweep", sweep.to_json())
        .finish()
}

/// Appends `text` the way `println!("{text}")` would: the text plus one
/// newline (every chart formatter already ends its last row with `\n`).
fn push_line(out: &mut String, text: &str) {
    out.push_str(text);
    out.push('\n');
}
