//! # ava-bench — experiment harness regenerating every table and figure
//!
//! Each binary in `src/bin/` regenerates one artefact of the paper's
//! evaluation from the simulator, the compiler and the physical models:
//!
//! | Binary          | Paper artefact                                              |
//! |-----------------|-------------------------------------------------------------|
//! | `table1`        | Table I — P-VRF configurations (physical registers vs MVL)   |
//! | `table_configs` | Tables II & III — evaluated system configurations             |
//! | `fig3`          | Figure 3 — per-application memory-instruction breakdown,      |
//! |                 | instruction mix, execution time/speedup and energy            |
//! | `fig4`          | Figure 4 — area breakdown and performance/mm²                 |
//! | `table5`        | Table V — post-place-and-route estimates                      |
//! | `ablation`      | Sensitivity to queue/ROB sizes and VMU overhead (DESIGN.md)    |
//! | `bench_baseline`| Wall-clock baselines — `BENCH_<suite>.json` for CI            |
//! | `lint`          | Static-analysis sweep — every workload/mix linted at every    |
//! |                 | evaluated MVL (plus the 512 extrapolation), deny mode in CI   |
//!
//! Every binary accepts `--json <path>` and writes a machine-readable form
//! of its artefact there (hand-rolled emitter in [`ava_sim::json`]; the
//! workspace builds offline, so no serde).
//!
//! The std-only benches in `benches/` measure the *simulator itself*
//! (rename/swap throughput, cache behaviour, end-to-end kernel simulation),
//! so regressions in the reproduction infrastructure are caught as well;
//! their bodies live in [`suites`] so `bench_baseline` can persist the same
//! numbers for the CI `bench-regression` gate.
//!
//! The library part of the crate holds the shared harness: the workload
//! instances sized for the evaluation, the configuration lists, and the
//! text formatting of every chart, so binaries stay thin and the harness is
//! unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod driver;
pub mod microbench;
pub mod spec;
pub mod suites;

use std::collections::BTreeMap;

use std::sync::Arc;

use ava_energy::{
    energy_breakdown, energy_breakdown_with_l2, phase_energy_breakdown, pnr_estimate, system_area,
    EnergyBreakdown, EnergyParams,
};
use ava_sim::json::object;
use ava_sim::{
    geometric_mean, speedup_vs, Json, ResultStore, RunReport, ScenarioConfig, Sweep, SweepReport,
    SystemConfig,
};
use ava_vpu::{preg_count_for_mvl, VpuConfig};
use ava_workloads::{
    Axpy, Blackscholes, Composite, LavaMd2, ParticleFilter, SharedWorkload, Somier, Swaptions,
};

/// The six applications of Table IV at the problem sizes used for the
/// reproduction (scaled to keep a full Figure 3 sweep fast; see
/// EXPERIMENTS.md for the sizes and the reasoning).
#[must_use]
pub fn paper_workloads() -> Vec<SharedWorkload> {
    vec![
        Arc::new(Axpy::new(4096)),
        Arc::new(Blackscholes::new(1024)),
        Arc::new(LavaMd2::new(48, 2)),
        Arc::new(ParticleFilter::new(2048, 64)),
        Arc::new(Somier::new(4096)),
        Arc::new(Swaptions::new(1024)),
    ]
}

/// Smaller versions of the same workloads, used by the wall-clock benches so
/// one benchmark iteration stays in the millisecond range.
#[must_use]
pub fn bench_workloads() -> Vec<SharedWorkload> {
    vec![
        Arc::new(Axpy::new(1024)),
        Arc::new(Blackscholes::new(256)),
        Arc::new(LavaMd2::new(16, 2)),
        Arc::new(ParticleFilter::new(512, 32)),
        Arc::new(Somier::new(1024)),
        Arc::new(Swaptions::new(256)),
    ]
}

/// The configurations plotted in Figure 3, in presentation order.
#[must_use]
pub fn evaluated_systems() -> Vec<ScenarioConfig> {
    ScenarioConfig::all_evaluated()
}

/// The Figure 3 grid: every given workload on every evaluated configuration.
/// Reports come back workload-major (chunk by [`evaluated_systems`] length).
#[must_use]
pub fn figure3_sweep(workloads: Vec<SharedWorkload>) -> Sweep {
    Sweep::grid(workloads, evaluated_systems())
}

/// Runs one workload across every evaluated configuration, in parallel.
#[must_use]
pub fn run_figure3_for(workload: SharedWorkload) -> Vec<RunReport> {
    figure3_sweep(vec![workload]).runner().run().into_reports()
}

/// Formats the Figure 3 column-1 chart: vector memory instruction counts
/// split into loads, stores, compiler spills and AVA swaps.
#[must_use]
pub fn format_memory_breakdown(workload: &str, reports: &[RunReport]) -> String {
    let mut out = format!("Figure 3 ({workload}) — vector memory instructions\n");
    out.push_str(&format!(
        "{:<12} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>10}\n",
        "config", "VLoad", "VStore", "Spill-Ld", "Spill-St", "Swap-Ld", "Swap-St", "total"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<12} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>10}\n",
            r.config,
            r.vpu.vloads,
            r.vpu.vstores,
            r.vpu.spill_loads,
            r.vpu.spill_stores,
            r.vpu.swap_loads,
            r.vpu.swap_stores,
            r.memory_instructions(),
        ));
    }
    out
}

/// Formats the Figure 3 column-2 chart: percentage of arithmetic vs memory
/// vector instructions.
#[must_use]
pub fn format_instruction_mix(workload: &str, reports: &[RunReport]) -> String {
    let mut out = format!("Figure 3 ({workload}) — % of vector instructions\n");
    out.push_str(&format!(
        "{:<12} {:>13} {:>10}\n",
        "config", "Varithmetic", "Vmemory"
    ));
    for r in reports {
        let mem = 100.0 * r.vpu.memory_fraction();
        out.push_str(&format!(
            "{:<12} {:>12.1}% {:>9.1}%\n",
            r.config,
            100.0 - mem,
            mem
        ));
    }
    out
}

/// Formats the Figure 3 column-3 chart: execution time and speedup relative
/// to NATIVE X1.
#[must_use]
pub fn format_performance(workload: &str, reports: &[RunReport]) -> String {
    let speedups = speedup_vs(reports, "NATIVE X1");
    let mut out = format!("Figure 3 ({workload}) — execution time and speedup vs NATIVE X1\n");
    out.push_str(&format!(
        "{:<12} {:>14} {:>12} {:>8} {:>6}\n",
        "config", "cycles", "time (ms)", "speedup", "ok"
    ));
    for (r, (_, s)) in reports.iter().zip(speedups.iter()) {
        out.push_str(&format!(
            "{:<12} {:>14} {:>12.4} {:>8.2} {:>6}\n",
            r.config,
            r.cycles,
            r.seconds() * 1e3,
            s,
            if r.validated { "yes" } else { "NO" }
        ));
    }
    out
}

/// Formats the Figure 3 column-4 chart: energy breakdown from the
/// McPAT-style model.
#[must_use]
pub fn format_energy(workload: &str, reports: &[RunReport]) -> String {
    let params = EnergyParams::default();
    let configs = config_map();
    let mut out = format!("Figure 3 ({workload}) — energy (mJ)\n");
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "config", "L2 dyn", "L2 leak", "VRF dyn", "VRF leak", "FPU dyn", "FPU leak", "total"
    ));
    for r in reports {
        let cfg = &configs[r.config.as_str()];
        let e = energy_breakdown(r, cfg, &params);
        out.push_str(&format!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}\n",
            r.config,
            e.l2_dynamic,
            e.l2_leakage,
            e.vrf_dynamic,
            e.vrf_leakage,
            e.fpu_dynamic,
            e.fpu_leakage,
            e.total()
        ));
    }
    out
}

/// The standard dataflow pipeline of the `--mix pipelined` scenarios: a
/// stencil-style three-stage chain over `n`-element arrays. Axpy's in-place
/// output feeds Somier's velocity array; Somier's position and velocity
/// results feed a second Axpy (`y[i] = a * xout[i] + vout[i]`). Golden
/// references chain across the stages, so the final Axpy's checks validate
/// the whole pipeline end to end.
#[must_use]
pub fn pipelined_mix(n: usize) -> SharedWorkload {
    Arc::new(Composite::pipelined(
        vec![
            Arc::new(Axpy::new(n)),
            Arc::new(Somier::new(n)),
            Arc::new(Axpy::new(n)),
        ],
        vec![
            ava_workloads::composite::links(&[("y", "v")]),
            ava_workloads::composite::links(&[("xout", "x"), ("vout", "y")]),
        ],
    ))
}

/// The iterative-solver mix of the `--mix solver` scenarios: a somier
/// spring relaxation ([`ava_workloads::Somier::relaxation`]) unrolled
/// `iters` times, each iteration's position/velocity outputs carrying into
/// the next iteration's inputs. Carried arrays ping-pong between two
/// physical buffers (no per-iteration copies), the scalar golden reference
/// is stepped the same `iters` times, and only the converged state is
/// validated. Reports carry one breakdown per iteration (`iter`-labelled in
/// the JSON).
#[must_use]
pub fn solver_mix(n: usize, iters: usize) -> SharedWorkload {
    Arc::new(Composite::iterated(
        Arc::new(ava_workloads::Somier::relaxation(n)),
        iters,
        ava_workloads::composite::links(&[("xout", "x"), ("vout", "v")]),
    ))
}

fn config_map() -> BTreeMap<String, VpuConfig> {
    evaluated_systems()
        .iter()
        .map(|sys| (sys.label().to_string(), sys.vpu_config()))
        .collect()
}

/// The P-VRF capacity Table I assumes (8 KB).
pub const TABLE1_PVRF_BYTES: usize = 8 * 1024;

/// The Table I rows: `(MVL in elements, physical registers)` for every
/// configuration of the 8 KB AVA P-VRF. Single source for both the text
/// table and the `--json` artefact.
#[must_use]
pub fn table1_rows() -> Vec<(usize, usize)> {
    (1..=8)
        .map(|n| (16 * n, preg_count_for_mvl(TABLE1_PVRF_BYTES, 16 * n)))
        .collect()
}

/// Regenerates Table I: physical vector register file configurations.
#[must_use]
pub fn format_table1() -> String {
    let rows = table1_rows();
    let mut out =
        String::from("Table I — physical vector register file configurations (8 KB P-VRF)\n");
    out.push_str("MVL (elems) :");
    for (mvl, _) in &rows {
        out.push_str(&format!(" {mvl:>5}"));
    }
    out.push_str("\nP-Regs      :");
    for (_, pregs) in &rows {
        out.push_str(&format!(" {pregs:>5}"));
    }
    out.push('\n');
    out
}

/// Regenerates Tables II and III: the evaluated system configurations and
/// their equivalences.
#[must_use]
pub fn format_table_configs() -> String {
    let mut out = String::from(
        "Tables II & III — system configurations (8 lanes, 1 GHz VPU, dual-issue 2 GHz scalar core)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>12}\n",
        "config", "MVL", "VRF (KB)", "P-regs", "logical", "M-VRF (KB)"
    ));
    for sys in evaluated_systems() {
        let vpu = sys.vpu_config();
        out.push_str(&format!(
            "{:<12} {:>6} {:>10} {:>10} {:>10} {:>12}\n",
            sys.label(),
            vpu.mvl,
            vpu.pvrf_bytes / 1024,
            vpu.physical_regs(),
            vpu.logical_regs,
            vpu.mvrf_bytes() / 1024,
        ));
    }
    out
}

/// One row of the Figure 4 chart: the area breakdown of a configuration and
/// its average performance per VPU mm² across the workloads.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Configuration label ("NATIVE X4", "AVA (recfg)", ...).
    pub label: String,
    /// VRF area (mm²).
    pub vrf: f64,
    /// FPU area (mm²).
    pub fpus: f64,
    /// AVA structure area (mm²; zero for NATIVE).
    pub ava_structures: f64,
    /// Total VPU area (mm²).
    pub vpu_total: f64,
    /// Scalar-core area (mm²).
    pub core: f64,
    /// L1 instruction + data cache area (mm²).
    pub l1: f64,
    /// L2 area (mm²).
    pub l2: f64,
    /// Geometric-mean speedup over NATIVE X1 across the workloads, divided
    /// by VPU area (the paper's right axis).
    pub perf_per_mm2: f64,
}

/// The executed Figure 4 evaluation: the instrumented sweep plus the chart
/// rows derived from it.
#[derive(Debug)]
pub struct Figure4Data {
    /// The instrumented sweep over `workloads` × (area columns + AVA X2..X8).
    pub sweep: ava_sim::SweepReport,
    /// One row per chart column, NATIVE X1 first, "AVA (recfg)" last.
    pub rows: Vec<Fig4Row>,
}

/// Runs the Figure 4 evaluation: the area breakdown of every configuration
/// and the average performance/mm² over the six applications. The whole
/// evaluation is a single declarative sweep: `workloads` × (the six area
/// columns plus the remaining AVA configurations), run across all cores.
#[must_use]
pub fn figure4_data(workloads: &[SharedWorkload]) -> Figure4Data {
    figure4_data_with(workloads, None, None)
}

/// [`figure4_data`] with the execution knobs of the `fig4` binary: an
/// optional worker-thread cap and an optional result store serving
/// already-computed points.
#[must_use]
pub fn figure4_data_with(
    workloads: &[SharedWorkload],
    threads: Option<usize>,
    store: Option<&ResultStore>,
) -> Figure4Data {
    // Area side: one column per configuration of Figure 4. NATIVE X1 first
    // (it doubles as the speedup baseline) and AVA X1 second (its area row
    // represents every AVA configuration).
    let columns: Vec<ScenarioConfig> = vec![
        ScenarioConfig::native_x(1),
        ScenarioConfig::ava_x(1),
        ScenarioConfig::native_x(2),
        ScenarioConfig::native_x(3),
        ScenarioConfig::native_x(4),
        ScenarioConfig::native_x(8),
    ];
    // The right axis additionally needs AVA X2..X8 for the "best MVL per
    // application" point, so the sweep's system axis is columns + those.
    let mut systems = columns.clone();
    systems.extend([2, 3, 4, 8].iter().map(|&n| ScenarioConfig::ava_x(n)));
    let n_systems = systems.len();
    let grid = Sweep::grid(workloads.to_vec(), systems);
    let mut runner = grid.runner();
    if let Some(n) = threads {
        runner = runner.threads(n);
    }
    if let Some(store) = store {
        runner = runner.store(store);
    }
    let sweep = runner.run();
    let by_workload: Vec<&[RunReport]> = sweep.reports.chunks(n_systems).collect();

    let mut rows = Vec::with_capacity(columns.len() + 1);
    // Performance/mm²: average speedup of each configuration across the
    // workloads, normalised by VPU area (the paper's right axis).
    for (col, sys) in columns.iter().enumerate() {
        let area = system_area(&sys.vpu_config());
        let perf: Vec<f64> = by_workload
            .iter()
            .map(|runs| runs[0].cycles as f64 / runs[col].cycles as f64)
            .collect();
        let mean_speedup = geometric_mean(&perf);
        rows.push(Fig4Row {
            label: sys.label().to_string(),
            vrf: area.vpu.vrf,
            fpus: area.vpu.fpus,
            ava_structures: area.vpu.ava_structures,
            vpu_total: area.vpu.total(),
            core: area.core,
            l1: area.l1i + area.l1d,
            l2: area.l2,
            perf_per_mm2: mean_speedup / area.vpu.total(),
        });
    }
    // AVA reconfigures without changing area: the paper's right axis shows a
    // single AVA point using the best configuration per application. The AVA
    // runs are the systems at index 1 (AVA X1) and 6.. (AVA X2..X8).
    let ava_area = system_area(&ScenarioConfig::ava_x(1).vpu_config());
    let best_speedups: Vec<f64> = by_workload
        .iter()
        .map(|runs| {
            let best = std::iter::once(runs[1].cycles)
                .chain(runs[6..].iter().map(|r| r.cycles))
                .min()
                .unwrap_or(runs[0].cycles);
            runs[0].cycles as f64 / best as f64
        })
        .collect();
    let ava_mean = geometric_mean(&best_speedups);
    rows.push(Fig4Row {
        label: "AVA (recfg)".to_string(),
        vrf: ava_area.vpu.vrf,
        fpus: ava_area.vpu.fpus,
        ava_structures: ava_area.vpu.ava_structures,
        vpu_total: ava_area.vpu.total(),
        core: ava_area.core,
        l1: ava_area.l1i + ava_area.l1d,
        l2: ava_area.l2,
        perf_per_mm2: ava_mean / ava_area.vpu.total(),
    });
    Figure4Data { sweep, rows }
}

/// Formats the Figure 4 chart from an executed evaluation.
#[must_use]
pub fn format_figure4_from(data: &Figure4Data) -> String {
    let mut out = String::from("Figure 4 — area (mm², 22 nm) and performance/mm²\n");
    out.push_str(&format!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>10}\n",
        "config", "VPU VRF", "VPU FPU", "AVA", "VPU tot", "core", "L1", "L2", "perf/mm2"
    ));
    for row in &data.rows {
        out.push_str(&format!(
            "{:<12} {:>9.3} {:>9.3} {:>9.4} {:>9.3} {:>7.2} {:>7.2} {:>7.2} {:>10.3}\n",
            row.label,
            row.vrf,
            row.fpus,
            row.ava_structures,
            row.vpu_total,
            row.core,
            row.l1,
            row.l2,
            row.perf_per_mm2,
        ));
    }
    out.push_str("\nAVA occupies the same ~1.13 mm^2 VPU for every MVL configuration; the\n\"AVA (recfg)\" row reconfigures the MVL per application (the paper's usage\nmodel) and therefore shows the best performance/mm^2 of the comparison.\n");
    out
}

/// Regenerates Figure 4 end to end (run the sweep, format the chart).
#[must_use]
pub fn format_figure4(workloads: &[SharedWorkload]) -> String {
    format_figure4_from(&figure4_data(workloads))
}

/// The Table V rows: `(label, VPU configuration)` for the two designs the
/// paper takes through the place-and-route flow. Single source for both
/// the text table and the `--json` artefact.
#[must_use]
pub fn table5_rows() -> Vec<(&'static str, VpuConfig)> {
    vec![
        ("NATIVE X8", VpuConfig::native_x(8)),
        ("AVA", VpuConfig::ava_x(8)),
    ]
}

/// Regenerates Table V: post-place-and-route estimates for NATIVE X8 and AVA.
#[must_use]
pub fn format_table5() -> String {
    let rows = table5_rows();
    let mut out =
        String::from("Table V — post-place-and-route estimates (GF 22FDX class, 1 GHz target)\n");
    out.push_str(&format!(
        "{:<10} {:>9} {:>11} {:>11} {:>9} {:>12} {:>12}\n",
        "config", "WNS (ns)", "Power (mW)", "Area (mm2)", "Density", "VRF macros", "AVA structs"
    ));
    for (name, cfg) in rows {
        let p = pnr_estimate(&cfg);
        out.push_str(&format!(
            "{:<10} {:>9.3} {:>11.0} {:>11.2} {:>8.1}% {:>12.3} {:>12.4}\n",
            name,
            p.wns_ns,
            p.power_mw,
            p.area_mm2,
            p.density * 100.0,
            p.vrf_macro_area_mm2,
            p.ava_area_mm2,
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Sensitivity study: MVL extrapolation and cache-size grids
// ----------------------------------------------------------------------

/// The default MVL axis of the `sensitivity` binary: the paper's longest
/// configuration plus the Table I extrapolation points.
pub const SENSITIVITY_MVLS: [usize; 3] = [128, 256, 512];

/// The default L2-capacity axis of the `sensitivity` binary, in KiB (the
/// paper's 1 MiB flanked by a quarter-size and a quadruple-size L2).
pub const SENSITIVITY_L2_KIB: [usize; 3] = [256, 1024, 4096];

/// The optional extra axes of the sensitivity study, driven by the
/// `sensitivity` binary's `--l1-kib`, `--dram-bw`, `--vmu-bus` and `--vvr`
/// flags (or a manifest's `axes` block). An empty vector leaves the
/// corresponding dimension at its Table II default (and out of the grid).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyAxes {
    /// L1 data-cache capacities in KiB (`axis_l1_kib`).
    pub l1_kib: Vec<usize>,
    /// Sustained DRAM bandwidths in bytes per cycle (`axis_dram_bw`).
    pub dram_bw: Vec<u64>,
    /// VMU-to-L2 bus widths in bytes (`axis_vmu_bus`).
    pub vmu_bus: Vec<u64>,
    /// AVA VVR-pool sizes (`axis_vvr`; at least the 32 architectural
    /// registers — the sensitivity grid's bases are all AVA scenarios, so
    /// the axis is always applicable).
    pub vvrs: Vec<usize>,
}

impl HierarchyAxes {
    /// Whether any extra axis carries values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.l1_kib.is_empty()
            && self.dram_bw.is_empty()
            && self.vmu_bus.is_empty()
            && self.vvrs.is_empty()
    }
}

/// The scenario grid of the sensitivity study: the AVA MVL-extrapolation
/// axis crossed with the L2-capacity axis, L2-minor (matching the loops of
/// [`format_cache_sensitivity`]).
#[must_use]
pub fn sensitivity_grid(mvls: &[usize], l2_kib: &[usize]) -> Vec<ScenarioConfig> {
    sensitivity_grid_with(mvls, l2_kib, &HierarchyAxes::default())
}

/// [`sensitivity_grid`] cross-expanded along the optional extra axes:
/// MVL × L2 × L1 × DRAM-bandwidth × VMU-bus-width × VVR-pool, innermost
/// last. Empty axes do not expand the grid.
#[must_use]
pub fn sensitivity_grid_with(
    mvls: &[usize],
    l2_kib: &[usize],
    extra: &HierarchyAxes,
) -> Vec<ScenarioConfig> {
    let mut grid = ScenarioConfig::axis_l2_kib(&ScenarioConfig::axis_mvl(mvls), l2_kib);
    if !extra.l1_kib.is_empty() {
        grid = ScenarioConfig::axis_l1_kib(&grid, &extra.l1_kib);
    }
    if !extra.dram_bw.is_empty() {
        grid = ScenarioConfig::axis_dram_bw(&grid, &extra.dram_bw);
    }
    if !extra.vmu_bus.is_empty() {
        grid = ScenarioConfig::axis_vmu_bus(&grid, &extra.vmu_bus);
    }
    if !extra.vvrs.is_empty() {
        grid = ScenarioConfig::axis_vvr(&grid, &extra.vvrs);
    }
    grid
}

/// The workloads of the sensitivity study: the two DLP extremes (Axpy
/// streams, Blackscholes is register-hungry), the memory-bound Somier, and
/// a multi-kernel [`Composite`] mix of all three sharing one cache-warm
/// hierarchy. Problem sizes are chosen so the working sets (0.4–1 MiB)
/// straddle the L2-capacity axis — small L2 configurations actually miss.
#[must_use]
pub fn sensitivity_workloads() -> Vec<SharedWorkload> {
    vec![
        Arc::new(Axpy::new(32768)),
        Arc::new(Blackscholes::new(8192)),
        Arc::new(Somier::new(16384)),
        Arc::new(Composite::new(vec![
            Arc::new(Axpy::new(16384)),
            Arc::new(Blackscholes::new(4096)),
            Arc::new(Somier::new(8192)),
        ])),
    ]
}

fn axis_value(r: &RunReport, name: &str) -> Option<u64> {
    r.axes.iter().find(|a| a.name == name).map(|a| a.value)
}

/// Formats the MVL-extrapolation table for one workload: Table I continued
/// past MVL = 128 (P-VRF growing at the X8 register floor), with cycles and
/// speedup at the reference L2 capacity (the smallest on the grid's L2
/// axis, so the extrapolation is judged under cache pressure). `systems`
/// is the sweep's resolved axis ([`Sweep::resolved_systems`]), parallel to
/// the per-workload `reports` chunk.
#[must_use]
pub fn format_mvl_extrapolation(
    workload: &str,
    systems: &[SystemConfig],
    reports: &[RunReport],
) -> String {
    let ref_l2 = reports.iter().filter_map(|r| axis_value(r, "l2_kib")).min();
    let mut rows: Vec<(&SystemConfig, &RunReport)> = systems
        .iter()
        .zip(reports)
        .filter(|(_, r)| axis_value(r, "l2_kib") == ref_l2)
        .collect();
    // Rows ascend along the MVL axis regardless of `--mvl` input order, so
    // the speedup baseline is always the shortest vector length (matching
    // the cache-sensitivity matrix, which sorts its axes the same way).
    rows.sort_by_key(|(sys, _)| sys.mvl());
    let mut out = format!(
        "Sensitivity ({workload}) — Table I extrapolation at L2={} KiB\n",
        ref_l2.unwrap_or_default()
    );
    out.push_str(&format!(
        "{:>5} {:>7} {:>11} {:>11} {:>14} {:>11} {:>8} {:>4}\n",
        "MVL", "P-regs", "P-VRF(KiB)", "M-VRF(KiB)", "cycles", "time (ms)", "speedup", "ok"
    ));
    let baseline = rows.first().map_or(1, |(_, r)| r.cycles).max(1);
    for (sys, r) in rows {
        let vpu = &sys.vpu;
        out.push_str(&format!(
            "{:>5} {:>7} {:>11} {:>11} {:>14} {:>11.4} {:>8.2} {:>4}\n",
            vpu.mvl,
            vpu.physical_regs(),
            vpu.pvrf_bytes / 1024,
            vpu.mvrf_bytes() / 1024,
            r.cycles,
            r.seconds() * 1e3,
            baseline as f64 / r.cycles as f64,
            if r.validated { "yes" } else { "NO" },
        ));
    }
    out
}

/// Formats the cache-sensitivity matrix for one workload: one row per MVL,
/// one cycles column per L2 capacity on the grid.
#[must_use]
pub fn format_cache_sensitivity(workload: &str, reports: &[RunReport]) -> String {
    let mut mvls: Vec<u64> = reports
        .iter()
        .filter_map(|r| axis_value(r, "mvl"))
        .collect();
    mvls.sort_unstable();
    mvls.dedup();
    let mut l2s: Vec<u64> = reports
        .iter()
        .filter_map(|r| axis_value(r, "l2_kib"))
        .collect();
    l2s.sort_unstable();
    l2s.dedup();

    let mut out = format!("Sensitivity ({workload}) — cycles by MVL and L2 capacity\n");
    out.push_str(&format!("{:>5}", "MVL"));
    for l2 in &l2s {
        out.push_str(&format!(" {:>13}", format!("L2={l2}KiB")));
    }
    out.push('\n');
    for mvl in &mvls {
        out.push_str(&format!("{mvl:>5}"));
        for l2 in &l2s {
            let cell = reports.iter().find(|r| {
                axis_value(r, "mvl") == Some(*mvl) && axis_value(r, "l2_kib") == Some(*l2)
            });
            match cell {
                Some(r) => out.push_str(&format!(" {:>13}", r.cycles)),
                None => out.push_str(&format!(" {:>13}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// The `sensitivity --json` document: the axis vectors (the optional
/// hierarchy axes appear only when driven), the per-point energy breakdowns
/// and the full instrumented sweep. `systems` is the sweep's resolved axis
/// ([`Sweep::resolved_systems`]).
#[must_use]
pub fn sensitivity_json(
    mvls: &[usize],
    l2_kib: &[usize],
    extra: &HierarchyAxes,
    systems: &[SystemConfig],
    report: &SweepReport,
) -> Json {
    let mut axes = object()
        .field("mvl", mvls.iter().map(|&m| Json::from(m)).collect::<Json>())
        .field(
            "l2_kib",
            l2_kib.iter().map(|&k| Json::from(k)).collect::<Json>(),
        );
    if !extra.l1_kib.is_empty() {
        axes = axes.field(
            "l1_kib",
            extra
                .l1_kib
                .iter()
                .map(|&k| Json::from(k))
                .collect::<Json>(),
        );
    }
    if !extra.dram_bw.is_empty() {
        axes = axes.field(
            "dram_bpc",
            extra
                .dram_bw
                .iter()
                .map(|&b| Json::from(b))
                .collect::<Json>(),
        );
    }
    if !extra.vmu_bus.is_empty() {
        axes = axes.field(
            "vmu_bus",
            extra
                .vmu_bus
                .iter()
                .map(|&b| Json::from(b))
                .collect::<Json>(),
        );
    }
    if !extra.vvrs.is_empty() {
        axes = axes.field(
            "vvrs",
            extra.vvrs.iter().map(|&v| Json::from(v)).collect::<Json>(),
        );
    }
    object()
        .field("artefact", "sensitivity")
        .field("axes", axes.finish())
        .field("energy", sweep_energy_json(report, systems))
        .field("sweep", report.to_json())
        .finish()
}

// ----------------------------------------------------------------------
// Derived per-point energy in the JSON pipeline
// ----------------------------------------------------------------------

/// One energy breakdown as an ordered JSON object (millijoules).
#[must_use]
pub fn energy_breakdown_json(e: &EnergyBreakdown) -> Json {
    object()
        .field("l2_dynamic_mj", e.l2_dynamic)
        .field("l2_leakage_mj", e.l2_leakage)
        .field("vrf_dynamic_mj", e.vrf_dynamic)
        .field("vrf_leakage_mj", e.vrf_leakage)
        .field("fpu_dynamic_mj", e.fpu_dynamic)
        .field("fpu_leakage_mj", e.fpu_leakage)
        .field("total_mj", e.total())
        .finish()
}

/// The energy-delay product of one point: total energy (mJ) times execution
/// time (s), in mJ·s. Lower is better on both axes at once — the standard
/// figure of merit when trading frequency/width for energy.
#[must_use]
pub fn energy_delay_mj_s(e: &EnergyBreakdown, seconds: f64) -> f64 {
    e.total() * seconds
}

/// The energy per workload element operation of one point, in nanojoules:
/// total energy over [`Workload::elements`]. Comparable across problem
/// sizes, unlike the raw total.
///
/// [`Workload::elements`]: ava_workloads::Workload::elements
#[must_use]
pub fn energy_per_element_nj(e: &EnergyBreakdown, elements: u64) -> f64 {
    // 1 mJ = 1e6 nJ.
    e.total() * 1.0e6 / elements as f64
}

/// The derived per-point energy breakdowns of a sweep, parallel to the
/// sweep's `points` array. `systems` is the sweep's own resolved axis
/// ([`Sweep::resolved_systems`] — already materialised, so nothing is
/// resolved twice); each report is matched to its system by configuration
/// label (not by position, so non-grid sweeps built with
/// [`Sweep::from_points`] price correctly too) and charged against its own
/// hierarchy — the L2-capacity axis scales the L2 macro's leakage and the
/// MVL axis scales the P-VRF macro. Every entry also carries the derived
/// metrics: the energy-delay product and the energy per element operation.
///
/// # Panics
///
/// Panics if a report's configuration label is not among `systems`.
#[must_use]
pub fn sweep_energy_json(report: &SweepReport, systems: &[SystemConfig]) -> Json {
    let params = EnergyParams::default();
    let by_label: BTreeMap<&str, &SystemConfig> =
        systems.iter().map(|sys| (sys.label(), sys)).collect();
    report
        .reports
        .iter()
        .zip(&report.points)
        .map(|(r, p)| {
            let sys = by_label
                .get(r.config.as_str())
                .unwrap_or_else(|| panic!("no scenario labelled {:?} in the sweep axes", r.config));
            let e = energy_breakdown_with_l2(r, &sys.vpu, sys.memory.l2.size_bytes, &params);
            let mut point = object()
                .field("workload", r.workload.as_str())
                .field("config", r.config.as_str())
                .field("energy", energy_breakdown_json(&e))
                .field("energy_delay_mj_s", energy_delay_mj_s(&e, r.seconds()))
                .field(
                    "energy_per_element_nj",
                    energy_per_element_nj(&e, p.elements),
                );
            // Multi-kernel points additionally attribute energy to each
            // phase segment (pipeline stages, unrolled solver iterations):
            // the phase counters partition the run's, so the per-phase
            // dynamic energies sum to the point's.
            if !r.phases.is_empty() {
                let phases = r
                    .phases
                    .iter()
                    .map(|ph| {
                        let pe =
                            phase_energy_breakdown(ph, &sys.vpu, sys.memory.l2.size_bytes, &params);
                        let mut o = object().field("name", ph.name.as_str());
                        if let Some(iter) = ph.iter {
                            o = o.field("iter", iter);
                        }
                        o.field("energy", energy_breakdown_json(&pe)).finish()
                    })
                    .collect::<Json>();
                point = point.field("phases", phases);
            }
            point.finish()
        })
        .collect::<Json>()
}

/// Formats the energy matrix of the sensitivity study for one workload
/// (`sensitivity --chart energy`, or a manifest artefact of kind
/// `"energy"`): one row per MVL, one total-energy column (millijoules) per
/// L2 capacity on the grid — the text rendering of what
/// [`sweep_energy_json`] emits per point. Points beyond the MVL × L2 plane
/// (extra hierarchy axes) fold into the cell of their (MVL, L2) pair by
/// summation, matching the cycles matrix's convention of one cell per pair.
#[must_use]
pub fn format_energy_sensitivity(
    workload: &str,
    systems: &[SystemConfig],
    reports: &[RunReport],
) -> String {
    let params = EnergyParams::default();
    let by_label: BTreeMap<&str, &SystemConfig> =
        systems.iter().map(|sys| (sys.label(), sys)).collect();
    let mut mvls: Vec<u64> = reports
        .iter()
        .filter_map(|r| axis_value(r, "mvl"))
        .collect();
    mvls.sort_unstable();
    mvls.dedup();
    let mut l2s: Vec<u64> = reports
        .iter()
        .filter_map(|r| axis_value(r, "l2_kib"))
        .collect();
    l2s.sort_unstable();
    l2s.dedup();

    let mut out = format!("Sensitivity ({workload}) — total energy (mJ) by MVL and L2 capacity\n");
    out.push_str(&format!("{:>5}", "MVL"));
    for l2 in &l2s {
        out.push_str(&format!(" {:>13}", format!("L2={l2}KiB")));
    }
    out.push('\n');
    for mvl in &mvls {
        out.push_str(&format!("{mvl:>5}"));
        for l2 in &l2s {
            let cell: Vec<&RunReport> = reports
                .iter()
                .filter(|r| {
                    axis_value(r, "mvl") == Some(*mvl) && axis_value(r, "l2_kib") == Some(*l2)
                })
                .collect();
            if cell.is_empty() {
                out.push_str(&format!(" {:>13}", "-"));
            } else {
                let total: f64 = cell
                    .iter()
                    .map(|r| {
                        let sys = by_label.get(r.config.as_str()).unwrap_or_else(|| {
                            panic!("no scenario labelled {:?} in the sweep axes", r.config)
                        });
                        energy_breakdown_with_l2(r, &sys.vpu, sys.memory.l2.size_bytes, &params)
                            .total()
                    })
                    .sum();
                out.push_str(&format!(" {total:>13.4}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_isa::Lmul;
    use ava_workloads::Workload;

    #[test]
    fn table1_lists_the_eight_configurations() {
        let t = format_table1();
        for v in ["64", "32", "21", "16", "12", "10", "9", "8"] {
            assert!(t.contains(v), "missing {v} in:\n{t}");
        }
    }

    #[test]
    fn table_configs_cover_all_fourteen_systems() {
        let t = format_table_configs();
        assert_eq!(t.lines().count(), 2 + 14);
        assert!(t.contains("AVA X8"));
        assert!(t.contains("RG-LMUL8"));
    }

    #[test]
    fn table5_reports_both_rows() {
        let t = format_table5();
        assert!(t.contains("NATIVE X8"));
        assert!(t.contains("AVA"));
    }

    #[test]
    fn figure3_formatting_includes_every_configuration() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let systems = vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(4)];
        let reports = Sweep::grid(workloads, systems)
            .runner()
            .threads(1)
            .run()
            .into_reports();
        for text in [
            format_memory_breakdown("axpy", &reports),
            format_instruction_mix("axpy", &reports),
            format_performance("axpy", &reports),
            format_energy("axpy", &reports),
        ] {
            assert!(text.contains("NATIVE X1"), "{text}");
            assert!(text.contains("AVA X4"), "{text}");
        }
    }

    #[test]
    fn sensitivity_grid_crosses_both_axes_and_formats_every_cell() {
        let mvls = [128usize, 256];
        let l2s = [512usize, 1024];
        let scenarios = sensitivity_grid(&mvls, &l2s);
        assert_eq!(scenarios.len(), 4);
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(512))];
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(1).run();

        let mvl_table = format_mvl_extrapolation("axpy", sweep.resolved_systems(), &report.reports);
        // The reference column is the smallest L2 on the axis, and the
        // extrapolated row reports the grown P-VRF at the X8 register floor.
        assert!(mvl_table.contains("L2=512 KiB"), "{mvl_table}");
        assert!(
            mvl_table.contains("\n  256       8          16"),
            "{mvl_table}"
        );

        let cache_table = format_cache_sensitivity("axpy", &report.reports);
        assert!(cache_table.contains("L2=512KiB"), "{cache_table}");
        assert!(cache_table.contains("L2=1024KiB"), "{cache_table}");
        for line in cache_table.lines().skip(2) {
            assert_eq!(line.split_whitespace().count(), 3, "{cache_table}");
        }

        let json = sensitivity_json(
            &mvls,
            &l2s,
            &HierarchyAxes::default(),
            sweep.resolved_systems(),
            &report,
        )
        .to_string();
        assert!(json.starts_with("{\"artefact\":\"sensitivity\""), "{json}");
        assert!(json.contains("\"axes\":{\"mvl\":[128,256],\"l2_kib\":[512,1024]}"));
        assert!(json.contains("\"energy\":["));
        assert!(json.contains("\"energy_delay_mj_s\":"));
        assert!(json.contains("\"energy_per_element_nj\":"));
    }

    #[test]
    fn hierarchy_axes_cross_expand_the_sensitivity_grid() {
        let extra = HierarchyAxes {
            l1_kib: vec![16, 64],
            dram_bw: vec![6, 12],
            vmu_bus: vec![32],
            vvrs: vec![],
        };
        let grid = sensitivity_grid_with(&[128], &[1024], &extra);
        assert_eq!(grid.len(), 4);
        assert_eq!(
            grid[0].label(),
            "AVA MVL=128 l2=1024KiB l1=16KiB dram=6B/c bus=32B"
        );
        let resolved = grid[3].resolve();
        assert_eq!(resolved.memory.l1d.size_bytes, 64 * 1024);
        assert_eq!(resolved.memory.dram.bytes_per_cycle, 12);
        assert_eq!(resolved.memory.vmu_bus_bytes, 32);
        // The driven axes surface in the JSON axis block.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let sweep = Sweep::grid(workloads, grid);
        let report = sweep.runner().threads(1).run();
        let json = sensitivity_json(&[128], &[1024], &extra, sweep.resolved_systems(), &report)
            .to_string();
        assert!(json.contains("\"l1_kib\":[16,64]"), "{json}");
        assert!(json.contains("\"dram_bpc\":[6,12]"), "{json}");
        assert!(json.contains("\"vmu_bus\":[32]"), "{json}");
    }

    #[test]
    fn vvr_axis_expands_the_grid_and_surfaces_in_the_json() {
        let extra = HierarchyAxes {
            vvrs: vec![32, 64],
            ..HierarchyAxes::default()
        };
        let grid = sensitivity_grid_with(&[128], &[512], &extra);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].label(), "AVA MVL=128 l2=512KiB vvrs=32");
        assert_eq!(grid[1].resolve().vpu.rename_pool(), 64);
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let sweep = Sweep::grid(workloads, grid);
        let report = sweep.runner().threads(1).run();
        let json =
            sensitivity_json(&[128], &[512], &extra, sweep.resolved_systems(), &report).to_string();
        assert!(json.contains("\"vvrs\":[32,64]"), "{json}");
    }

    #[test]
    fn energy_matrix_has_one_priced_cell_per_mvl_l2_pair() {
        let scenarios = sensitivity_grid(&[128, 256], &[512, 1024]);
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(512))];
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(1).run();
        let table = format_energy_sensitivity("axpy", sweep.resolved_systems(), &report.reports);
        assert!(table.contains("total energy (mJ)"), "{table}");
        assert!(
            table.contains("L2=512KiB") && table.contains("L2=1024KiB"),
            "{table}"
        );
        for line in table.lines().skip(2) {
            assert_eq!(line.split_whitespace().count(), 3, "{table}");
            assert!(!line.contains(" -"), "every cell must be priced: {table}");
        }
        assert_eq!(table.lines().count(), 2 + 2);
    }

    #[test]
    fn sweep_energy_json_attributes_phase_energy_for_composites() {
        let workloads: Vec<SharedWorkload> = vec![pipelined_mix(512)];
        let scenarios = vec![ScenarioConfig::ava_x(2)];
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(1).run();
        let json = sweep_energy_json(&report, sweep.resolved_systems()).to_string();
        assert!(json.contains("\"phases\":[{\"name\":\"0:axpy\""), "{json}");
        assert!(json.contains("\"name\":\"1:somier\""), "{json}");
        // Single-kernel points carry no phases array.
        let solo: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let sweep = Sweep::grid(solo, vec![ScenarioConfig::ava_x(2)]);
        let report = sweep.runner().threads(1).run();
        let json = sweep_energy_json(&report, sweep.resolved_systems()).to_string();
        assert!(!json.contains("\"phases\""), "{json}");
    }

    #[test]
    fn pipelined_mix_validates_and_reports_phase_breakdowns() {
        let mix = pipelined_mix(512);
        assert_eq!(mix.name(), "pipelined");
        let report = ava_sim::run_workload(mix.as_ref(), &ScenarioConfig::ava_x(4));
        assert!(report.validated, "{:?}", report.validation_error);
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[1].name, "1:somier");
        assert_eq!(
            report.phases.iter().map(|p| p.vpu_cycles).sum::<u64>(),
            report.vpu_cycles,
            "phase cycles must partition the run"
        );
    }

    #[test]
    fn solver_mix_validates_and_reports_iteration_breakdowns() {
        let mix = solver_mix(512, 4);
        assert_eq!(mix.name(), "iterated");
        assert_eq!(mix.elements(), 4 * Somier::relaxation(512).elements());
        let report = ava_sim::run_workload(mix.as_ref(), &ScenarioConfig::ava_x(4));
        assert!(report.validated, "{:?}", report.validation_error);
        assert_eq!(report.phases.len(), 4);
        for (k, phase) in report.phases.iter().enumerate() {
            assert_eq!(phase.iter, Some(k));
            assert_eq!(phase.name, format!("it{k}:somier"));
        }
        assert_eq!(
            report.phases.iter().map(|p| p.vpu_cycles).sum::<u64>(),
            report.vpu_cycles,
            "iteration cycles must partition the run"
        );
        // The iteration grouping reaches the JSON pipeline.
        let json = report.to_json().to_string();
        assert!(
            json.contains("\"name\":\"it0:somier\",\"iter\":0,\"phase\":\"somier\""),
            "{json}"
        );
    }

    #[test]
    fn energy_json_prices_the_l2_axis_with_the_scenario_l2() {
        // A quarter-size L2 must leak less than the 4 MiB one: the energy
        // pipeline prices each point against its own resolved hierarchy.
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let scenarios = ScenarioConfig::axis_l2_kib(&[ScenarioConfig::ava_x(1)], &[256, 4096]);
        let report = Sweep::grid(workloads, scenarios.clone())
            .runner()
            .threads(1)
            .run();
        let params = EnergyParams::default();
        let leak = |i: usize| {
            let sys = scenarios[i].resolve();
            energy_breakdown_with_l2(
                &report.reports[i],
                &sys.vpu,
                sys.memory.l2.size_bytes,
                &params,
            )
            .l2_leakage
                / report.reports[i].seconds()
        };
        assert!(
            leak(1) > 10.0 * leak(0),
            "4 MiB L2 must leak far more power than 256 KiB: {} vs {}",
            leak(1),
            leak(0)
        );
    }

    #[test]
    fn mvl_extrapolation_rows_sort_by_mvl_regardless_of_input_order() {
        let scenarios = sensitivity_grid(&[512, 128], &[512]);
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(512))];
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(1).run();
        let table = format_mvl_extrapolation("axpy", sweep.resolved_systems(), &report.reports);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].trim_start().starts_with("128"), "{table}");
        assert!(lines[3].trim_start().starts_with("512"), "{table}");
        // The baseline row (smallest MVL) carries speedup 1.00.
        assert!(lines[2].contains("1.00"), "{table}");
    }

    #[test]
    fn sensitivity_workloads_include_the_composite_mix() {
        let names: Vec<&str> = sensitivity_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["axpy", "blackscholes", "somier", "composite"]);
    }

    #[test]
    fn sweep_energy_json_prices_every_point_of_a_grid() {
        let workloads: Vec<SharedWorkload> = vec![Arc::new(Axpy::new(256))];
        let scenarios = vec![ScenarioConfig::native_x(1), ScenarioConfig::ava_x(4)];
        let sweep = Sweep::grid(workloads, scenarios);
        let report = sweep.runner().threads(1).run();
        let json = sweep_energy_json(&report, sweep.resolved_systems()).to_string();
        assert!(json.contains("\"config\":\"NATIVE X1\""));
        assert!(json.contains("\"config\":\"AVA X4\""));
        assert!(json.contains("\"total_mj\":"));
        let entries = json.matches("\"total_mj\":").count();
        assert_eq!(entries, report.reports.len());
    }

    #[test]
    fn rg_lmul_equivalence_uses_lmul_type() {
        // Guard against accidentally dropping RG configurations from the sweep.
        let labels: Vec<String> = evaluated_systems()
            .iter()
            .map(|s| s.label().to_string())
            .collect();
        for l in Lmul::all() {
            assert!(labels
                .iter()
                .any(|s| s == &format!("RG-LMUL{}", l.factor())));
        }
    }
}
