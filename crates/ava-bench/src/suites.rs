//! The wall-clock benchmark suites measuring the *simulator itself*.
//!
//! Each suite used to live in its own `benches/*.rs` target; the bodies
//! moved here so the same measurements can run two ways:
//!
//! * `cargo bench` — each thin bench target calls [`run_suite`] with a
//!   printing callback, preserving the familiar incremental output;
//! * `cargo run --bin bench_baseline` — the recorder runs every suite and
//!   persists the results as `BENCH_<suite>.json`, the files the CI
//!   `bench-regression` job diffs against the committed baselines.

use ava_compiler::{compile, CompileOptions, KernelBuilder};
use ava_isa::{Element, Lmul, Opcode, VReg};
use ava_memory::{HierarchyConfig, MemoryHierarchy};
use ava_sim::progcache::compile_fingerprint;
use ava_sim::{run_workload, DiskProgramCache, ScenarioConfig};
use ava_vpu::exec::{execute_into, OperandValue};
use ava_vpu::rac::Rac;
use ava_vpu::rename::{RenameCheckpoint, RenameUnit};
use ava_vpu::swap::{SwapDecision, SwapLogic};
use ava_vpu::vrf_mapping::VrfMapping;

use crate::bench_workloads;
use crate::microbench::{measure, BenchResult};

/// Names of every benchmark suite, in the order the recorder runs them.
pub const SUITE_NAMES: [&str; 4] = ["fig3_kernels", "fig4_area", "memory_hierarchy", "microarch"];

/// Runs the named suite, invoking `report` after each benchmark completes
/// (so long suites still show incremental progress) and returning all
/// results.
///
/// # Panics
///
/// Panics if `name` is not one of [`SUITE_NAMES`], or if a benchmarked
/// simulation fails validation (which would make its timing meaningless).
pub fn run_suite(name: &str, mut report: impl FnMut(&BenchResult)) -> Vec<BenchResult> {
    let mut results = Vec::new();
    {
        let mut run = |bench_name: &str, f: &mut dyn FnMut() -> u64| {
            let r = measure(bench_name, f);
            report(&r);
            results.push(r);
        };
        match name {
            "fig3_kernels" => fig3_kernels(&mut run),
            "fig4_area" => fig4_area(&mut run),
            "memory_hierarchy" => memory_hierarchy(&mut run),
            "microarch" => microarch(&mut run),
            other => panic!("unknown bench suite {other:?} (expected one of {SUITE_NAMES:?})"),
        }
    }
    results
}

type Runner<'a> = dyn FnMut(&str, &mut dyn FnMut() -> u64) + 'a;

/// End-to-end simulation of each application on the key configurations
/// (NATIVE X1, NATIVE X8, AVA X8, RG-LMUL8). Each benchmark measures the
/// wall-clock cost of one full compile + simulate + validate pass of the
/// reproduction pipeline; the *simulated* cycle numbers behind Figure 3 are
/// printed by the `fig3` binary.
fn fig3_kernels(run: &mut Runner<'_>) {
    let systems = [
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(8),
        ScenarioConfig::ava_x(8),
        ScenarioConfig::rg_lmul(Lmul::M8),
    ];
    for workload in bench_workloads() {
        for sys in &systems {
            run(
                &format!("fig3/{}/{}", workload.name(), sys.label()),
                &mut || {
                    let report = run_workload(workload.as_ref(), sys);
                    assert!(report.validated, "{:?}", report.validation_error);
                    report.cycles
                },
            );
        }
    }
}

/// The McPAT-style area and energy evaluation and the analytical post-PnR
/// estimator behind Figure 4 and Table V.
fn fig4_area(run: &mut Runner<'_>) {
    use ava_energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
    use ava_workloads::Axpy;

    let params = EnergyParams::default();
    let sys = ScenarioConfig::ava_x(8);
    let vpu = sys.vpu_config();
    let report = run_workload(&Axpy::new(1024), &sys);

    run("fig4/system_area", &mut || {
        system_area(&vpu).total().to_bits()
    });
    run("fig4/energy_breakdown", &mut || {
        energy_breakdown(&report, &vpu, &params).total().to_bits()
    });
    run("table5/pnr_estimate", &mut || {
        pnr_estimate(&vpu).area_mm2.to_bits()
    });
}

/// Unit-stride and strided vector accesses through the L2/DRAM timing
/// model, and the scalar L1 hit path.
fn memory_hierarchy(run: &mut Runner<'_>) {
    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 8);
    run("memory/unit_stride_128_elems", &mut || {
        mem.vector_access(base, 128 * 8, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 512);
    let addrs: Vec<u64> = (0..128u64).map(|i| base + i * 512).collect();
    run("memory/strided_128_elems", &mut || {
        mem.vector_access_elements(&addrs, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(64);
    mem.scalar_access(base, false);
    run("memory/scalar_l1_hit", &mut || {
        mem.scalar_access(base, false)
    });
}

/// The renaming unit, the Register Access Counters, the Swap Logic victim
/// selection, and the register allocator that produces spill code — the
/// structures the paper adds to the VPU, so their cost in the simulator is
/// tracked explicitly.
fn microarch(run: &mut Runner<'_>) {
    run("microarch/rename_chain", &mut || {
        let mut unit = RenameUnit::new(64);
        let mut released = Vec::new();
        for i in 0..1000u32 {
            let dst = VReg::new((i % 32) as u8);
            let renamed = unit.rename(Some(dst), &[]).unwrap();
            if let Some(old) = renamed.old_dst {
                released.push(old);
                if released.len() > 16 {
                    unit.release(released.remove(0));
                }
            }
        }
        unit.free_count() as u64
    });

    let mut mapping = VrfMapping::new(64, 8);
    let mut rac = Rac::new(64);
    for v in 0..8u16 {
        mapping.allocate_physical(v).unwrap();
        for _ in 0..=v {
            rac.increment(v);
        }
    }
    let logic = SwapLogic::new();
    run(
        "microarch/swap_victim_selection",
        &mut || match logic.plan_free_register(&mapping, &rac, &[0, 1]) {
            None => 0,
            Some(SwapDecision::AlreadyFree) => 1,
            Some(SwapDecision::Reclaim(_)) => 2,
            Some(SwapDecision::SwapStore(_)) => 3,
        },
    );

    // A kernel with 24 simultaneously-live values allocated onto the
    // 4-register LMUL=8 budget: the worst spill case of the evaluation.
    let mut builder = KernelBuilder::new("pressure");
    let vals: Vec<_> = (0..24).map(|i| builder.vload(64 * i as u64)).collect();
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = builder.vfadd(acc, v);
    }
    builder.vstore(acc, 0x10_0000);
    let kernel = builder.finish();
    run("microarch/regalloc_spilling", &mut || {
        let out = compile(&kernel, &CompileOptions::new(Lmul::M8, 0x40_0000, 1024));
        assert!(out.spill_stores > 0);
        out.program.len() as u64
    });

    // Checkpoint/restore against preallocated scratch: the speculation
    // save-points the renaming unit takes on every swap decision.
    let mut unit = RenameUnit::new(64);
    for i in 0..32u8 {
        unit.rename(Some(VReg::new(i % 32)), &[]).unwrap();
    }
    let mut scratch = RenameCheckpoint::empty();
    run("microarch/rename_checkpoint_restore", &mut || {
        let mut touched = 0u64;
        for _ in 0..100 {
            unit.checkpoint_into(&mut scratch);
            unit.restore(&scratch);
            touched += 1;
        }
        touched + unit.free_count() as u64
    });

    // Functional execution into a caller-owned strip buffer, the pattern
    // the VPU uses so steady-state strips never reallocate.
    let a: Vec<Element> = (0..256).map(|i| Element::from_f64(i as f64)).collect();
    let b: Vec<Element> = (0..256)
        .map(|i| Element::from_f64(2.5 * i as f64))
        .collect();
    let c: Vec<Element> = (0..256)
        .map(|i| Element::from_f64(0.5 * i as f64))
        .collect();
    let mut strip = Vec::new();
    run("microarch/exec_strip_reuse", &mut || {
        let mut bits = 0u64;
        for _ in 0..64 {
            execute_into(
                Opcode::VFMacc,
                &[
                    OperandValue::Vector(&a),
                    OperandValue::Vector(&b),
                    OperandValue::Vector(&c),
                ],
                256,
                &mut strip,
            );
            bits ^= strip[255].bits();
        }
        bits
    });

    // A warm persistent ProgramCache hit: fingerprint the kernel and read
    // the compiled program back from disk instead of re-running regalloc.
    let opts = CompileOptions::new(Lmul::M8, 0x40_0000, 1024);
    let dir = std::env::temp_dir().join(format!("ava-bench-progcache-{}", std::process::id()));
    let cache = DiskProgramCache::open(&dir).expect("temp program cache opens");
    let fingerprint = compile_fingerprint(&kernel, &opts);
    cache
        .insert(fingerprint, &compile(&kernel, &opts))
        .expect("seeding the program cache succeeds");
    run("microarch/program_cache_warm_compile", &mut || {
        let compiled = cache
            .lookup(compile_fingerprint(&kernel, &opts))
            .expect("warm cache hit");
        compiled.program.len() as u64
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown bench suite")]
    fn unknown_suites_are_rejected() {
        let _ = run_suite("nonsense", |_| {});
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names = SUITE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITE_NAMES.len());
    }
}
