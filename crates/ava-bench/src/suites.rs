//! The wall-clock benchmark suites measuring the *simulator itself*.
//!
//! Each suite used to live in its own `benches/*.rs` target; the bodies
//! moved here so the same measurements can run two ways:
//!
//! * `cargo bench` — each thin bench target calls [`run_suite`] with a
//!   printing callback, preserving the familiar incremental output;
//! * `cargo run --bin bench_baseline` — the recorder runs every suite and
//!   persists the results as `BENCH_<suite>.json`, the files the CI
//!   `bench-regression` job diffs against the committed baselines.

use ava_compiler::{compile, CompileOptions, KernelBuilder};
use ava_isa::{Element, Lmul, Opcode, VReg};
use ava_memory::{HierarchyConfig, MemoryHierarchy};
use ava_sim::progcache::compile_fingerprint;
use ava_sim::{
    run_workload, DiskProgramCache, ResultStore, ScenarioConfig, StoreKey, WorkStealScheduler,
};
use ava_vpu::exec::{execute_into, OperandValue};
use ava_vpu::rac::Rac;
use ava_vpu::rename::{RenameCheckpoint, RenameUnit};
use ava_vpu::swap::{SwapDecision, SwapLogic};
use ava_vpu::vrf_mapping::VrfMapping;

use crate::bench_workloads;
use crate::microbench::{measure, BenchResult};

/// Names of every benchmark suite, in the order the recorder runs them.
pub const SUITE_NAMES: [&str; 4] = ["fig3_kernels", "fig4_area", "memory_hierarchy", "microarch"];

/// Runs the named suite, invoking `report` after each benchmark completes
/// (so long suites still show incremental progress) and returning all
/// results.
///
/// # Panics
///
/// Panics if `name` is not one of [`SUITE_NAMES`], or if a benchmarked
/// simulation fails validation (which would make its timing meaningless).
pub fn run_suite(name: &str, mut report: impl FnMut(&BenchResult)) -> Vec<BenchResult> {
    let mut results = Vec::new();
    {
        let mut run = |bench_name: &str, f: &mut dyn FnMut() -> u64| {
            let r = measure(bench_name, f);
            report(&r);
            results.push(r);
        };
        match name {
            "fig3_kernels" => fig3_kernels(&mut run),
            "fig4_area" => fig4_area(&mut run),
            "memory_hierarchy" => memory_hierarchy(&mut run),
            "microarch" => microarch(&mut run),
            other => panic!("unknown bench suite {other:?} (expected one of {SUITE_NAMES:?})"),
        }
    }
    results
}

type Runner<'a> = dyn FnMut(&str, &mut dyn FnMut() -> u64) + 'a;

/// End-to-end simulation of each application on the key configurations
/// (NATIVE X1, NATIVE X8, AVA X8, RG-LMUL8). Each benchmark measures the
/// wall-clock cost of one full compile + simulate + validate pass of the
/// reproduction pipeline; the *simulated* cycle numbers behind Figure 3 are
/// printed by the `fig3` binary.
fn fig3_kernels(run: &mut Runner<'_>) {
    let systems = [
        ScenarioConfig::native_x(1),
        ScenarioConfig::native_x(8),
        ScenarioConfig::ava_x(8),
        ScenarioConfig::rg_lmul(Lmul::M8),
    ];
    for workload in bench_workloads() {
        for sys in &systems {
            run(
                &format!("fig3/{}/{}", workload.name(), sys.label()),
                &mut || {
                    let report = run_workload(workload.as_ref(), sys);
                    assert!(report.validated, "{:?}", report.validation_error);
                    report.cycles
                },
            );
        }
    }
}

/// The McPAT-style area and energy evaluation and the analytical post-PnR
/// estimator behind Figure 4 and Table V.
fn fig4_area(run: &mut Runner<'_>) {
    use ava_energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
    use ava_workloads::Axpy;

    let params = EnergyParams::default();
    let sys = ScenarioConfig::ava_x(8);
    let vpu = sys.vpu_config();
    let report = run_workload(&Axpy::new(1024), &sys);

    run("fig4/system_area", &mut || {
        system_area(&vpu).total().to_bits()
    });
    run("fig4/energy_breakdown", &mut || {
        energy_breakdown(&report, &vpu, &params).total().to_bits()
    });
    run("table5/pnr_estimate", &mut || {
        pnr_estimate(&vpu).area_mm2.to_bits()
    });
}

/// Unit-stride and strided vector accesses through the L2/DRAM timing
/// model, and the scalar L1 hit path.
fn memory_hierarchy(run: &mut Runner<'_>) {
    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 8);
    run("memory/unit_stride_128_elems", &mut || {
        mem.vector_access(base, 128 * 8, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 512);
    let addrs: Vec<u64> = (0..128u64).map(|i| base + i * 512).collect();
    run("memory/strided_128_elems", &mut || {
        mem.vector_access_elements(&addrs, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(64);
    mem.scalar_access(base, false);
    run("memory/scalar_l1_hit", &mut || {
        mem.scalar_access(base, false)
    });
}

/// The renaming unit, the Register Access Counters, the Swap Logic victim
/// selection, and the register allocator that produces spill code — the
/// structures the paper adds to the VPU, so their cost in the simulator is
/// tracked explicitly.
fn microarch(run: &mut Runner<'_>) {
    run("microarch/rename_chain", &mut || {
        let mut unit = RenameUnit::new(64);
        let mut released = Vec::new();
        for i in 0..1000u32 {
            let dst = VReg::new((i % 32) as u8);
            let renamed = unit.rename(Some(dst), &[]).unwrap();
            if let Some(old) = renamed.old_dst {
                released.push(old);
                if released.len() > 16 {
                    unit.release(released.remove(0));
                }
            }
        }
        unit.free_count() as u64
    });

    let mut mapping = VrfMapping::new(64, 8);
    let mut rac = Rac::new(64);
    for v in 0..8u16 {
        mapping.allocate_physical(v).unwrap();
        for _ in 0..=v {
            rac.increment(v);
        }
    }
    let logic = SwapLogic::new();
    run(
        "microarch/swap_victim_selection",
        &mut || match logic.plan_free_register(&mapping, &rac, &[0, 1]) {
            None => 0,
            Some(SwapDecision::AlreadyFree) => 1,
            Some(SwapDecision::Reclaim(_)) => 2,
            Some(SwapDecision::SwapStore(_)) => 3,
        },
    );

    // A kernel with 24 simultaneously-live values allocated onto the
    // 4-register LMUL=8 budget: the worst spill case of the evaluation.
    let mut builder = KernelBuilder::new("pressure");
    let vals: Vec<_> = (0..24).map(|i| builder.vload(64 * i as u64)).collect();
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = builder.vfadd(acc, v);
    }
    builder.vstore(acc, 0x10_0000);
    let kernel = builder.finish();
    run("microarch/regalloc_spilling", &mut || {
        let out = compile(&kernel, &CompileOptions::new(Lmul::M8, 0x40_0000, 1024));
        assert!(out.spill_stores > 0);
        out.program.len() as u64
    });

    // Checkpoint/restore against preallocated scratch: the speculation
    // save-points the renaming unit takes on every swap decision.
    let mut unit = RenameUnit::new(64);
    for i in 0..32u8 {
        unit.rename(Some(VReg::new(i % 32)), &[]).unwrap();
    }
    let mut scratch = RenameCheckpoint::empty();
    run("microarch/rename_checkpoint_restore", &mut || {
        let mut touched = 0u64;
        for _ in 0..100 {
            unit.checkpoint_into(&mut scratch);
            unit.restore(&scratch);
            touched += 1;
        }
        touched + unit.free_count() as u64
    });

    // Functional execution into a caller-owned strip buffer, the pattern
    // the VPU uses so steady-state strips never reallocate.
    let a: Vec<Element> = (0..256).map(|i| Element::from_f64(i as f64)).collect();
    let b: Vec<Element> = (0..256)
        .map(|i| Element::from_f64(2.5 * i as f64))
        .collect();
    let c: Vec<Element> = (0..256)
        .map(|i| Element::from_f64(0.5 * i as f64))
        .collect();
    let mut strip = Vec::new();
    run("microarch/exec_strip_reuse", &mut || {
        let mut bits = 0u64;
        for _ in 0..64 {
            execute_into(
                Opcode::VFMacc,
                &[
                    OperandValue::Vector(&a),
                    OperandValue::Vector(&b),
                    OperandValue::Vector(&c),
                ],
                256,
                &mut strip,
            );
            bits ^= strip[255].bits();
        }
        bits
    });

    // A warm persistent ProgramCache hit: fingerprint the kernel and read
    // the compiled program back from disk instead of re-running regalloc.
    let opts = CompileOptions::new(Lmul::M8, 0x40_0000, 1024);
    let dir = std::env::temp_dir().join(format!("ava-bench-progcache-{}", std::process::id()));
    let cache = DiskProgramCache::open(&dir).expect("temp program cache opens");
    let fingerprint = compile_fingerprint(&kernel, &opts);
    cache
        .insert(fingerprint, &compile(&kernel, &opts))
        .expect("seeding the program cache succeeds");
    run("microarch/program_cache_warm_compile", &mut || {
        let compiled = cache
            .lookup(compile_fingerprint(&kernel, &opts))
            .expect("warm cache hit");
        compiled.program.len() as u64
    });
    let _ = std::fs::remove_dir_all(&dir);

    // The claim/complete hot path of the sweep scheduler under contention:
    // N worker threads drain a 4096-point synthetic grid doing nothing but
    // claiming and completing, so the scheduler itself is the entire
    // measured cost. The work-stealing scheduler takes per-worker locks;
    // the `single_mutex` variant reconstructs the previous global-mutex
    // O(n)-scan scheduler as the contention baseline it replaced.
    run("microarch/sched_claim_contention_8w", &mut || {
        drain_work_steal(8)
    });
    run("microarch/sched_claim_contention_16w", &mut || {
        drain_work_steal(16)
    });
    run("microarch/sched_claim_single_mutex_16w", &mut || {
        drain_single_mutex(16)
    });

    // One full garbage-collection pass over a populated result store with a
    // cap nothing exceeds: the pure directory-scan + mtime-sort cost every
    // `--store-gc-mib` invocation pays before any eviction.
    let gc_dir = std::env::temp_dir().join(format!("ava-bench-storegc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&gc_dir);
    let store = ResultStore::open(&gc_dir).expect("temp result store opens");
    let seeded = run_workload(&ava_workloads::Axpy::new(64), &ScenarioConfig::ava_x(2));
    let system = ScenarioConfig::ava_x(2).resolve();
    for fingerprint in 0..64u64 {
        let key = StoreKey::new("axpy", 64, &system, fingerprint);
        store
            .insert(&key, &seeded, 1_000)
            .expect("seeding the result store succeeds");
    }
    run("microarch/store_gc_scan", &mut || {
        let stats = store.gc(u64::MAX);
        assert_eq!(stats.evicted, 0, "the cap must never evict in this bench");
        stats.remaining as u64
    });
    let _ = std::fs::remove_dir_all(&gc_dir);
}

/// The synthetic 4096-point grid the scheduler-contention benches drain:
/// deterministic pseudo-random heuristic costs so the claim order is
/// non-trivial but identical across runs.
fn synthetic_grid() -> (Vec<u64>, Vec<u64>) {
    let heuristic: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(2_654_435_761) % 10_000 + 1)
        .collect();
    let walls: Vec<u64> = heuristic.iter().map(|h| h % 977 + 1).collect();
    (heuristic, walls)
}

/// Drains a fresh [`WorkStealScheduler`] over the synthetic grid with
/// `workers` real threads, each feeding deterministic pseudo-wall-clocks
/// back through `complete`. Returns claims ⊕ steals so the whole drain is
/// observable.
fn drain_work_steal(workers: usize) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let (heuristic, walls) = synthetic_grid();
    let n = heuristic.len();
    let scheduler = WorkStealScheduler::new(workers, heuristic, vec![None; n]);
    let claims = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let scheduler = &scheduler;
            let claims = &claims;
            let walls = &walls;
            scope.spawn(move || {
                let mut mine = 0u64;
                while let Some((point, _cost)) = scheduler.claim(worker) {
                    scheduler.complete(point, walls[point]);
                    mine += 1;
                }
                claims.fetch_add(mine, Ordering::Relaxed);
            });
        }
    });
    let claimed = claims.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(claimed as usize, n, "every point is claimed exactly once");
    claimed ^ scheduler.steals()
}

/// The previous sweep scheduler, reconstructed as the contention baseline:
/// one global mutex, an O(n) scan per claim and a full pending-point
/// rescale per completion — every worker serialises on the same lock.
struct SingleMutexScheduler {
    inner: std::sync::Mutex<SingleMutexInner>,
}

struct SingleMutexInner {
    heuristic: Vec<u64>,
    costs: Vec<u64>,
    pending: Vec<bool>,
    remaining: usize,
    ratios: Vec<f64>,
}

impl SingleMutexScheduler {
    fn new(heuristic: Vec<u64>) -> Self {
        let n = heuristic.len();
        Self {
            inner: std::sync::Mutex::new(SingleMutexInner {
                costs: heuristic.clone(),
                heuristic,
                pending: vec![true; n],
                remaining: n,
                ratios: Vec::new(),
            }),
        }
    }

    fn claim(&self) -> Option<usize> {
        let mut inner = self.inner.lock().unwrap();
        if inner.remaining == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for i in 0..inner.costs.len() {
            if inner.pending[i] && best.is_none_or(|b| inner.costs[i] > inner.costs[b]) {
                best = Some(i);
            }
        }
        let i = best?;
        inner.pending[i] = false;
        inner.remaining -= 1;
        Some(i)
    }

    fn complete(&self, point: usize, wall_ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        let ratio = wall_ns as f64 / inner.heuristic[point].max(1) as f64;
        let pos = inner.ratios.partition_point(|&r| r < ratio);
        inner.ratios.insert(pos, ratio);
        let mid = inner.ratios.len() / 2;
        let scale = if inner.ratios.len() % 2 == 1 {
            inner.ratios[mid]
        } else {
            f64::midpoint(inner.ratios[mid - 1], inner.ratios[mid])
        };
        for i in 0..inner.costs.len() {
            if inner.pending[i] {
                inner.costs[i] = ((inner.heuristic[i] as f64 * scale).round() as u64).max(1);
            }
        }
    }
}

/// Drains the reconstructed single-mutex scheduler over the same synthetic
/// grid with `workers` real threads.
fn drain_single_mutex(workers: usize) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let (heuristic, walls) = synthetic_grid();
    let n = heuristic.len();
    let scheduler = SingleMutexScheduler::new(heuristic);
    let claims = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let scheduler = &scheduler;
            let claims = &claims;
            let walls = &walls;
            scope.spawn(move || {
                let mut mine = 0u64;
                while let Some(point) = scheduler.claim() {
                    scheduler.complete(point, walls[point]);
                    mine += 1;
                }
                claims.fetch_add(mine, Ordering::Relaxed);
            });
        }
    });
    let claimed = claims.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(claimed as usize, n, "every point is claimed exactly once");
    claimed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unknown bench suite")]
    fn unknown_suites_are_rejected() {
        let _ = run_suite("nonsense", |_| {});
    }

    #[test]
    fn suite_names_are_distinct() {
        let mut names = SUITE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITE_NAMES.len());
    }
}
