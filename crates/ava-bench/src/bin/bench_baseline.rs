//! Baseline recorder: runs every micro-benchmark suite and persists the
//! results as `BENCH_<suite>.json`, one file per suite, so CI can diff the
//! simulator's wall-clock cost against the committed baselines
//! (`ci/baselines/`) and catch reproduction-infrastructure slowdowns.
//!
//! Usage:
//!
//! ```text
//! bench_baseline [--out-dir <dir>] [--suite <name>]...
//! ```
//!
//! With no `--suite` flags every suite runs. The emitted schema is:
//!
//! ```json
//! {"schema":"ava-bench-baseline/v1","suite":"fig3_kernels",
//!  "benchmarks":[{"name":"fig3/axpy/NATIVE X1","iters":123,
//!                 "min_ns":456.0,"mean_ns":789.0}, ...]}
//! ```

use std::path::Path;
use std::process::ExitCode;

use ava_bench::microbench::{header, print_result, BenchResult};
use ava_bench::suites::{run_suite, SUITE_NAMES};
use ava_sim::json::{object, Json};

fn suite_json(suite: &str, results: &[BenchResult]) -> Json {
    object()
        .field("schema", "ava-bench-baseline/v1")
        .field("suite", suite)
        .field(
            "benchmarks",
            results
                .iter()
                .map(|r| {
                    object()
                        .field("name", r.name.as_str())
                        .field("iters", r.iters)
                        .field("min_ns", r.min_ns)
                        .field("mean_ns", r.mean_ns)
                        .finish()
                })
                .collect::<Json>(),
        )
        .finish()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = ".".to_string();
    let mut suites: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out-dir" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--suite" if i + 1 < args.len() => {
                suites.push(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                eprintln!("usage: bench_baseline [--out-dir <dir>] [--suite <name>]...");
                eprintln!("suites: {SUITE_NAMES:?}");
                return ExitCode::from(2);
            }
        }
    }
    if suites.is_empty() {
        suites = SUITE_NAMES.iter().map(ToString::to_string).collect();
    }
    for suite in &suites {
        if !SUITE_NAMES.contains(&suite.as_str()) {
            eprintln!("unknown suite {suite:?} (expected one of {SUITE_NAMES:?})");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }

    for suite in &suites {
        header(suite);
        let results = run_suite(suite, print_result);
        let path = Path::new(&out_dir).join(format!("BENCH_{suite}.json"));
        let doc = suite_json(suite, &results);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
