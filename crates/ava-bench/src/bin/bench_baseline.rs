//! Baseline recorder: runs every micro-benchmark suite and persists the
//! results as `BENCH_<suite>.json`, one file per suite, so CI can diff the
//! simulator's wall-clock cost against the committed baselines
//! (`ci/baselines/`) and catch reproduction-infrastructure slowdowns.
//!
//! Usage:
//!
//! ```text
//! bench_baseline [--out-dir <dir>] [--suite <name>]...
//! ```
//!
//! With no `--suite` flags every suite runs. The emitted schema is:
//!
//! ```json
//! {"schema":"ava-bench-baseline/v1","suite":"fig3_kernels",
//!  "benchmarks":[{"name":"fig3/axpy/NATIVE X1","iters":123,
//!                 "min_ns":456.0,"mean_ns":789.0}, ...]}
//! ```

use std::path::Path;
use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::microbench::{header, print_result, BenchResult};
use ava_bench::suites::{run_suite, SUITE_NAMES};
use ava_sim::json::{object, Json};

const USAGE: &str = "bench_baseline [--out-dir <dir>] [--suite <name>]...";

fn suite_json(suite: &str, results: &[BenchResult]) -> Json {
    object()
        .field("schema", "ava-bench-baseline/v1")
        .field("suite", suite)
        .field(
            "benchmarks",
            results
                .iter()
                .map(|r| {
                    object()
                        .field("name", r.name.as_str())
                        .field("iters", r.iters)
                        .field("min_ns", r.min_ns)
                        .field("mean_ns", r.mean_ns)
                        .finish()
                })
                .collect::<Json>(),
        )
        .finish()
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            let code = usage_error(USAGE, &e);
            eprintln!("suites: {SUITE_NAMES:?}");
            code
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    // Baselines measure the simulator's own wall-clock: parallel execution
    // or store-served points would record meaningless timings, and the
    // output scheme is one BENCH_<suite>.json per suite, not one document.
    args.reject_execution_flags("bench_baseline must measure serial, uncached wall-clock")?;
    args.reject_json("bench_baseline writes BENCH_<suite>.json per suite; use --out-dir")?;
    let out_dir = args
        .take_value("--out-dir")?
        .unwrap_or_else(|| ".".to_string());
    let mut suites: Vec<String> = Vec::new();
    while let Some(suite) = args.take_value("--suite")? {
        suites.push(suite);
    }
    args.finish()?;

    if suites.is_empty() {
        suites = SUITE_NAMES.iter().map(ToString::to_string).collect();
    }
    for suite in &suites {
        if !SUITE_NAMES.contains(&suite.as_str()) {
            return Err(format!(
                "unknown suite {suite:?} (expected one of {SUITE_NAMES:?})"
            ));
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return Ok(ExitCode::FAILURE);
    }

    for suite in &suites {
        header(suite);
        let results = run_suite(suite, print_result);
        let path = Path::new(&out_dir).join(format!("BENCH_{suite}.json"));
        let doc = suite_json(suite, &results);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("wrote {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}
