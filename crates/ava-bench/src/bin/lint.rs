//! Static-analysis sweep: runs the `ava-lint` IR verifier
//! (`ava_compiler::analysis`) over every shipped workload and composite mix
//! at every vector length the evaluated configurations exercise, and
//! reports the findings as a table — the static counterpart of the
//! simulation sweeps, catching result-corrupting kernel bugs before any
//! cycle is simulated.
//!
//! Usage:
//!
//! ```text
//! lint [--mode deny|warn] [--json <path>]
//! ```
//!
//! The checked grid is the six Table IV applications, the standalone
//! somier-relaxation body, the three-stage dataflow pipeline and the
//! iterated solver mix, each analyzed at the distinct MVLs of the fourteen
//! evaluated configurations (Tables II/III) plus the MVL-512 Table I
//! extrapolation point. `--mode deny` (the default, used by CI) fails on
//! any finding at warn severity or above; `--mode warn` fails only on
//! errors.
//!
//! With `--json`, the machine-readable findings are written to `<path>`;
//! the document is additionally parsed back through [`ava_sim::json::parse`]
//! before it is written, so the emitted artefact is guaranteed to be valid
//! JSON.

use std::process::ExitCode;

use ava_bench::cli::{usage_error, write_json, BenchArgs};
use ava_bench::{paper_workloads, pipelined_mix, solver_mix};
use ava_sim::json::{object, parse, Json};
use ava_sim::ScenarioConfig;
use ava_workloads::analysis::Severity;
use ava_workloads::{SharedWorkload, Somier};

const USAGE: &str = "lint [--mode deny|warn] [--json <path>]";

/// One workload analyzed at one MVL, with the labels of every evaluated
/// configuration that MVL covers.
struct LintPoint {
    workload: String,
    mvl: usize,
    configs: Vec<String>,
    report: ava_workloads::analysis::AnalysisReport,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    args.reject_execution_flags("lint analyzes kernels statically, without a sweep")?;
    let mode = args.take_value("--mode")?.unwrap_or_else(|| "deny".into());
    if mode != "deny" && mode != "warn" {
        return Err(format!("--mode must be deny or warn, got {mode}"));
    }
    args.finish()?;
    let json_path = args.json;
    // Deny mode gates on anything suspicious; warn mode only on findings
    // that corrupt results.
    let threshold = if mode == "deny" {
        Severity::Warn
    } else {
        Severity::Error
    };

    let mut workloads: Vec<SharedWorkload> = paper_workloads();
    workloads.push(std::sync::Arc::new(Somier::relaxation(4096)));
    workloads.push(pipelined_mix(4096));
    workloads.push(solver_mix(4096, 4));

    // The fourteen evaluated configurations plus the Table I MVL-512
    // extrapolation point, deduplicated by the MVL they resolve to — the
    // static analysis only depends on the vector length, not on cache
    // sizes or queue depths.
    let mut configs = ScenarioConfig::all_evaluated();
    configs.push(ScenarioConfig::ava_x(8).with_mvl(512));
    let mut mvls: Vec<(usize, Vec<String>)> = Vec::new();
    for c in &configs {
        match mvls.iter_mut().find(|(m, _)| *m == c.mvl()) {
            Some((_, labels)) => labels.push(c.label().to_string()),
            None => mvls.push((c.mvl(), vec![c.label().to_string()])),
        }
    }

    eprintln!(
        "linting {} workloads x {} MVLs ({} configurations)...",
        workloads.len(),
        mvls.len(),
        configs.len()
    );
    let points: Vec<LintPoint> = workloads
        .iter()
        .flat_map(|w| {
            mvls.iter().map(|(mvl, labels)| LintPoint {
                workload: w.name().to_string(),
                mvl: *mvl,
                configs: labels.clone(),
                report: w.verify(*mvl),
            })
        })
        .collect();

    println!("ava-lint ({mode} mode) — static analysis findings");
    println!(
        "{:<12} {:>5} {:>8} {:>6} {:>6} {:>6}  status",
        "workload", "MVL", "configs", "error", "warn", "info"
    );
    let mut failures = 0usize;
    for p in &points {
        let count = |s: Severity| {
            p.report
                .diagnostics
                .iter()
                .filter(|d| d.severity == s)
                .count()
        };
        let ok = p.report.is_clean(threshold);
        if !ok {
            failures += 1;
        }
        println!(
            "{:<12} {:>5} {:>8} {:>6} {:>6} {:>6}  {}",
            p.workload,
            p.mvl,
            p.configs.len(),
            count(Severity::Error),
            count(Severity::Warn),
            count(Severity::Info),
            if ok { "ok" } else { "FAIL" }
        );
        for d in p.report.at_least(threshold) {
            println!("    {d}");
        }
    }
    println!(
        "{} of {} workload/MVL points clean at the {mode} threshold",
        points.len() - failures,
        points.len()
    );

    if let Some(path) = json_path.as_deref() {
        let doc = object()
            .field("schema", "ava-lint-report/v1")
            .field("mode", mode.as_str())
            .field("clean", failures == 0)
            .field(
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|p| {
                            object()
                                .field("workload", p.workload.as_str())
                                .field("mvl", p.mvl)
                                .field("configs", Json::from_iter(p.configs.iter().cloned()))
                                .field("clean", p.report.is_clean(threshold))
                                .field(
                                    "findings",
                                    Json::Arr(
                                        p.report
                                            .diagnostics
                                            .iter()
                                            .map(|d| {
                                                object()
                                                    .field("code", d.code.as_str())
                                                    .field("severity", d.severity.as_str())
                                                    .field("ir_index", d.ir_index)
                                                    .field("message", d.message.as_str())
                                                    .finish()
                                            })
                                            .collect(),
                                    ),
                                )
                                .finish()
                        })
                        .collect(),
                ),
            )
            .finish();
        // The emitter's own parser must accept (and exactly reproduce) the
        // document before it leaves the process.
        assert_eq!(
            parse(&doc.to_string()).as_ref(),
            Ok(&doc),
            "lint --json output failed to round-trip through ava_sim::json::parse"
        );
        if let Err(e) = write_json(path, &doc) {
            eprintln!("{e}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("wrote JSON report to {path}");
    }
    Ok(if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
