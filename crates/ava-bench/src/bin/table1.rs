//! Regenerates Table I of the paper: the physical vector register file
//! configurations supported by the 8 KB AVA P-VRF.

fn main() {
    print!("{}", ava_bench::format_table1());
}
