//! Regenerates Table I of the paper: the physical vector register file
//! configurations supported by the 8 KB AVA P-VRF.
//!
//! Usage: `table1 [--json <path>]`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_bench::{table1_rows, TABLE1_PVRF_BYTES};
use ava_sim::json::{object, Json};

const USAGE: &str = "table1 [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::parse()?;
    args.reject_execution_flags("table1 computes Table I analytically, without a sweep")?;
    args.finish()?;

    print!("{}", ava_bench::format_table1());

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "table1")
            .field("pvrf_bytes", TABLE1_PVRF_BYTES)
            .field(
                "configurations",
                table1_rows()
                    .into_iter()
                    .map(|(mvl, pregs)| {
                        object()
                            .field("mvl", mvl)
                            .field("physical_regs", pregs)
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    }))
}
