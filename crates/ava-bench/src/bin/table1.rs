//! Regenerates Table I of the paper: the physical vector register file
//! configurations supported by the 8 KB AVA P-VRF.
//!
//! Usage: `table1 [--json <path>]`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, json_only_args};
use ava_bench::{table1_rows, TABLE1_PVRF_BYTES};
use ava_sim::json::{object, Json};

fn main() -> ExitCode {
    let json_path = match json_only_args("table1 [--json <path>]") {
        Ok(p) => p,
        Err(code) => return code,
    };

    print!("{}", ava_bench::format_table1());

    emit_json(json_path.as_deref(), || {
        object()
            .field("artefact", "table1")
            .field("pvrf_bytes", TABLE1_PVRF_BYTES)
            .field(
                "configurations",
                table1_rows()
                    .into_iter()
                    .map(|(mvl, pregs)| {
                        object()
                            .field("mvl", mvl)
                            .field("physical_regs", pregs)
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    })
}
