//! Regenerates Tables II and III of the paper: the evaluated system
//! configurations (NATIVE, AVA and Register Grouping) and their equivalences.

fn main() {
    print!("{}", ava_bench::format_table_configs());
}
