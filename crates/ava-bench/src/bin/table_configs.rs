//! Regenerates Tables II and III of the paper: the evaluated system
//! configurations (NATIVE, AVA and Register Grouping) and their equivalences.
//!
//! Usage: `table_configs [--json <path>]`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, json_only_args};
use ava_bench::evaluated_systems;
use ava_sim::json::{object, Json};

fn main() -> ExitCode {
    let json_path = match json_only_args("table_configs [--json <path>]") {
        Ok(p) => p,
        Err(code) => return code,
    };

    print!("{}", ava_bench::format_table_configs());

    emit_json(json_path.as_deref(), || {
        object()
            .field("artefact", "table_configs")
            .field(
                "systems",
                evaluated_systems()
                    .iter()
                    .map(|sys| {
                        let vpu = sys.vpu_config();
                        object()
                            .field("config", sys.label())
                            .field("mvl", vpu.mvl)
                            .field("pvrf_bytes", vpu.pvrf_bytes)
                            .field("physical_regs", vpu.physical_regs())
                            .field("logical_regs", vpu.logical_regs)
                            .field("mvrf_bytes", vpu.mvrf_bytes())
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    })
}
