//! Regenerates Tables II and III of the paper: the evaluated system
//! configurations (NATIVE, AVA and Register Grouping) and their equivalences.
//!
//! Usage: `table_configs [--json <path>]`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_bench::evaluated_systems;
use ava_sim::json::{object, Json};

const USAGE: &str = "table_configs [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::parse()?;
    args.reject_execution_flags("table_configs lists the configurations, without a sweep")?;
    args.finish()?;

    print!("{}", ava_bench::format_table_configs());

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "table_configs")
            .field(
                "systems",
                evaluated_systems()
                    .iter()
                    .map(|sys| {
                        let vpu = sys.vpu_config();
                        object()
                            .field("config", sys.label())
                            .field("mvl", vpu.mvl)
                            .field("pvrf_bytes", vpu.pvrf_bytes)
                            .field("physical_regs", vpu.physical_regs())
                            .field("logical_regs", vpu.logical_regs)
                            .field("mvrf_bytes", vpu.mvrf_bytes())
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    }))
}
