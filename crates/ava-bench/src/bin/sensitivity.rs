//! Sensitivity study over the scenario axes the paper's fixed grid cannot
//! express: the Table I MVL extrapolation (MVL up to 512, P-VRF held at the
//! X8 physical-register floor) crossed with an L2-capacity axis — and,
//! optionally, the remaining hierarchy axes (L1 capacity, DRAM bandwidth,
//! VMU bus width) — run over single kernels and a multi-kernel composite
//! mix (plain, or a dataflow pipeline with `--mix pipelined`).
//!
//! The whole study is one declarative `Sweep` built from `ScenarioConfig`
//! axis builders and executed by the parallel engine.
//!
//! Usage:
//!
//! ```text
//! sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096]
//!             [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128]
//!             [--mix independent|pipelined|solver] [--iters <n>]
//!             [--app <name>] [--threads <n>] [--store <dir>] [--resume]
//!             [--shard <k>/<n>] [--store-gc-mib <n>] [--json <path>]
//! ```
//!
//! `--mix solver` adds the iterative somier-relaxation mix
//! (`Composite::iterated`, named "iterated"): the relaxation body unrolled
//! `--iters` times (default 4; the flag is only accepted together with
//! `--mix solver`) with position/velocity carry links ping-ponging between
//! two arrays, validated against the `n`-step scalar reference. The
//! iteration count is a first-class scenario axis: every solver-mix report
//! carries `"axes":{"iters":n}`, so rerunning with different `--iters`
//! values sweeps that axis like any other.
//!
//! `--store <dir>` attaches the content-addressed result store, which is
//! what makes the large crossed grids practical: a killed run resumes where
//! it stopped (`--resume` asserts a checkpoint exists), a rerun with one
//! more axis value simulates only the new points, and stored per-point wall
//! times seed the scheduler. `--shard <k>/<n>` runs only one deterministic
//! slice of the grid into the shared store (the per-workload tables are
//! then deferred to the final unsharded `--resume` merge pass), and
//! `--store-gc-mib <n>` caps the store directory after the sweep.
//!
//! With `--json`, the instrumented sweep report — axis metadata, the derived
//! per-point energy breakdown and the per-phase (and, for the solver mix,
//! per-iteration) composite breakdowns included — is written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_bench::{
    format_cache_sensitivity, format_mvl_extrapolation, pipelined_mix, sensitivity_grid_with,
    sensitivity_json, sensitivity_workloads, solver_mix, HierarchyAxes, SENSITIVITY_L2_KIB,
    SENSITIVITY_MVLS,
};
use ava_isa::{MAX_MVL_ELEMS, MIN_MVL_ELEMS};
use ava_sim::{format_sweep_summary, Sweep};
use ava_workloads::SharedWorkload;

const USAGE: &str = "sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096] \
                     [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128] \
                     [--mix independent|pipelined|solver] [--iters <n>] [--app <name>] \
                     [--threads <n>] [--store <dir>] [--resume] [--shard <k>/<n>] \
                     [--store-gc-mib <n>] [--json <path>]";

fn parse_list(arg: &str, what: &str) -> Result<Vec<usize>, String> {
    arg.split(',')
        .map(|v| {
            v.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid {what} value: {v}"))
        })
        .collect()
}

fn parse_list_u64(arg: &str, what: &str) -> Result<Vec<u64>, String> {
    parse_list(arg, what).map(|v| v.into_iter().map(|x| x as u64).collect())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;

    let mut mvls: Vec<usize> = SENSITIVITY_MVLS.to_vec();
    let mut l2_kib: Vec<usize> = SENSITIVITY_L2_KIB.to_vec();
    let mut extra = HierarchyAxes::default();
    if let Some(v) = args.take_value("--mvl")? {
        mvls = parse_list(&v, "--mvl")?;
    }
    if let Some(v) = args.take_value("--l2-kib")? {
        l2_kib = parse_list(&v, "--l2-kib")?;
    }
    if let Some(v) = args.take_value("--l1-kib")? {
        extra.l1_kib = parse_list(&v, "--l1-kib")?;
    }
    if let Some(v) = args.take_value("--dram-bw")? {
        extra.dram_bw = parse_list_u64(&v, "--dram-bw")?;
    }
    if let Some(v) = args.take_value("--vmu-bus")? {
        extra.vmu_bus = parse_list_u64(&v, "--vmu-bus")?;
    }
    let mix = args
        .take_value("--mix")?
        .unwrap_or_else(|| "independent".into());
    if !["independent", "pipelined", "solver"].contains(&mix.as_str()) {
        return Err(format!(
            "--mix must be independent, pipelined or solver, got {mix}"
        ));
    }
    let iters = match args.take_value("--iters")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--iters needs a positive integer, got {v}")),
        },
        None => None,
    };
    let app_filter = args.take_value("--app")?;
    args.finish()?;

    if mvls.is_empty() || l2_kib.is_empty() {
        return Err("--mvl and --l2-kib need at least one value each".to_string());
    }
    if let Some(bad) = mvls
        .iter()
        .find(|&&m| m % MIN_MVL_ELEMS != 0 || !(MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&m))
    {
        return Err(format!(
            "--mvl values must be multiples of {MIN_MVL_ELEMS} in \
             {MIN_MVL_ELEMS}..={MAX_MVL_ELEMS}, got {bad}"
        ));
    }
    if l2_kib.contains(&0) || extra.l1_kib.contains(&0) {
        return Err("cache capacities must be non-zero".to_string());
    }
    if extra.dram_bw.contains(&0) || extra.vmu_bus.contains(&0) {
        return Err("--dram-bw and --vmu-bus values must be non-zero".to_string());
    }
    if iters.is_some() && mix != "solver" {
        // Silently ignoring the flag would let a sweep the user believes
        // covers n iterations run with no iteration axis at all.
        return Err("--iters only applies to --mix solver".to_string());
    }
    let iters = iters.unwrap_or(4);

    let mut pool = sensitivity_workloads();
    if mix == "pipelined" {
        // The dataflow pipeline: axpy → somier → axpy with chained golden
        // references, sized like the composite so the working set straddles
        // the L2 axis.
        pool.push(pipelined_mix(8192));
    }
    if mix == "solver" {
        // The iterative solver: somier relaxation swept `iters` times with
        // ping-pong carry links, sized so the two carried arrays straddle
        // the L2 axis like the other mixes.
        pool.push(solver_mix(8192, iters));
    }
    let workloads: Vec<SharedWorkload> = pool
        .into_iter()
        .filter(|w| app_filter.as_ref().is_none_or(|f| w.name() == f))
        .collect();
    if workloads.is_empty() {
        return Err(
            "no workload matches --app filter (axpy, blackscholes, somier, composite, \
             pipelined with --mix pipelined, and iterated with --mix solver)"
                .to_string(),
        );
    }

    let mut scenarios = sensitivity_grid_with(&mvls, &l2_kib, &extra);
    if mix == "solver" {
        // Record the unroll depth as a first-class scenario axis so every
        // emitted report carries `"axes":{"iters":n}` — rerunning with a
        // different `--iters` then sweeps that axis like any other.
        scenarios = scenarios.into_iter().map(|c| c.with_iters(iters)).collect();
    }
    let per_workload = scenarios.len();
    let sweep = Sweep::grid(workloads.clone(), scenarios.clone());
    eprintln!(
        "sweeping {} points ({} workloads x {} scenarios: {} MVLs x {} L2 sizes{})...",
        sweep.len(),
        workloads.len(),
        per_workload,
        mvls.len(),
        l2_kib.len(),
        if extra.is_empty() {
            String::new()
        } else {
            format!(
                " x {} L1 x {} DRAM-bw x {} bus",
                extra.l1_kib.len().max(1),
                extra.dram_bw.len().max(1),
                extra.vmu_bus.len().max(1)
            )
        },
    );
    let report = args.configure(sweep.runner()).run();
    for r in &report.reports {
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
    }

    // A sharded run holds only its slice of the grid; the per-workload
    // tables need every scenario of a workload, so they are deferred to the
    // final unsharded merge pass over the shared store.
    if args.shard.is_none() {
        for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
            println!(
                "{}",
                format_mvl_extrapolation(workload.name(), sweep.resolved_systems(), runs)
            );
            println!("{}", format_cache_sensitivity(workload.name(), runs));
        }
    }
    eprintln!("{}", format_sweep_summary(&report));
    args.run_store_gc();

    Ok(emit_json(args.json.as_deref(), || {
        sensitivity_json(&mvls, &l2_kib, &extra, sweep.resolved_systems(), &report)
    }))
}
