//! Sensitivity study over the scenario axes the paper's fixed grid cannot
//! express: the Table I MVL extrapolation (MVL up to 512, P-VRF held at the
//! X8 physical-register floor) crossed with an L2-capacity axis — and,
//! optionally, the remaining hierarchy axes (L1 capacity, DRAM bandwidth,
//! VMU bus width, VVR rename-pool size) — run over single kernels and a
//! multi-kernel composite mix (plain, or a dataflow pipeline with
//! `--mix pipelined`).
//!
//! This binary is a thin shim over the spec-driven experiment driver: the
//! flags below translate into an in-memory [`ExperimentSpec`] (the
//! `experiments/sensitivity_*.json` manifests are the committed forms of
//! the same study) and [`ava_bench::driver`] runs it — one code path,
//! byte-identical output either way.
//!
//! Usage:
//!
//! ```text
//! sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096]
//!             [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128]
//!             [--vvr 32,64,128] [--chart tables|energy|all]
//!             [--mix independent|pipelined|solver] [--iters <n>]
//!             [--app <name>] [--threads <n>] [--store <dir>] [--resume]
//!             [--shard <k>/<n>] [--store-gc-mib <n>] [--json <path>]
//! ```
//!
//! `--vvr` drives the AVA rename-pool axis: every grid point is re-run with
//! the given virtual-vector-register counts (at least the 32 architectural
//! registers), so the study covers how much of AVA's benefit survives a
//! smaller rename pool. `--chart energy` replaces the cycles tables with
//! the total-energy matrix (one row per MVL, one column per L2 capacity,
//! priced by the McPAT-style model); `--chart all` prints both.
//!
//! `--mix solver` adds the iterative somier-relaxation mix
//! (`Composite::iterated`, named "iterated"): the relaxation body unrolled
//! `--iters` times (default 4; the flag is only accepted together with
//! `--mix solver`) with position/velocity carry links ping-ponging between
//! two arrays, validated against the `n`-step scalar reference. The
//! iteration count is a first-class scenario axis: every solver-mix report
//! carries `"axes":{"iters":n}`, so rerunning with different `--iters`
//! values sweeps that axis like any other.
//!
//! `--store <dir>` attaches the content-addressed result store, which is
//! what makes the large crossed grids practical: a killed run resumes where
//! it stopped (`--resume` asserts a checkpoint exists), a rerun with one
//! more axis value simulates only the new points, and stored per-point wall
//! times seed the scheduler. `--shard <k>/<n>` runs only one deterministic
//! slice of the grid into the shared store (the per-workload tables are
//! then deferred to the final unsharded `--resume` merge pass), and
//! `--store-gc-mib <n>` caps the store directory after the sweep.
//!
//! With `--json`, the instrumented sweep report — axis metadata, the derived
//! per-point energy breakdown and the per-phase (and, for the solver mix,
//! per-iteration) composite breakdowns included — is written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::driver;
use ava_bench::spec::{AxesSpec, ExperimentSpec};
use ava_isa::{MAX_MVL_ELEMS, MIN_MVL_ELEMS};

const USAGE: &str = "sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096] \
                     [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128] \
                     [--vvr 32,64,128] [--chart tables|energy|all] \
                     [--mix independent|pipelined|solver] [--iters <n>] [--app <name>] \
                     [--threads <n>] [--store <dir>] [--resume] [--shard <k>/<n>] \
                     [--store-gc-mib <n>] [--json <path>]";

fn parse_list(arg: &str, what: &str) -> Result<Vec<usize>, String> {
    arg.split(',')
        .map(|v| {
            v.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid {what} value: {v}"))
        })
        .collect()
}

fn parse_list_u64(arg: &str, what: &str) -> Result<Vec<u64>, String> {
    parse_list(arg, what).map(|v| v.into_iter().map(|x| x as u64).collect())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;

    let mut axes = AxesSpec::default();
    if let Some(v) = args.take_value("--mvl")? {
        axes.mvl = parse_list(&v, "--mvl")?;
    }
    if let Some(v) = args.take_value("--l2-kib")? {
        axes.l2_kib = parse_list(&v, "--l2-kib")?;
    }
    if let Some(v) = args.take_value("--l1-kib")? {
        axes.extra.l1_kib = parse_list(&v, "--l1-kib")?;
    }
    if let Some(v) = args.take_value("--dram-bw")? {
        axes.extra.dram_bw = parse_list_u64(&v, "--dram-bw")?;
    }
    if let Some(v) = args.take_value("--vmu-bus")? {
        axes.extra.vmu_bus = parse_list_u64(&v, "--vmu-bus")?;
    }
    if let Some(v) = args.take_value("--vvr")? {
        axes.extra.vvrs = parse_list(&v, "--vvr")?;
    }
    let chart = args
        .take_value("--chart")?
        .unwrap_or_else(|| "tables".into());
    let mix = args
        .take_value("--mix")?
        .unwrap_or_else(|| "independent".into());
    let iters = match args.take_value("--iters")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--iters needs a positive integer, got {v}")),
        },
        None => None,
    };
    let app_filter = args.take_value("--app")?;
    args.finish()?;

    // Keep the legacy flag diagnostics verbatim; the spec layer re-checks
    // the same constraints with its manifest-flavoured wording.
    if axes.mvl.is_empty() || axes.l2_kib.is_empty() {
        return Err("--mvl and --l2-kib need at least one value each".to_string());
    }
    if let Some(bad) = axes
        .mvl
        .iter()
        .find(|&&m| m % MIN_MVL_ELEMS != 0 || !(MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&m))
    {
        return Err(format!(
            "--mvl values must be multiples of {MIN_MVL_ELEMS} in \
             {MIN_MVL_ELEMS}..={MAX_MVL_ELEMS}, got {bad}"
        ));
    }
    if axes.l2_kib.contains(&0) || axes.extra.l1_kib.contains(&0) {
        return Err("cache capacities must be non-zero".to_string());
    }
    if axes.extra.dram_bw.contains(&0) || axes.extra.vmu_bus.contains(&0) {
        return Err("--dram-bw and --vmu-bus values must be non-zero".to_string());
    }
    if let Some(&bad) = axes.extra.vvrs.iter().find(|&&v| v < 32) {
        return Err(format!(
            "--vvr values must be at least the 32 architectural registers, got {bad}"
        ));
    }

    let spec = ExperimentSpec::sensitivity(axes, &mix, iters, app_filter, &chart)?;
    driver::run(&spec, &args)
}
