//! Sensitivity study over the scenario axes the paper's fixed grid cannot
//! express: the Table I MVL extrapolation (MVL up to 512, P-VRF held at the
//! X8 physical-register floor) crossed with an L2-capacity axis — and,
//! optionally, the remaining hierarchy axes (L1 capacity, DRAM bandwidth,
//! VMU bus width) — run over single kernels and a multi-kernel composite
//! mix (plain, or a dataflow pipeline with `--mix pipelined`).
//!
//! The whole study is one declarative `Sweep` built from `ScenarioConfig`
//! axis builders and executed by the parallel engine.
//!
//! Usage:
//!
//! ```text
//! sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096]
//!             [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128]
//!             [--mix independent|pipelined|solver] [--iters <n>]
//!             [--app <name>] [--threads <n>] [--json <path>]
//! ```
//!
//! `--mix solver` adds the iterative somier-relaxation mix
//! (`Composite::iterated`, named "iterated"): the relaxation body unrolled
//! `--iters` times (default 4; the flag is only accepted together with
//! `--mix solver`) with position/velocity carry links ping-ponging between
//! two arrays, validated against the `n`-step scalar reference. The
//! iteration count is a first-class scenario axis: every solver-mix report
//! carries `"axes":{"iters":n}`, so rerunning with different `--iters`
//! values sweeps that axis like any other.
//!
//! With `--json`, the instrumented sweep report — axis metadata, the derived
//! per-point energy breakdown and the per-phase (and, for the solver mix,
//! per-iteration) composite breakdowns included — is written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, take_json_flag};
use ava_bench::{
    format_cache_sensitivity, format_mvl_extrapolation, pipelined_mix, sensitivity_grid_with,
    sensitivity_json, sensitivity_workloads, solver_mix, HierarchyAxes, SENSITIVITY_L2_KIB,
    SENSITIVITY_MVLS,
};
use ava_isa::{MAX_MVL_ELEMS, MIN_MVL_ELEMS};
use ava_sim::Sweep;
use ava_workloads::SharedWorkload;

fn parse_list(arg: &str, what: &str) -> Result<Vec<usize>, String> {
    arg.split(',')
        .map(|v| {
            v.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid {what} value: {v}"))
        })
        .collect()
}

fn parse_list_u64(arg: &str, what: &str) -> Result<Vec<u64>, String> {
    parse_list(arg, what).map(|v| v.into_iter().map(|x| x as u64).collect())
}

fn main() -> ExitCode {
    let usage = "sensitivity [--mvl 128,256,512] [--l2-kib 256,1024,4096] \
                 [--l1-kib 16,32,64] [--dram-bw 6,12,24] [--vmu-bus 32,64,128] \
                 [--mix independent|pipelined|solver] [--iters <n>] [--app <name>] \
                 [--threads <n>] [--json <path>]";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match take_json_flag(&mut args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("usage: {usage}");
            return ExitCode::from(2);
        }
    };

    let mut mvls: Vec<usize> = SENSITIVITY_MVLS.to_vec();
    let mut l2_kib: Vec<usize> = SENSITIVITY_L2_KIB.to_vec();
    let mut extra = HierarchyAxes::default();
    let mut mix = "independent".to_string();
    let mut iters: Option<usize> = None;
    let mut app_filter: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let step = match args[i].as_str() {
            "--mvl" => value("--mvl")
                .and_then(|v| parse_list(&v, "--mvl"))
                .map(|v| mvls = v),
            "--l2-kib" => value("--l2-kib")
                .and_then(|v| parse_list(&v, "--l2-kib"))
                .map(|v| l2_kib = v),
            "--l1-kib" => value("--l1-kib")
                .and_then(|v| parse_list(&v, "--l1-kib"))
                .map(|v| extra.l1_kib = v),
            "--dram-bw" => value("--dram-bw")
                .and_then(|v| parse_list_u64(&v, "--dram-bw"))
                .map(|v| extra.dram_bw = v),
            "--vmu-bus" => value("--vmu-bus")
                .and_then(|v| parse_list_u64(&v, "--vmu-bus"))
                .map(|v| extra.vmu_bus = v),
            "--mix" => value("--mix").and_then(|v| {
                if v == "independent" || v == "pipelined" || v == "solver" {
                    mix = v;
                    Ok(())
                } else {
                    Err(format!(
                        "--mix must be independent, pipelined or solver, got {v}"
                    ))
                }
            }),
            "--iters" => value("--iters").and_then(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| iters = Some(n))
                    .ok_or_else(|| format!("--iters needs a positive integer, got {v}"))
            }),
            "--app" => value("--app").map(|v| app_filter = Some(v)),
            "--threads" => value("--threads").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| threads = Some(n))
                    .map_err(|_| format!("invalid --threads value: {v}"))
            }),
            other => Err(format!("unrecognised argument: {other}")),
        };
        if let Err(e) = step {
            eprintln!("{e}");
            eprintln!("usage: {usage}");
            return ExitCode::from(2);
        }
        i += 2;
    }
    if mvls.is_empty() || l2_kib.is_empty() {
        eprintln!("--mvl and --l2-kib need at least one value each");
        return ExitCode::from(2);
    }
    if let Some(bad) = mvls
        .iter()
        .find(|&&m| m % MIN_MVL_ELEMS != 0 || !(MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&m))
    {
        eprintln!(
            "--mvl values must be multiples of {MIN_MVL_ELEMS} in \
             {MIN_MVL_ELEMS}..={MAX_MVL_ELEMS}, got {bad}"
        );
        return ExitCode::from(2);
    }
    if l2_kib.contains(&0) || extra.l1_kib.contains(&0) {
        eprintln!("cache capacities must be non-zero");
        return ExitCode::from(2);
    }
    if extra.dram_bw.contains(&0) || extra.vmu_bus.contains(&0) {
        eprintln!("--dram-bw and --vmu-bus values must be non-zero");
        return ExitCode::from(2);
    }
    if iters.is_some() && mix != "solver" {
        // Silently ignoring the flag would let a sweep the user believes
        // covers n iterations run with no iteration axis at all.
        eprintln!("--iters only applies to --mix solver");
        return ExitCode::from(2);
    }
    let iters = iters.unwrap_or(4);

    let mut pool = sensitivity_workloads();
    if mix == "pipelined" {
        // The dataflow pipeline: axpy → somier → axpy with chained golden
        // references, sized like the composite so the working set straddles
        // the L2 axis.
        pool.push(pipelined_mix(8192));
    }
    if mix == "solver" {
        // The iterative solver: somier relaxation swept `iters` times with
        // ping-pong carry links, sized so the two carried arrays straddle
        // the L2 axis like the other mixes.
        pool.push(solver_mix(8192, iters));
    }
    let workloads: Vec<SharedWorkload> = pool
        .into_iter()
        .filter(|w| app_filter.as_ref().is_none_or(|f| w.name() == f))
        .collect();
    if workloads.is_empty() {
        eprintln!(
            "no workload matches --app filter (axpy, blackscholes, somier, composite, \
             pipelined with --mix pipelined, and iterated with --mix solver)"
        );
        return ExitCode::from(2);
    }

    let mut scenarios = sensitivity_grid_with(&mvls, &l2_kib, &extra);
    if mix == "solver" {
        // Record the unroll depth as a first-class scenario axis so every
        // emitted report carries `"axes":{"iters":n}` — rerunning with a
        // different `--iters` then sweeps that axis like any other.
        scenarios = scenarios.into_iter().map(|c| c.with_iters(iters)).collect();
    }
    let per_workload = scenarios.len();
    let sweep = Sweep::grid(workloads.clone(), scenarios.clone());
    eprintln!(
        "sweeping {} points ({} workloads x {} scenarios: {} MVLs x {} L2 sizes{})...",
        sweep.len(),
        workloads.len(),
        per_workload,
        mvls.len(),
        l2_kib.len(),
        if extra.is_empty() {
            String::new()
        } else {
            format!(
                " x {} L1 x {} DRAM-bw x {} bus",
                extra.l1_kib.len().max(1),
                extra.dram_bw.len().max(1),
                extra.vmu_bus.len().max(1)
            )
        },
    );
    let report = match threads {
        Some(n) => sweep.run_parallel_report_with(n),
        None => sweep.run_parallel_report(),
    };
    for r in &report.reports {
        assert!(
            r.validated,
            "{} on {}: {:?}",
            r.workload, r.config, r.validation_error
        );
    }

    for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
        println!(
            "{}",
            format_mvl_extrapolation(workload.name(), sweep.resolved_systems(), runs)
        );
        println!("{}", format_cache_sensitivity(workload.name(), runs));
    }
    eprintln!(
        "sweep: {:.1} ms wall, {:.1} ms busy on {} threads ({} compiles deduplicated to {})",
        report.wall_ns as f64 / 1e6,
        report.busy_ns() as f64 / 1e6,
        report.threads,
        report.cache_hits + report.cache_misses,
        report.cache_misses,
    );

    emit_json(json_path.as_deref(), || {
        sensitivity_json(&mvls, &l2_kib, &extra, sweep.resolved_systems(), &report)
    })
}
