//! Regenerates Table V of the paper: post-place-and-route area, power and
//! timing estimates for the NATIVE X8 and AVA designs (analytical stand-in
//! for the Cadence flow; see DESIGN.md for the substitution notes).

fn main() {
    print!("{}", ava_bench::format_table5());
}
