//! Regenerates Table V of the paper: post-place-and-route area, power and
//! timing estimates for the NATIVE X8 and AVA designs (analytical stand-in
//! for the Cadence flow; see DESIGN.md for the substitution notes).
//!
//! Usage: `table5 [--json <path>]`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_energy::pnr_estimate;
use ava_sim::json::{object, Json};

const USAGE: &str = "table5 [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::parse()?;
    args.reject_execution_flags("table5 computes Table V analytically, without a sweep")?;
    args.finish()?;

    print!("{}", ava_bench::format_table5());

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "table5")
            .field(
                "rows",
                ava_bench::table5_rows()
                    .iter()
                    .map(|(name, cfg)| {
                        let p = pnr_estimate(cfg);
                        object()
                            .field("config", *name)
                            .field("wns_ns", p.wns_ns)
                            .field("power_mw", p.power_mw)
                            .field("area_mm2", p.area_mm2)
                            .field("density", p.density)
                            .field("vrf_macro_area_mm2", p.vrf_macro_area_mm2)
                            .field("ava_area_mm2", p.ava_area_mm2)
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .finish()
    }))
}
