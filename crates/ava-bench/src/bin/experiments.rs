//! The generic spec-driven experiment runner: executes any experiment
//! manifest from `experiments/` (or anywhere else) through the same driver
//! the figure binaries use.
//!
//! Usage:
//!
//! ```text
//! experiments --spec <path> [--scale-down] [--app <name>] [--threads <n>]
//!             [--store <dir>] [--program-cache <dir>] [--resume]
//!             [--shard <k>/<n>] [--store-gc-mib <n>] [--json <path>]
//! ```
//!
//! The manifest picks the artefact, the workload/mix list, the scenario
//! axes and the output artefacts declaratively — see
//! [`ava_bench::spec`] for the schema. The shared execution flags mean what
//! they mean everywhere; where the manifest's `execution` block sets the
//! same option, the command line wins field by field, so one manifest can
//! be run locally single-threaded and on CI sharded without editing it.
//! `--json <path>` likewise overrides the manifest's `output.json`.
//!
//! `--scale-down` shrinks the experiment to smoke size (first workload,
//! first value of every axis, reduced system lists) so CI can validate
//! every committed manifest end to end in seconds. `--app <name>`
//! overrides the manifest's `app` filter.

use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::driver;
use ava_bench::spec::ExperimentSpec;

const USAGE: &str = "experiments --spec <path> [--scale-down] [--app <name>] [--threads <n>] \
                     [--store <dir>] [--program-cache <dir>] [--resume] [--shard <k>/<n>] \
                     [--store-gc-mib <n>] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    let spec_path = args
        .take_value("--spec")?
        .ok_or("--spec <path> is required")?;
    let scale_down = args.take_switch("--scale-down");
    let app = args.take_value("--app")?;
    args.finish()?;

    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read manifest {spec_path}: {e}"))?;
    let mut spec = ExperimentSpec::parse(&spec_path, &text)?;
    if app.is_some() {
        spec.app = app;
    }
    if scale_down {
        spec.scale_down();
    }
    args.apply_execution(&spec.execution)?;
    driver::run(&spec, &args)
}
