//! Ablation study over the microarchitectural parameters DESIGN.md calls
//! out: issue-queue depth, reorder-buffer size and the per-memory-operation
//! overhead of the vector memory unit. Run on the configuration that
//! stresses the swap mechanism hardest (AVA X8, Blackscholes) and on the
//! swap-free baseline (NATIVE X1, Axpy) so both regimes are visible.
//!
//! Each study is one sweep: a single workload against a declarative list of
//! system variants, executed in parallel by the sweep engine. With
//! `--repeat <n>` every study's grid runs `n` times and each repetition
//! feeds its measured per-point wall-clock back into the next one's
//! scheduler (`SweepRunner::recorded_costs`) — profile-guided ordering
//! replacing the static `elements()` heuristic on repeated grids. Results
//! are bit-identical at any repeat count; only the execution order moves.
//! With `--store <dir>` every repetition after the first is served entirely
//! from the result store.
//!
//! `--shard <k>/<n>` runs only shard `k` of `n` deterministic slices of
//! each study's grid into the shared store; the variant tables need the
//! whole grid, so a sharded run prints the sweep summary only and the final
//! unsharded `--resume` run over the same store prints the tables from
//! all-hits. `--store-gc-mib <n>` caps the store directory afterwards.
//!
//! Usage: `cargo run --release -p ava-bench --bin ablation [-- --repeat <n>]
//! [--threads <n>] [--store <dir>] [--resume] [--shard <k>/<n>]
//! [--store-gc-mib <n>] [--json <path>]`

use std::process::ExitCode;
use std::sync::Arc;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_sim::json::{object, Json};
use ava_sim::{format_sweep_summary, ScenarioConfig, Sweep};
use ava_workloads::{Axpy, Blackscholes, SharedWorkload};

const USAGE: &str = "ablation [--repeat <n>] [--threads <n>] [--store <dir>] [--resume] \
                     [--shard <k>/<n>] [--store-gc-mib <n>] [--json <path>]";

/// The variant axis of one ablation study: a display name per scenario.
/// Each variant is the base scenario with exactly one knob overridden — the
/// scenario layer records the override as axis metadata, so the `--json`
/// report carries it point by point.
fn variants(base: &ScenarioConfig) -> (Vec<String>, Vec<ScenarioConfig>) {
    let mut names = vec!["reference".to_string()];
    let mut systems = vec![base.clone()];
    for entries in [8usize, 16, 64] {
        names.push(format!("issue queues = {entries}"));
        systems.push(base.clone().with_issue_queues(entries));
    }
    for rob in [16usize, 32, 128] {
        names.push(format!("reorder buffer = {rob}"));
        systems.push(base.clone().with_rob_entries(rob));
    }
    for overhead in [0u64, 8, 16] {
        names.push(format!("mem-op overhead = {overhead}"));
        systems.push(base.clone().with_mem_op_overhead(overhead));
    }
    (names, systems)
}

fn study(
    label: &str,
    base: &ScenarioConfig,
    workload: SharedWorkload,
    repeat: usize,
    args: &BenchArgs,
) -> Json {
    println!("--- {label}: {} on {}", workload.name(), base.label());
    let (names, systems) = variants(base);
    // First pass is ordered by the static heuristic; every further pass
    // reorders its queue by the previous pass's measured per-point time.
    let grid = Sweep::grid(vec![workload.clone()], systems);
    let mut sweep = args.configure(grid.runner()).run();
    for _ in 1..repeat.max(1) {
        sweep = args.configure(grid.runner().recorded_costs(&sweep)).run();
    }
    for r in &sweep.reports {
        assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
    }
    // A sharded run holds only its slice of the grid: the variant table
    // (and its reference point) need every variant, so they are deferred to
    // the final unsharded merge pass over the shared store.
    if args.shard.is_some() {
        println!("{}", format_sweep_summary(&sweep));
        println!();
        return object()
            .field("study", label)
            .field("workload", workload.name())
            .field("base_config", base.label())
            .field("variants", Json::Arr(Vec::new()))
            .field("sweep", sweep.to_json())
            .finish();
    }
    let reference = sweep.reports[0].cycles;
    println!("{:<28} {:>10} {:>8}", "variant", "cycles", "vs ref");
    for (name, r) in names.iter().zip(&sweep.reports) {
        println!(
            "{:<28} {:>10} {:>7.2}x",
            name,
            r.cycles,
            reference as f64 / r.cycles as f64
        );
    }
    println!();

    object()
        .field("study", label)
        .field("workload", workload.name())
        .field("base_config", base.label())
        .field(
            "variants",
            names
                .iter()
                .zip(&sweep.reports)
                .map(|(name, r)| {
                    object()
                        .field("variant", name.as_str())
                        .field("cycles", r.cycles)
                        .field("vs_reference", reference as f64 / r.cycles as f64)
                        .finish()
                })
                .collect::<Json>(),
        )
        .field("sweep", sweep.to_json())
        .finish()
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    let repeat = match args.take_value("--repeat")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("invalid --repeat value: {v}")),
        },
        None => 1,
    };
    args.finish()?;

    let studies = vec![
        study(
            "swap-free baseline",
            &ScenarioConfig::native_x(1),
            Arc::new(Axpy::new(4096)),
            repeat,
            &args,
        ),
        study(
            "swap-heavy AVA",
            &ScenarioConfig::ava_x(8),
            Arc::new(Blackscholes::new(1024)),
            repeat,
            &args,
        ),
    ];
    args.run_store_gc();
    println!("The per-operation overhead of the vector memory unit dominates the");
    println!("short-vector baseline (three memory operations per 16-element strip),");
    println!("while the swap-heavy AVA X8 case is bound by the arithmetic pipeline and");
    println!("the swap data movement itself, so it is largely insensitive to queue,");
    println!("ROB and overhead settings — the sizes of Table II are not the limiter.");

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "ablation")
            .field("studies", Json::Arr(studies))
            .finish()
    }))
}
