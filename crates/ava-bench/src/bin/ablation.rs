//! Ablation study over the microarchitectural parameters DESIGN.md calls
//! out: issue-queue depth, reorder-buffer size and the per-memory-operation
//! overhead of the vector memory unit. Run on the configuration that
//! stresses the swap mechanism hardest (AVA X8, Blackscholes) and on the
//! swap-free baseline (NATIVE X1, Axpy) so both regimes are visible.
//!
//! A thin shim over the spec-driven experiment driver
//! (`experiments/ablation_microarch.json` is the committed manifest form).
//! Each study is one sweep: a single workload against a declarative list of
//! system variants, executed in parallel by the sweep engine. With
//! `--repeat <n>` every study's grid runs `n` times and each repetition
//! feeds its measured per-point wall-clock back into the next one's
//! scheduler (`SweepRunner::recorded_costs`) — profile-guided ordering
//! replacing the static `elements()` heuristic on repeated grids. Results
//! are bit-identical at any repeat count; only the execution order moves.
//! With `--store <dir>` every repetition after the first is served entirely
//! from the result store.
//!
//! `--shard <k>/<n>` runs only shard `k` of `n` deterministic slices of
//! each study's grid into the shared store; the variant tables need the
//! whole grid, so a sharded run prints the sweep summary only and the final
//! unsharded `--resume` run over the same store prints the tables from
//! all-hits. `--store-gc-mib <n>` caps the store directory afterwards.
//!
//! Usage: `cargo run --release -p ava-bench --bin ablation [-- --repeat <n>]
//! [--threads <n>] [--store <dir>] [--resume] [--shard <k>/<n>]
//! [--store-gc-mib <n>] [--json <path>]`

use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::driver;
use ava_bench::spec::ExperimentSpec;

const USAGE: &str = "ablation [--repeat <n>] [--threads <n>] [--store <dir>] [--resume] \
                     [--shard <k>/<n>] [--store-gc-mib <n>] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    let repeat = match args.take_value("--repeat")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("invalid --repeat value: {v}")),
        },
        None => 1,
    };
    args.finish()?;

    driver::run(&ExperimentSpec::ablation(repeat), &args)
}
