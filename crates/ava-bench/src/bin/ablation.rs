//! Ablation study over the microarchitectural parameters DESIGN.md calls
//! out: issue-queue depth, reorder-buffer size and the per-memory-operation
//! overhead of the vector memory unit. Run on the configuration that
//! stresses the swap mechanism hardest (AVA X8, Blackscholes) and on the
//! swap-free baseline (NATIVE X1, Axpy) so both regimes are visible.
//!
//! Each study is one sweep: a single workload against a declarative list of
//! system variants, executed in parallel by the sweep engine.
//!
//! Usage: `cargo run --release -p ava-bench --bin ablation [-- --json <path>]`

use std::process::ExitCode;
use std::sync::Arc;

use ava_bench::cli::{emit_json, json_only_args};
use ava_sim::json::{object, Json};
use ava_sim::{ScenarioConfig, Sweep};
use ava_workloads::{Axpy, Blackscholes, SharedWorkload};

/// The variant axis of one ablation study: a display name per scenario.
/// Each variant is the base scenario with exactly one knob overridden — the
/// scenario layer records the override as axis metadata, so the `--json`
/// report carries it point by point.
fn variants(base: &ScenarioConfig) -> (Vec<String>, Vec<ScenarioConfig>) {
    let mut names = vec!["reference".to_string()];
    let mut systems = vec![base.clone()];
    for entries in [8usize, 16, 64] {
        names.push(format!("issue queues = {entries}"));
        systems.push(base.clone().with_issue_queues(entries));
    }
    for rob in [16usize, 32, 128] {
        names.push(format!("reorder buffer = {rob}"));
        systems.push(base.clone().with_rob_entries(rob));
    }
    for overhead in [0u64, 8, 16] {
        names.push(format!("mem-op overhead = {overhead}"));
        systems.push(base.clone().with_mem_op_overhead(overhead));
    }
    (names, systems)
}

fn study(label: &str, base: &ScenarioConfig, workload: SharedWorkload) -> Json {
    println!("--- {label}: {} on {}", workload.name(), base.label());
    let (names, systems) = variants(base);
    let sweep = Sweep::grid(vec![workload.clone()], systems).run_parallel_report();
    for r in &sweep.reports {
        assert!(r.validated, "{}: {:?}", r.config, r.validation_error);
    }
    let reference = sweep.reports[0].cycles;
    println!("{:<28} {:>10} {:>8}", "variant", "cycles", "vs ref");
    for (name, r) in names.iter().zip(&sweep.reports) {
        println!(
            "{:<28} {:>10} {:>7.2}x",
            name,
            r.cycles,
            reference as f64 / r.cycles as f64
        );
    }
    println!();

    object()
        .field("study", label)
        .field("workload", workload.name())
        .field("base_config", base.label())
        .field(
            "variants",
            names
                .iter()
                .zip(&sweep.reports)
                .map(|(name, r)| {
                    object()
                        .field("variant", name.as_str())
                        .field("cycles", r.cycles)
                        .field("vs_reference", reference as f64 / r.cycles as f64)
                        .finish()
                })
                .collect::<Json>(),
        )
        .field("sweep", sweep.to_json())
        .finish()
}

fn main() -> ExitCode {
    let json_path = match json_only_args("ablation [--json <path>]") {
        Ok(p) => p,
        Err(code) => return code,
    };

    let studies = vec![
        study(
            "swap-free baseline",
            &ScenarioConfig::native_x(1),
            Arc::new(Axpy::new(4096)),
        ),
        study(
            "swap-heavy AVA",
            &ScenarioConfig::ava_x(8),
            Arc::new(Blackscholes::new(1024)),
        ),
    ];
    println!("The per-operation overhead of the vector memory unit dominates the");
    println!("short-vector baseline (three memory operations per 16-element strip),");
    println!("while the swap-heavy AVA X8 case is bound by the arithmetic pipeline and");
    println!("the swap data movement itself, so it is largely insensitive to queue,");
    println!("ROB and overhead settings — the sizes of Table II are not the limiter.");

    emit_json(json_path.as_deref(), || {
        object()
            .field("artefact", "ablation")
            .field("studies", Json::Arr(studies))
            .finish()
    })
}
