//! Ablation study over the microarchitectural parameters DESIGN.md calls
//! out: issue-queue depth, reorder-buffer size and the per-memory-operation
//! overhead of the vector memory unit. Run on the configuration that
//! stresses the swap mechanism hardest (AVA X8, Blackscholes) and on the
//! swap-free baseline (NATIVE X1, Axpy) so both regimes are visible.
//!
//! Usage: `cargo run --release -p ava-bench --bin ablation`

use ava_sim::{run_workload, SystemConfig};
use ava_workloads::{Axpy, Blackscholes, Workload};

fn run_with<F>(base: &SystemConfig, workload: &dyn Workload, tweak: F) -> u64
where
    F: FnOnce(&mut SystemConfig),
{
    let mut sys = base.clone();
    tweak(&mut sys);
    let report = run_workload(workload, &sys);
    assert!(report.validated, "{}: {:?}", report.config, report.validation_error);
    report.cycles
}

fn sweep(label: &str, base: &SystemConfig, workload: &dyn Workload) {
    println!("--- {label}: {} on {}", workload.name(), base.label());
    let reference = run_with(base, workload, |_| {});
    println!("{:<28} {:>10} {:>8}", "variant", "cycles", "vs ref");

    let report = |name: &str, cycles: u64| {
        println!("{:<28} {:>10} {:>7.2}x", name, cycles, reference as f64 / cycles as f64);
    };
    report("reference", reference);
    for entries in [8usize, 16, 64] {
        let cycles = run_with(base, workload, |s| {
            s.vpu.arith_queue_entries = entries;
            s.vpu.mem_queue_entries = entries;
        });
        report(&format!("issue queues = {entries}"), cycles);
    }
    for rob in [16usize, 32, 128] {
        let cycles = run_with(base, workload, |s| s.vpu.rob_entries = rob);
        report(&format!("reorder buffer = {rob}"), cycles);
    }
    for overhead in [0u64, 8, 16] {
        let cycles = run_with(base, workload, |s| s.vpu.mem_op_overhead = overhead);
        report(&format!("mem-op overhead = {overhead}"), cycles);
    }
    println!();
}

fn main() {
    sweep("swap-free baseline", &SystemConfig::native_x(1), &Axpy::new(4096));
    sweep("swap-heavy AVA", &SystemConfig::ava_x(8), &Blackscholes::new(1024));
    println!("The per-operation overhead of the vector memory unit dominates the");
    println!("short-vector baseline (three memory operations per 16-element strip),");
    println!("while the swap-heavy AVA X8 case is bound by the arithmetic pipeline and");
    println!("the swap data movement itself, so it is largely insensitive to queue,");
    println!("ROB and overhead settings — the sizes of Table II are not the limiter.");
}
