//! Regenerates Figure 4 of the paper: the area breakdown of every VPU
//! configuration (McPAT-style model at 22 nm) and the average
//! performance-per-mm² across the six applications.

fn main() {
    let workloads = ava_bench::paper_workloads();
    print!("{}", ava_bench::format_figure4(&workloads));
}
