//! Regenerates Figure 4 of the paper: the area breakdown of every VPU
//! configuration (McPAT-style model at 22 nm) and the average
//! performance-per-mm² across the six applications.
//!
//! A thin shim over the spec-driven experiment driver
//! (`experiments/fig4_area.json` is the committed manifest form).
//!
//! Usage: `fig4 [--threads <n>] [--store <dir>] [--resume] [--json <path>]`
//! — the performance side is one sweep, so it honours the shared execution
//! flags (a warm result store serves the whole grid without simulating);
//! with `--json`, the chart rows and the instrumented sweep report are
//! additionally written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::driver;
use ava_bench::spec::ExperimentSpec;

const USAGE: &str = "fig4 [--threads <n>] [--store <dir>] [--resume] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::parse()?;
    args.finish()?;

    driver::run(&ExperimentSpec::fig4(), &args)
}
