//! Regenerates Figure 4 of the paper: the area breakdown of every VPU
//! configuration (McPAT-style model at 22 nm) and the average
//! performance-per-mm² across the six applications.
//!
//! Usage: `fig4 [--json <path>]` — with `--json`, the chart rows and the
//! instrumented sweep report are additionally written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, json_only_args};
use ava_sim::json::{object, Json};

fn main() -> ExitCode {
    let json_path = match json_only_args("fig4 [--json <path>]") {
        Ok(p) => p,
        Err(code) => return code,
    };

    let workloads = ava_bench::paper_workloads();
    let data = ava_bench::figure4_data(&workloads);
    print!("{}", ava_bench::format_figure4_from(&data));

    emit_json(json_path.as_deref(), || {
        object()
            .field("artefact", "fig4")
            .field(
                "rows",
                data.rows
                    .iter()
                    .map(|r| {
                        object()
                            .field("config", r.label.as_str())
                            .field("vrf_mm2", r.vrf)
                            .field("fpu_mm2", r.fpus)
                            .field("ava_mm2", r.ava_structures)
                            .field("vpu_total_mm2", r.vpu_total)
                            .field("core_mm2", r.core)
                            .field("l1_mm2", r.l1)
                            .field("l2_mm2", r.l2)
                            .field("perf_per_mm2", r.perf_per_mm2)
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .field("sweep", data.sweep.to_json())
            .finish()
    })
}
