//! Regenerates Figure 4 of the paper: the area breakdown of every VPU
//! configuration (McPAT-style model at 22 nm) and the average
//! performance-per-mm² across the six applications.
//!
//! Usage: `fig4 [--threads <n>] [--store <dir>] [--resume] [--json <path>]`
//! — the performance side is one sweep, so it honours the shared execution
//! flags (a warm result store serves the whole grid without simulating);
//! with `--json`, the chart rows and the instrumented sweep report are
//! additionally written to `<path>`.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_sim::json::{object, Json};

const USAGE: &str = "fig4 [--threads <n>] [--store <dir>] [--resume] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = BenchArgs::parse()?;
    args.finish()?;

    let workloads = ava_bench::paper_workloads();
    let data = ava_bench::figure4_data_with(&workloads, args.threads, args.store.as_ref());
    print!("{}", ava_bench::format_figure4_from(&data));

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "fig4")
            .field(
                "rows",
                data.rows
                    .iter()
                    .map(|r| {
                        object()
                            .field("config", r.label.as_str())
                            .field("vrf_mm2", r.vrf)
                            .field("fpu_mm2", r.fpus)
                            .field("ava_mm2", r.ava_structures)
                            .field("vpu_total_mm2", r.vpu_total)
                            .field("core_mm2", r.core)
                            .field("l1_mm2", r.l1)
                            .field("l2_mm2", r.l2)
                            .field("perf_per_mm2", r.perf_per_mm2)
                            .finish()
                    })
                    .collect::<Json>(),
            )
            .field("sweep", data.sweep.to_json())
            .finish()
    }))
}
