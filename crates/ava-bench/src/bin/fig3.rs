//! Regenerates Figure 3 of the paper: for each of the six RiVEC-style
//! applications and each evaluated configuration (NATIVE X1..X8,
//! RG-LMUL1..8, AVA X1..X8), the vector-memory-instruction breakdown, the
//! instruction mix, the execution time/speedup and the energy breakdown.
//!
//! The whole figure is one declarative (workload × configuration) grid
//! executed by the parallel sweep engine.
//!
//! Usage:
//!
//! ```text
//! fig3 [--app <name>] [--chart mem|mix|perf|energy|all]
//!      [--mix pipelined|solver] [--iters <n>] [--threads <n>] [--json <path>]
//! ```
//!
//! `--mix pipelined` appends the three-stage dataflow pipeline
//! (axpy → somier → axpy with chained golden references) to the workload
//! set, so the figure additionally covers a mix whose phases exchange data
//! through the memory hierarchy. `--mix solver` appends the iterative
//! somier-relaxation mix instead: the relaxation body unrolled `--iters`
//! times (default 4; the flag is only accepted together with
//! `--mix solver`) with ping-pong carry links, validated against the
//! n-step scalar reference and reported with one `iter`-labelled breakdown
//! per iteration.
//!
//! With `--json`, the instrumented sweep report (per-point counters,
//! wall-clock timing, compile-cache statistics and the derived per-point
//! energy breakdown from the McPAT-style model) is additionally written to
//! `<path>` for CI and downstream plotting.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, take_json_flag};
use ava_bench::{
    evaluated_systems, format_energy, format_instruction_mix, format_memory_breakdown,
    format_performance, paper_workloads, pipelined_mix, solver_mix, sweep_energy_json,
};
use ava_sim::json::object;
use ava_sim::{ScenarioConfig, Sweep};
use ava_workloads::SharedWorkload;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match take_json_flag(&mut args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut app_filter: Option<String> = None;
    let mut chart = "all".to_string();
    let mut mix = "independent".to_string();
    let mut iters: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" if i + 1 < args.len() => {
                app_filter = Some(args[i + 1].clone());
                i += 2;
            }
            "--chart" if i + 1 < args.len() => {
                chart = args[i + 1].clone();
                i += 2;
            }
            "--mix" if i + 1 < args.len() => {
                match args[i + 1].as_str() {
                    m @ ("independent" | "pipelined" | "solver") => mix = m.to_string(),
                    other => {
                        eprintln!("--mix must be independent, pipelined or solver, got {other}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                iters = match args[i + 1].parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--iters needs a positive integer, got {}", args[i + 1]);
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = match args[i + 1].parse() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("invalid --threads value: {}", args[i + 1]);
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                eprintln!(
                    "usage: fig3 [--app <name>] [--chart mem|mix|perf|energy|all] \
                     [--mix pipelined|solver] [--iters <n>] [--threads <n>] [--json <path>]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if iters.is_some() && mix != "solver" {
        // Silently ignoring the flag would let a sweep the user believes
        // covers n iterations run with no iteration axis at all.
        eprintln!("--iters only applies to --mix solver");
        return ExitCode::from(2);
    }
    let mut pool = paper_workloads();
    if mix == "pipelined" {
        pool.push(pipelined_mix(4096));
    }
    if mix == "solver" {
        pool.push(solver_mix(4096, iters.unwrap_or(4)));
    }
    // Solver sweeps record the unroll depth as a first-class scenario axis
    // so every emitted report carries `"axes":{"iters":n}`.
    let systems: Vec<ScenarioConfig> = match mix.as_str() {
        "solver" => evaluated_systems()
            .into_iter()
            .map(|c| c.with_iters(iters.unwrap_or(4)))
            .collect(),
        _ => evaluated_systems(),
    };
    let workloads: Vec<SharedWorkload> = pool
        .into_iter()
        .filter(|w| app_filter.as_ref().is_none_or(|f| w.name() == f))
        .collect();
    if workloads.is_empty() {
        eprintln!("no workload matches --app filter");
        return ExitCode::from(2);
    }

    let per_workload = systems.len();
    let sweep = Sweep::grid(workloads.clone(), systems);
    eprintln!(
        "sweeping {} points ({} workloads x {} configurations)...",
        sweep.len(),
        workloads.len(),
        per_workload
    );
    let report = match threads {
        Some(n) => sweep.run_parallel_report_with(n),
        None => sweep.run_parallel_report(),
    };

    for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
        let name = workload.name();
        if chart == "mem" || chart == "all" {
            println!("{}", format_memory_breakdown(name, runs));
        }
        if chart == "mix" || chart == "all" {
            println!("{}", format_instruction_mix(name, runs));
        }
        if chart == "perf" || chart == "all" {
            println!("{}", format_performance(name, runs));
        }
        if chart == "energy" || chart == "all" {
            println!("{}", format_energy(name, runs));
        }
    }

    emit_json(json_path.as_deref(), || {
        object()
            .field("artefact", "fig3")
            .field("chart", chart.as_str())
            .field(
                "energy",
                sweep_energy_json(&report, sweep.resolved_systems()),
            )
            .field("sweep", report.to_json())
            .finish()
    })
}
