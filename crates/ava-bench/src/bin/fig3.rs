//! Regenerates Figure 3 of the paper: for each of the six RiVEC-style
//! applications and each evaluated configuration (NATIVE X1..X8,
//! RG-LMUL1..8, AVA X1..X8), the vector-memory-instruction breakdown, the
//! instruction mix, the execution time/speedup and the energy breakdown.
//!
//! This binary is a thin shim over the spec-driven experiment driver: the
//! flags below translate into an in-memory [`ExperimentSpec`]
//! (`experiments/fig3_extrapolation.json` is the committed manifest form of
//! the same experiment) and [`ava_bench::driver`] runs it — one code path,
//! byte-identical output either way.
//!
//! Usage:
//!
//! ```text
//! fig3 [--app <name>] [--chart mem|mix|perf|energy|all]
//!      [--mix pipelined|solver] [--iters <n>] [--threads <n>]
//!      [--store <dir>] [--resume] [--json <path>]
//! ```
//!
//! `--mix pipelined` appends the three-stage dataflow pipeline
//! (axpy → somier → axpy with chained golden references) to the workload
//! set, so the figure additionally covers a mix whose phases exchange data
//! through the memory hierarchy. `--mix solver` appends the iterative
//! somier-relaxation mix instead: the relaxation body unrolled `--iters`
//! times (default 4; the flag is only accepted together with
//! `--mix solver`) with ping-pong carry links, validated against the
//! n-step scalar reference and reported with one `iter`-labelled breakdown
//! per iteration.
//!
//! `--store <dir>` attaches the content-addressed result store: points
//! already computed by any previous run (of this or another binary) are
//! served from disk, fresh points are checkpointed as workers finish, and
//! `--resume` asserts the directory already holds such a checkpoint.
//!
//! `--shard <k>/<n>` runs only shard `k` of `n` deterministic slices of the
//! grid into the shared store; a sharded run emits its summary and JSON but
//! skips the per-workload charts (they need the whole grid — run the final
//! unsharded `--resume` merge pass to print them). `--store-gc-mib <n>`
//! caps the store directory after the sweep.
//!
//! With `--json`, the instrumented sweep report (per-point counters,
//! wall-clock timing, compile-cache and result-store statistics and the
//! derived per-point energy breakdown from the McPAT-style model) is
//! additionally written to `<path>` for CI and downstream plotting.

use std::process::ExitCode;

use ava_bench::cli::{usage_error, BenchArgs};
use ava_bench::driver;
use ava_bench::spec::ExperimentSpec;

const USAGE: &str = "fig3 [--app <name>] [--chart mem|mix|perf|energy|all] \
                     [--mix pipelined|solver] [--iters <n>] [--threads <n>] \
                     [--store <dir>] [--resume] [--shard <k>/<n>] \
                     [--store-gc-mib <n>] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    let app_filter = args.take_value("--app")?;
    let chart = args.take_value("--chart")?.unwrap_or_else(|| "all".into());
    let mix = args
        .take_value("--mix")?
        .unwrap_or_else(|| "independent".into());
    let iters = match args.take_value("--iters")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--iters needs a positive integer, got {v}")),
        },
        None => None,
    };
    args.finish()?;

    let spec = ExperimentSpec::fig3(app_filter, &chart, &mix, iters)?;
    driver::run(&spec, &args)
}
