//! Regenerates Figure 3 of the paper: for each of the six RiVEC-style
//! applications and each evaluated configuration (NATIVE X1..X8,
//! RG-LMUL1..8, AVA X1..X8), the vector-memory-instruction breakdown, the
//! instruction mix, the execution time/speedup and the energy breakdown.
//!
//! Usage:
//!
//! ```text
//! fig3 [--app <name>] [--chart mem|mix|perf|energy|all]
//! ```

use ava_bench::{
    format_energy, format_instruction_mix, format_memory_breakdown, format_performance,
    paper_workloads, run_figure3_for,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app_filter: Option<String> = None;
    let mut chart = "all".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" if i + 1 < args.len() => {
                app_filter = Some(args[i + 1].clone());
                i += 2;
            }
            "--chart" if i + 1 < args.len() => {
                chart = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                eprintln!("usage: fig3 [--app <name>] [--chart mem|mix|perf|energy|all]");
                std::process::exit(2);
            }
        }
    }

    for workload in paper_workloads() {
        if let Some(f) = &app_filter {
            if workload.name() != f {
                continue;
            }
        }
        let name = workload.name();
        eprintln!("simulating {name} on all configurations...");
        let reports = run_figure3_for(workload.as_ref());
        if chart == "mem" || chart == "all" {
            println!("{}", format_memory_breakdown(name, &reports));
        }
        if chart == "mix" || chart == "all" {
            println!("{}", format_instruction_mix(name, &reports));
        }
        if chart == "perf" || chart == "all" {
            println!("{}", format_performance(name, &reports));
        }
        if chart == "energy" || chart == "all" {
            println!("{}", format_energy(name, &reports));
        }
    }
}
