//! Regenerates Figure 3 of the paper: for each of the six RiVEC-style
//! applications and each evaluated configuration (NATIVE X1..X8,
//! RG-LMUL1..8, AVA X1..X8), the vector-memory-instruction breakdown, the
//! instruction mix, the execution time/speedup and the energy breakdown.
//!
//! The whole figure is one declarative (workload × configuration) grid
//! executed by the parallel sweep engine.
//!
//! Usage:
//!
//! ```text
//! fig3 [--app <name>] [--chart mem|mix|perf|energy|all]
//!      [--mix pipelined|solver] [--iters <n>] [--threads <n>]
//!      [--store <dir>] [--resume] [--json <path>]
//! ```
//!
//! `--mix pipelined` appends the three-stage dataflow pipeline
//! (axpy → somier → axpy with chained golden references) to the workload
//! set, so the figure additionally covers a mix whose phases exchange data
//! through the memory hierarchy. `--mix solver` appends the iterative
//! somier-relaxation mix instead: the relaxation body unrolled `--iters`
//! times (default 4; the flag is only accepted together with
//! `--mix solver`) with ping-pong carry links, validated against the
//! n-step scalar reference and reported with one `iter`-labelled breakdown
//! per iteration.
//!
//! `--store <dir>` attaches the content-addressed result store: points
//! already computed by any previous run (of this or another binary) are
//! served from disk, fresh points are checkpointed as workers finish, and
//! `--resume` asserts the directory already holds such a checkpoint.
//!
//! `--shard <k>/<n>` runs only shard `k` of `n` deterministic slices of the
//! grid into the shared store; a sharded run emits its summary and JSON but
//! skips the per-workload charts (they need the whole grid — run the final
//! unsharded `--resume` merge pass to print them). `--store-gc-mib <n>`
//! caps the store directory after the sweep.
//!
//! With `--json`, the instrumented sweep report (per-point counters,
//! wall-clock timing, compile-cache and result-store statistics and the
//! derived per-point energy breakdown from the McPAT-style model) is
//! additionally written to `<path>` for CI and downstream plotting.

use std::process::ExitCode;

use ava_bench::cli::{emit_json, usage_error, BenchArgs};
use ava_bench::{
    evaluated_systems, format_energy, format_instruction_mix, format_memory_breakdown,
    format_performance, paper_workloads, pipelined_mix, solver_mix, sweep_energy_json,
};
use ava_sim::json::object;
use ava_sim::{format_sweep_summary, ScenarioConfig, Sweep};
use ava_workloads::SharedWorkload;

const USAGE: &str = "fig3 [--app <name>] [--chart mem|mix|perf|energy|all] \
                     [--mix pipelined|solver] [--iters <n>] [--threads <n>] \
                     [--store <dir>] [--resume] [--shard <k>/<n>] \
                     [--store-gc-mib <n>] [--json <path>]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => usage_error(USAGE, &e),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = BenchArgs::parse()?;
    let app_filter = args.take_value("--app")?;
    let chart = args.take_value("--chart")?.unwrap_or_else(|| "all".into());
    let mix = args
        .take_value("--mix")?
        .unwrap_or_else(|| "independent".into());
    if !["independent", "pipelined", "solver"].contains(&mix.as_str()) {
        return Err(format!(
            "--mix must be independent, pipelined or solver, got {mix}"
        ));
    }
    let iters = match args.take_value("--iters")? {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--iters needs a positive integer, got {v}")),
        },
        None => None,
    };
    args.finish()?;

    if iters.is_some() && mix != "solver" {
        // Silently ignoring the flag would let a sweep the user believes
        // covers n iterations run with no iteration axis at all.
        return Err("--iters only applies to --mix solver".to_string());
    }
    let mut pool = paper_workloads();
    if mix == "pipelined" {
        pool.push(pipelined_mix(4096));
    }
    if mix == "solver" {
        pool.push(solver_mix(4096, iters.unwrap_or(4)));
    }
    // Solver sweeps record the unroll depth as a first-class scenario axis
    // so every emitted report carries `"axes":{"iters":n}`.
    let systems: Vec<ScenarioConfig> = match mix.as_str() {
        "solver" => evaluated_systems()
            .into_iter()
            .map(|c| c.with_iters(iters.unwrap_or(4)))
            .collect(),
        _ => evaluated_systems(),
    };
    let workloads: Vec<SharedWorkload> = pool
        .into_iter()
        .filter(|w| app_filter.as_ref().is_none_or(|f| w.name() == f))
        .collect();
    if workloads.is_empty() {
        return Err("no workload matches --app filter".to_string());
    }

    let per_workload = systems.len();
    let sweep = Sweep::grid(workloads.clone(), systems);
    eprintln!(
        "sweeping {} points ({} workloads x {} configurations)...",
        sweep.len(),
        workloads.len(),
        per_workload
    );
    let report = args.configure(sweep.runner()).run();
    eprintln!("{}", format_sweep_summary(&report));
    args.run_store_gc();

    // A sharded run holds only its slice of the grid, so the per-workload
    // charts (which need every configuration of a workload) are deferred to
    // the final unsharded merge pass over the shared store.
    if args.shard.is_none() {
        for (workload, runs) in workloads.iter().zip(report.reports.chunks(per_workload)) {
            let name = workload.name();
            if chart == "mem" || chart == "all" {
                println!("{}", format_memory_breakdown(name, runs));
            }
            if chart == "mix" || chart == "all" {
                println!("{}", format_instruction_mix(name, runs));
            }
            if chart == "perf" || chart == "all" {
                println!("{}", format_performance(name, runs));
            }
            if chart == "energy" || chart == "all" {
                println!("{}", format_energy(name, runs));
            }
        }
    }

    Ok(emit_json(args.json.as_deref(), || {
        object()
            .field("artefact", "fig3")
            .field("chart", chart.as_str())
            .field(
                "energy",
                sweep_energy_json(&report, sweep.resolved_systems()),
            )
            .field("sweep", report.to_json())
            .finish()
    }))
}
