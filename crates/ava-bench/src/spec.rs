//! Declarative experiment manifests.
//!
//! A manifest is a JSON document describing one experiment end to end —
//! which artefact to regenerate (`fig3`, `fig4`, `sensitivity`,
//! `ablation`), which workloads and mixes to sweep, which scenario axes to
//! cross, how to execute (threads, result store, sharding, program cache)
//! and what to emit (JSON path, chart kind). The generic `experiments`
//! binary drives the whole bench stack from such a file, and the legacy
//! `fig3`/`fig4`/`sensitivity`/`ablation` binaries are thin shims that
//! translate their flags into an in-memory [`ExperimentSpec`] and call the
//! same driver — one code path, so a manifest run and a flag run of the
//! same experiment are byte-identical.
//!
//! The schema is parsed with the dependency-free [`ava_sim::json`] parser;
//! every schema error is a diagnostic naming the offending token and its
//! byte offset in the document — never a panic.
//!
//! ```
//! use ava_bench::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::parse(
//!     "example",
//!     r#"{
//!         "artefact": "sensitivity",
//!         "workloads": ["axpy"],
//!         "axes": {"mvl": [128, 256], "l2_kib": [512]},
//!         "output": {"kind": "tables"}
//!     }"#,
//! )
//! .unwrap();
//! assert_eq!(spec.axes.mvl, vec![128, 256]);
//! assert!(ExperimentSpec::parse("bad", r#"{"artefact": "fig9"}"#)
//!     .unwrap_err()
//!     .contains("byte"));
//! ```

use ava_isa::{MAX_MVL_ELEMS, MIN_MVL_ELEMS};
use ava_sim::json::{object, parse, Json, ObjectBuilder};
use ava_workloads::{kernel_defaults, SharedWorkload, KERNEL_NAMES};

use crate::{pipelined_mix, solver_mix, HierarchyAxes, SENSITIVITY_L2_KIB, SENSITIVITY_MVLS};

/// Which paper artefact a manifest regenerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtefactKind {
    /// Figure 3: per-application breakdowns over the fourteen evaluated
    /// systems.
    Fig3,
    /// Figure 4: area breakdown and performance per mm².
    Fig4,
    /// The sensitivity study: MVL × L2 (× optional hierarchy/VVR axes).
    Sensitivity,
    /// The microarchitectural ablation (issue queues, ROB, mem-op
    /// overhead).
    Ablation,
}

impl ArtefactKind {
    /// The manifest spelling of the artefact.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ArtefactKind::Fig3 => "fig3",
            ArtefactKind::Fig4 => "fig4",
            ArtefactKind::Sensitivity => "sensitivity",
            ArtefactKind::Ablation => "ablation",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "fig3" => Some(ArtefactKind::Fig3),
            "fig4" => Some(ArtefactKind::Fig4),
            "sensitivity" => Some(ArtefactKind::Sensitivity),
            "ablation" => Some(ArtefactKind::Ablation),
            _ => None,
        }
    }

    /// The chart kinds this artefact's text output can be restricted to
    /// (the manifest `output.kind` field / the binaries' `--chart` flag).
    /// Empty for artefacts with exactly one rendering.
    #[must_use]
    pub fn chart_kinds(self) -> &'static [&'static str] {
        match self {
            ArtefactKind::Fig3 => &["mem", "mix", "perf", "energy", "all"],
            ArtefactKind::Sensitivity => &["tables", "energy", "all"],
            ArtefactKind::Fig4 | ArtefactKind::Ablation => &[],
        }
    }

    /// The default chart kind when a manifest does not pick one.
    #[must_use]
    pub fn default_chart(self) -> &'static str {
        match self {
            ArtefactKind::Fig3 => "all",
            ArtefactKind::Sensitivity => "tables",
            ArtefactKind::Fig4 | ArtefactKind::Ablation => "",
        }
    }
}

/// One workload (or composite mix) entry of a manifest: a registry name
/// plus optional size parameters. In a manifest this is either a bare
/// string (`"axpy"`) or an object (`{"name": "solver", "n": 8192,
/// "iters": 4}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Registry name: a kernel from [`ava_workloads::KERNEL_NAMES`] or one
    /// of the composite mixes `pipelined` / `solver`.
    pub name: String,
    /// Primary problem size override.
    pub n: Option<usize>,
    /// Secondary parameter override (LavaMD neighbours, Particle Filter
    /// grid).
    pub m: Option<usize>,
    /// Unroll depth of the `solver` mix (rejected on every other name).
    pub iters: Option<usize>,
}

impl WorkloadSpec {
    /// A bare-name entry with all parameters at their registry defaults.
    #[must_use]
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            n: None,
            m: None,
            iters: None,
        }
    }

    /// A name-plus-size entry.
    #[must_use]
    pub fn sized(name: &str, n: usize) -> Self {
        Self {
            n: Some(n),
            ..Self::named(name)
        }
    }

    fn to_json(&self) -> Json {
        if self.n.is_none() && self.m.is_none() && self.iters.is_none() {
            return Json::from(self.name.as_str());
        }
        let mut o = object().field("name", self.name.as_str());
        if let Some(n) = self.n {
            o = o.field("n", n);
        }
        if let Some(m) = self.m {
            o = o.field("m", m);
        }
        if let Some(iters) = self.iters {
            o = o.field("iters", iters);
        }
        o.finish()
    }
}

/// The mix registry: the name → constructor mapping manifests draw
/// workloads from. Kernel names resolve through
/// [`ava_workloads::build_kernel`]; the two composite mixes — `pipelined`
/// (the three-stage dataflow pipeline) and `solver` (the iterated somier
/// relaxation, parameterised by `iters`) — are wired here because they are
/// experiment-harness compositions, not kernels.
pub struct MixRegistry;

impl MixRegistry {
    /// Every name [`MixRegistry::build`] accepts.
    #[must_use]
    pub fn names() -> Vec<&'static str> {
        let mut names = KERNEL_NAMES.to_vec();
        names.push("pipelined");
        names.push("solver");
        names
    }

    /// Builds one workload entry.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for an unknown name or a parameter that does
    /// not apply to it (`m` on a mix, `iters` on anything but `solver`).
    pub fn build(spec: &WorkloadSpec) -> Result<SharedWorkload, String> {
        match spec.name.as_str() {
            "pipelined" => {
                if spec.m.is_some() {
                    return Err("workload \"pipelined\" takes no second parameter m".to_string());
                }
                if spec.iters.is_some() {
                    return Err("\"iters\" only applies to the \"solver\" mix".to_string());
                }
                Ok(pipelined_mix(spec.n.unwrap_or(4096)))
            }
            "solver" => {
                if spec.m.is_some() {
                    return Err("workload \"solver\" takes no second parameter m".to_string());
                }
                Ok(solver_mix(spec.n.unwrap_or(4096), spec.iters.unwrap_or(4)))
            }
            name => {
                if spec.iters.is_some() {
                    return Err("\"iters\" only applies to the \"solver\" mix".to_string());
                }
                if kernel_defaults(name).is_none() {
                    return Err(format!(
                        "unknown workload {name:?} (known names: {})",
                        Self::names().join(", ")
                    ));
                }
                ava_workloads::build_kernel(name, spec.n, spec.m)
            }
        }
    }
}

/// The scenario-grid axes of a sensitivity manifest, resolved onto the
/// [`ScenarioConfig`] axis builders by the driver. `mvl` and `l2_kib`
/// default to the study's standard axes; the extra axes default to empty
/// (not driven).
///
/// [`ScenarioConfig`]: ava_sim::ScenarioConfig
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxesSpec {
    /// Maximum vector lengths (`axis_mvl`).
    pub mvl: Vec<usize>,
    /// L2 capacities in KiB (`axis_l2_kib`).
    pub l2_kib: Vec<usize>,
    /// The optional extra axes (L1, DRAM bandwidth, VMU bus, VVR pool).
    pub extra: HierarchyAxes,
}

impl Default for AxesSpec {
    fn default() -> Self {
        Self {
            mvl: SENSITIVITY_MVLS.to_vec(),
            l2_kib: SENSITIVITY_L2_KIB.to_vec(),
            extra: HierarchyAxes::default(),
        }
    }
}

/// The execution options of a manifest, mirroring the shared CLI flags
/// (`--threads`, `--store`, `--program-cache`, `--resume`, `--shard`,
/// `--store-gc-mib`). CLI flags override manifest values field by field
/// ([`crate::cli::BenchArgs::apply_execution`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionSpec {
    /// Worker-thread cap for the sweep.
    pub threads: Option<usize>,
    /// Result-store directory.
    pub store: Option<String>,
    /// Persistent program-cache directory.
    pub program_cache: Option<String>,
    /// Assert the store already holds a checkpoint.
    pub resume: bool,
    /// Run only shard `(k, n)` of the grid.
    pub shard: Option<(usize, usize)>,
    /// Post-sweep store size cap in MiB.
    pub store_gc_mib: Option<u64>,
}

/// The output block of a manifest: where to write the JSON artefact and
/// which chart kind to render on stdout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputSpec {
    /// JSON artefact path (`--json` on the CLI overrides it).
    pub json: Option<String>,
    /// Chart kind (`None` = the artefact's default).
    pub kind: Option<String>,
}

/// One fully validated experiment manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Optional display name.
    pub name: Option<String>,
    /// Which artefact to regenerate.
    pub artefact: ArtefactKind,
    /// The workload/mix entries to sweep, in order. Filled with the
    /// artefact's default pool when the manifest omits `workloads`.
    pub workloads: Vec<WorkloadSpec>,
    /// Restrict the sweep to the workload whose built name matches.
    pub app: Option<String>,
    /// Scenario-grid axes (sensitivity only).
    pub axes: AxesSpec,
    /// Grid repetitions with profile-guided reordering (ablation only).
    pub repeat: usize,
    /// Execution options.
    pub execution: ExecutionSpec,
    /// Output artefacts.
    pub output: OutputSpec,
    /// Set by [`ExperimentSpec::scale_down`]: the driver additionally
    /// shrinks the dimensions the manifest cannot express (evaluated-system
    /// list, ablation study sizes) so CI smokes stay in the seconds range.
    pub reduced: bool,
}

/// The paper pool of Figure 3 / Figure 4 as explicit manifest entries (the
/// sizes of [`crate::paper_workloads`]).
#[must_use]
pub fn paper_workload_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::sized("axpy", 4096),
        WorkloadSpec::sized("blackscholes", 1024),
        WorkloadSpec {
            m: Some(2),
            ..WorkloadSpec::sized("lavamd2", 48)
        },
        WorkloadSpec {
            m: Some(64),
            ..WorkloadSpec::sized("particlefilter", 2048)
        },
        WorkloadSpec::sized("somier", 4096),
        WorkloadSpec::sized("swaptions", 1024),
    ]
}

/// The sensitivity-study pool as explicit manifest entries (the sizes of
/// [`crate::sensitivity_workloads`]).
#[must_use]
pub fn sensitivity_workload_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::sized("axpy", 32768),
        WorkloadSpec::sized("blackscholes", 8192),
        WorkloadSpec::sized("somier", 16384),
        WorkloadSpec::sized("composite", 16384),
    ]
}

impl ExperimentSpec {
    /// A spec with every field at the artefact's defaults — what a manifest
    /// containing only `{"artefact": "..."}` parses to.
    #[must_use]
    pub fn new(artefact: ArtefactKind) -> Self {
        Self {
            name: None,
            artefact,
            workloads: match artefact {
                ArtefactKind::Fig3 | ArtefactKind::Fig4 => paper_workload_specs(),
                ArtefactKind::Sensitivity => sensitivity_workload_specs(),
                // The ablation's (workload, base-config) pairs are the
                // studies themselves, not a pool.
                ArtefactKind::Ablation => Vec::new(),
            },
            app: None,
            axes: AxesSpec::default(),
            repeat: 1,
            execution: ExecutionSpec::default(),
            output: OutputSpec::default(),
            reduced: false,
        }
    }

    /// Parses and validates a manifest. `label` names the source in
    /// diagnostics (conventionally the file path).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for malformed JSON, an unknown field, an
    /// unknown artefact/workload/chart name, or an out-of-range value —
    /// each naming the offending token and its byte offset in `text`.
    pub fn parse(label: &str, text: &str) -> Result<Self, String> {
        let ctx = Ctx { label, text };
        let doc = parse(text).map_err(|e| format!("manifest {label}: {e}"))?;
        let Json::Obj(fields) = &doc else {
            return Err(format!("manifest {label}: the document must be an object"));
        };

        let artefact_str = doc
            .get("artefact")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("manifest {label}: missing required field \"artefact\""))?;
        let artefact = ArtefactKind::from_str(artefact_str).ok_or_else(|| {
            ctx.fail(
                artefact_str,
                format!("unknown artefact {artefact_str:?} (expected fig3, fig4, sensitivity or ablation)"),
            )
        })?;
        let mut spec = Self::new(artefact);

        for (key, value) in fields {
            match key.as_str() {
                "artefact" => {}
                "name" => {
                    spec.name = Some(
                        value
                            .as_str()
                            .ok_or_else(|| ctx.fail(key, "\"name\" must be a string"))?
                            .to_string(),
                    );
                }
                "workloads" => {
                    if artefact == ArtefactKind::Ablation {
                        return Err(ctx.fail(
                            key,
                            "\"workloads\" does not apply to the ablation artefact \
                             (its studies fix their own workloads)",
                        ));
                    }
                    spec.workloads = parse_workloads(&ctx, value)?;
                }
                "app" => {
                    if matches!(artefact, ArtefactKind::Fig4 | ArtefactKind::Ablation) {
                        return Err(ctx.fail(
                            key,
                            format!(
                                "\"app\" does not apply to the {} artefact",
                                artefact.as_str()
                            ),
                        ));
                    }
                    spec.app = Some(
                        value
                            .as_str()
                            .ok_or_else(|| ctx.fail(key, "\"app\" must be a string"))?
                            .to_string(),
                    );
                }
                "axes" => {
                    if artefact != ArtefactKind::Sensitivity {
                        return Err(ctx.fail(
                            key,
                            format!(
                                "\"axes\" does not apply to the {} artefact \
                                 (its scenario grid is fixed)",
                                artefact.as_str()
                            ),
                        ));
                    }
                    spec.axes = parse_axes(&ctx, value)?;
                }
                "repeat" => {
                    if artefact != ArtefactKind::Ablation {
                        return Err(ctx.fail(
                            key,
                            format!(
                                "\"repeat\" does not apply to the {} artefact",
                                artefact.as_str()
                            ),
                        ));
                    }
                    spec.repeat = positive_usize(&ctx, value, "repeat")?;
                }
                "execution" => {
                    spec.execution = parse_execution(&ctx, value)?;
                }
                "output" => {
                    spec.output = parse_output(&ctx, value, artefact)?;
                }
                other => {
                    return Err(ctx.fail(
                        other,
                        format!(
                            "unknown field {other:?} (expected name, artefact, workloads, app, \
                             axes, repeat, execution or output)"
                        ),
                    ));
                }
            }
        }

        spec.validate(&ctx)?;
        Ok(spec)
    }

    /// Cross-field validation shared by [`ExperimentSpec::parse`] and the
    /// flag-translation constructors.
    fn validate(&self, ctx: &Ctx<'_>) -> Result<(), String> {
        if self.artefact != ArtefactKind::Ablation && self.workloads.is_empty() {
            return Err(format!(
                "manifest {}: \"workloads\" needs at least one entry",
                ctx.label
            ));
        }
        let mut solver_entries = 0usize;
        for w in &self.workloads {
            // Build each entry once up front so an unknown name or a stray
            // parameter fails at parse time with an offset, not mid-sweep.
            MixRegistry::build(w).map_err(|e| ctx.fail(&w.name, e))?;
            if w.name == "solver" {
                solver_entries += 1;
            }
        }
        if solver_entries > 1 {
            // The unroll depth is recorded as one scenario axis for the
            // whole grid, so two solver entries with different depths would
            // mislabel every report.
            return Err(ctx.fail(
                "solver",
                "at most one \"solver\" entry per manifest (its \"iters\" is a grid-wide axis)",
            ));
        }
        if self.artefact == ArtefactKind::Sensitivity {
            if self.axes.mvl.is_empty() || self.axes.l2_kib.is_empty() {
                return Err(format!(
                    "manifest {}: axes \"mvl\" and \"l2_kib\" need at least one value each",
                    ctx.label
                ));
            }
            if let Some(&bad) =
                self.axes.mvl.iter().find(|&&m| {
                    m % MIN_MVL_ELEMS != 0 || !(MIN_MVL_ELEMS..=MAX_MVL_ELEMS).contains(&m)
                })
            {
                return Err(ctx.fail(
                    &bad.to_string(),
                    format!(
                        "\"mvl\" values must be multiples of {MIN_MVL_ELEMS} in \
                         {MIN_MVL_ELEMS}..={MAX_MVL_ELEMS}, got {bad}"
                    ),
                ));
            }
            if let Some(&bad) = self.axes.extra.vvrs.iter().find(|&&v| v < 32) {
                return Err(ctx.fail(
                    &bad.to_string(),
                    format!("\"vvrs\" values must be at least the 32 architectural registers, got {bad}"),
                ));
            }
        }
        if let Some((_, of)) = self.execution.shard {
            let _ = of; // validated in parse_execution / by the constructor
        }
        if (self.execution.resume
            || self.execution.shard.is_some()
            || self.execution.store_gc_mib.is_some())
            && self.execution.store.is_none()
        {
            return Err(format!(
                "manifest {}: execution \"resume\"/\"shard\"/\"store_gc_mib\" require \"store\"",
                ctx.label
            ));
        }
        Ok(())
    }

    /// Emits the manifest back as JSON in canonical field order. Parsing
    /// the emitted document yields an equal spec (the round-trip contract
    /// of `tests/manifests.rs`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = object();
        if let Some(name) = &self.name {
            o = o.field("name", name.as_str());
        }
        o = o.field("artefact", self.artefact.as_str());
        if self.artefact != ArtefactKind::Ablation {
            o = o.field(
                "workloads",
                self.workloads
                    .iter()
                    .map(WorkloadSpec::to_json)
                    .collect::<Json>(),
            );
        }
        if let Some(app) = &self.app {
            o = o.field("app", app.as_str());
        }
        if self.artefact == ArtefactKind::Sensitivity {
            let mut axes = object()
                .field(
                    "mvl",
                    self.axes
                        .mvl
                        .iter()
                        .map(|&v| Json::from(v))
                        .collect::<Json>(),
                )
                .field(
                    "l2_kib",
                    self.axes
                        .l2_kib
                        .iter()
                        .map(|&v| Json::from(v))
                        .collect::<Json>(),
                );
            axes = arr_field(axes, "l1_kib", &self.axes.extra.l1_kib);
            axes = arr_field(axes, "dram_bw", &self.axes.extra.dram_bw);
            axes = arr_field(axes, "vmu_bus", &self.axes.extra.vmu_bus);
            axes = arr_field(axes, "vvrs", &self.axes.extra.vvrs);
            o = o.field("axes", axes.finish());
        }
        if self.artefact == ArtefactKind::Ablation && self.repeat != 1 {
            o = o.field("repeat", self.repeat);
        }
        if self.execution != ExecutionSpec::default() {
            let mut e = object();
            if let Some(threads) = self.execution.threads {
                e = e.field("threads", threads);
            }
            if let Some(store) = &self.execution.store {
                e = e.field("store", store.as_str());
            }
            if let Some(cache) = &self.execution.program_cache {
                e = e.field("program_cache", cache.as_str());
            }
            if self.execution.resume {
                e = e.field("resume", true);
            }
            if let Some((k, n)) = self.execution.shard {
                e = e.field("shard", format!("{k}/{n}"));
            }
            if let Some(mib) = self.execution.store_gc_mib {
                e = e.field("store_gc_mib", mib);
            }
            o = o.field("execution", e.finish());
        }
        if self.output != OutputSpec::default() {
            let mut out = object();
            if let Some(json) = &self.output.json {
                out = out.field("json", json.as_str());
            }
            if let Some(kind) = &self.output.kind {
                out = out.field("kind", kind.as_str());
            }
            o = o.field("output", out.finish());
        }
        o.finish()
    }

    /// Shrinks the experiment to CI-smoke size: the workload list drops to
    /// its first entry, every driven axis to its first value, and the
    /// ablation repeat count to 1. The driver additionally truncates the
    /// dimensions a manifest cannot express (the fig3 evaluated-system
    /// list, the ablation study problem sizes) when this flag is set.
    pub fn scale_down(&mut self) {
        self.workloads.truncate(1);
        self.axes.mvl.truncate(1);
        self.axes.l2_kib.truncate(1);
        self.axes.extra.l1_kib.truncate(1);
        self.axes.extra.dram_bw.truncate(1);
        self.axes.extra.vmu_bus.truncate(1);
        self.axes.extra.vvrs.truncate(1);
        self.repeat = 1;
        self.reduced = true;
    }

    /// The chart kind in effect (explicit `output.kind` or the artefact
    /// default).
    #[must_use]
    pub fn chart(&self) -> &str {
        self.output
            .kind
            .as_deref()
            .unwrap_or_else(|| self.artefact.default_chart())
    }

    // ------------------------------------------------------------------
    // Flag translation: the legacy binaries build their spec here
    // ------------------------------------------------------------------

    /// The spec a `fig3 [--app] [--chart] [--mix] [--iters]` invocation
    /// translates to.
    ///
    /// # Errors
    ///
    /// Returns the legacy diagnostics for an unknown chart or mix name, or
    /// an `--iters` without `--mix solver`.
    pub fn fig3(
        app: Option<String>,
        chart: &str,
        mix: &str,
        iters: Option<usize>,
    ) -> Result<Self, String> {
        let mut spec = Self::new(ArtefactKind::Fig3);
        if !ArtefactKind::Fig3.chart_kinds().contains(&chart) {
            return Err(format!(
                "--chart must be mem, mix, perf, energy or all, got {chart}"
            ));
        }
        spec.output.kind = Some(chart.to_string());
        spec.append_mix(mix, iters, 4096)?;
        spec.app = app;
        Ok(spec)
    }

    /// The spec a flag-less `fig4` invocation translates to.
    #[must_use]
    pub fn fig4() -> Self {
        Self::new(ArtefactKind::Fig4)
    }

    /// The spec a `sensitivity` invocation translates to: the axis lists
    /// (defaults already applied by the caller), the mix selection and the
    /// chart kind.
    ///
    /// # Errors
    ///
    /// Returns the legacy diagnostics for axis values out of range, an
    /// unknown mix/chart name, or an `--iters` without `--mix solver`.
    pub fn sensitivity(
        axes: AxesSpec,
        mix: &str,
        iters: Option<usize>,
        app: Option<String>,
        chart: &str,
    ) -> Result<Self, String> {
        let mut spec = Self::new(ArtefactKind::Sensitivity);
        if !ArtefactKind::Sensitivity.chart_kinds().contains(&chart) {
            return Err(format!(
                "--chart must be tables, energy or all, got {chart}"
            ));
        }
        spec.output.kind = Some(chart.to_string());
        spec.axes = axes;
        spec.append_mix(mix, iters, 8192)?;
        spec.app = app;
        spec.validate_flags()?;
        Ok(spec)
    }

    /// The spec an `ablation [--repeat <n>]` invocation translates to.
    #[must_use]
    pub fn ablation(repeat: usize) -> Self {
        let mut spec = Self::new(ArtefactKind::Ablation);
        spec.repeat = repeat.max(1);
        spec
    }

    /// Appends the legacy `--mix` selection to the default pool.
    fn append_mix(&mut self, mix: &str, iters: Option<usize>, size: usize) -> Result<(), String> {
        if !["independent", "pipelined", "solver"].contains(&mix) {
            return Err(format!(
                "--mix must be independent, pipelined or solver, got {mix}"
            ));
        }
        if iters.is_some() && mix != "solver" {
            // Silently ignoring the flag would let a sweep the user
            // believes covers n iterations run with no iteration axis at
            // all.
            return Err("--iters only applies to --mix solver".to_string());
        }
        match mix {
            "pipelined" => self.workloads.push(WorkloadSpec::sized("pipelined", size)),
            "solver" => self.workloads.push(WorkloadSpec {
                iters: Some(iters.unwrap_or(4)),
                ..WorkloadSpec::sized("solver", size)
            }),
            _ => {}
        }
        Ok(())
    }

    /// Runs the shared validation against a flag-built spec (no source
    /// text, so diagnostics carry no byte offsets).
    fn validate_flags(&self) -> Result<(), String> {
        self.validate(&Ctx {
            label: "<flags>",
            text: "",
        })
        .map_err(|e| {
            e.strip_prefix("manifest <flags>: ")
                .unwrap_or(&e)
                .to_string()
        })
    }
}

/// Diagnostic context: the manifest label plus its source text, so schema
/// errors can locate the offending token by byte offset.
struct Ctx<'a> {
    label: &'a str,
    text: &'a str,
}

impl Ctx<'_> {
    /// Formats `msg` with the byte offset of `token` in the source (the
    /// quoted form is preferred so values inside longer words do not
    /// mislead).
    fn fail(&self, token: &str, msg: impl std::fmt::Display) -> String {
        let quoted = format!("\"{token}\"");
        match self.text.find(&quoted).or_else(|| self.text.find(token)) {
            Some(pos) => format!("manifest {}: {msg} at byte {pos}", self.label),
            None => format!("manifest {}: {msg}", self.label),
        }
    }
}

fn arr_field<T: Copy + Into<Json>>(o: ObjectBuilder, key: &str, values: &[T]) -> ObjectBuilder {
    if values.is_empty() {
        o
    } else {
        o.field(key, values.iter().map(|&v| v.into()).collect::<Json>())
    }
}

fn positive_usize(ctx: &Ctx<'_>, value: &Json, what: &str) -> Result<usize, String> {
    match value.as_u64() {
        Some(n) if n >= 1 => Ok(n as usize),
        _ => Err(ctx.fail(what, format!("\"{what}\" needs a positive integer"))),
    }
}

fn usize_list(ctx: &Ctx<'_>, value: &Json, what: &str) -> Result<Vec<usize>, String> {
    let items = value.as_arr().ok_or_else(|| {
        ctx.fail(
            what,
            format!("axis \"{what}\" must be an array of integers"),
        )
    })?;
    items
        .iter()
        .map(|v| match v.as_u64() {
            Some(n) if n >= 1 => Ok(n as usize),
            _ => Err(ctx.fail(
                what,
                format!("axis \"{what}\" values must be positive integers"),
            )),
        })
        .collect()
}

fn parse_workloads(ctx: &Ctx<'_>, value: &Json) -> Result<Vec<WorkloadSpec>, String> {
    let items = value.as_arr().ok_or_else(|| {
        ctx.fail(
            "workloads",
            "\"workloads\" must be an array of names or {name, n, m, iters} objects",
        )
    })?;
    items
        .iter()
        .map(|item| match item {
            Json::Str(name) => Ok(WorkloadSpec::named(name)),
            Json::Obj(fields) => {
                let mut spec = WorkloadSpec::named("");
                for (key, v) in fields {
                    match key.as_str() {
                        "name" => {
                            spec.name = v
                                .as_str()
                                .ok_or_else(|| ctx.fail(key, "workload \"name\" must be a string"))?
                                .to_string();
                        }
                        "n" => spec.n = Some(positive_usize(ctx, v, "n")?),
                        "m" => spec.m = Some(positive_usize(ctx, v, "m")?),
                        "iters" => spec.iters = Some(positive_usize(ctx, v, "iters")?),
                        other => {
                            return Err(ctx.fail(
                                other,
                                format!(
                                "unknown workload field {other:?} (expected name, n, m or iters)"
                            ),
                            ))
                        }
                    }
                }
                if spec.name.is_empty() {
                    return Err(format!(
                        "manifest {}: every workload object needs a \"name\"",
                        ctx.label
                    ));
                }
                Ok(spec)
            }
            _ => Err(ctx.fail(
                "workloads",
                "\"workloads\" entries must be names or {name, n, m, iters} objects",
            )),
        })
        .collect()
}

fn parse_axes(ctx: &Ctx<'_>, value: &Json) -> Result<AxesSpec, String> {
    let Json::Obj(fields) = value else {
        return Err(ctx.fail("axes", "\"axes\" must be an object of axis-name arrays"));
    };
    let mut axes = AxesSpec::default();
    for (key, v) in fields {
        match key.as_str() {
            "mvl" => axes.mvl = usize_list(ctx, v, "mvl")?,
            "l2_kib" => axes.l2_kib = usize_list(ctx, v, "l2_kib")?,
            "l1_kib" => axes.extra.l1_kib = usize_list(ctx, v, "l1_kib")?,
            "dram_bw" => {
                axes.extra.dram_bw = usize_list(ctx, v, "dram_bw")?
                    .into_iter()
                    .map(|x| x as u64)
                    .collect();
            }
            "vmu_bus" => {
                axes.extra.vmu_bus = usize_list(ctx, v, "vmu_bus")?
                    .into_iter()
                    .map(|x| x as u64)
                    .collect();
            }
            "vvrs" => axes.extra.vvrs = usize_list(ctx, v, "vvrs")?,
            other => {
                return Err(ctx.fail(
                    other,
                    format!(
                        "unknown axis {other:?} (expected mvl, l2_kib, l1_kib, dram_bw, \
                         vmu_bus or vvrs)"
                    ),
                ))
            }
        }
    }
    Ok(axes)
}

fn parse_execution(ctx: &Ctx<'_>, value: &Json) -> Result<ExecutionSpec, String> {
    let Json::Obj(fields) = value else {
        return Err(ctx.fail("execution", "\"execution\" must be an object"));
    };
    let mut exec = ExecutionSpec::default();
    for (key, v) in fields {
        match key.as_str() {
            "threads" => exec.threads = Some(positive_usize(ctx, v, "threads")?),
            "store" => {
                exec.store = Some(
                    v.as_str()
                        .ok_or_else(|| ctx.fail(key, "execution \"store\" must be a path string"))?
                        .to_string(),
                );
            }
            "program_cache" => {
                exec.program_cache = Some(
                    v.as_str()
                        .ok_or_else(|| {
                            ctx.fail(key, "execution \"program_cache\" must be a path string")
                        })?
                        .to_string(),
                );
            }
            "resume" => {
                exec.resume = v
                    .as_bool()
                    .ok_or_else(|| ctx.fail(key, "execution \"resume\" must be a boolean"))?;
            }
            "shard" => {
                let s = v.as_str().ok_or_else(|| {
                    ctx.fail(key, "execution \"shard\" must be a \"<k>/<n>\" string")
                })?;
                exec.shard = Some(crate::cli::parse_shard(s).map_err(|e| ctx.fail(s, e))?);
            }
            "store_gc_mib" => {
                exec.store_gc_mib = Some(v.as_u64().ok_or_else(|| {
                    ctx.fail(key, "execution \"store_gc_mib\" must be an integer")
                })?);
            }
            other => {
                return Err(ctx.fail(
                    other,
                    format!(
                        "unknown execution field {other:?} (expected threads, store, \
                         program_cache, resume, shard or store_gc_mib)"
                    ),
                ))
            }
        }
    }
    Ok(exec)
}

fn parse_output(ctx: &Ctx<'_>, value: &Json, artefact: ArtefactKind) -> Result<OutputSpec, String> {
    let Json::Obj(fields) = value else {
        return Err(ctx.fail("output", "\"output\" must be an object"));
    };
    let mut output = OutputSpec::default();
    for (key, v) in fields {
        match key.as_str() {
            "json" => {
                output.json = Some(
                    v.as_str()
                        .ok_or_else(|| ctx.fail(key, "output \"json\" must be a path string"))?
                        .to_string(),
                );
            }
            "kind" => {
                let kind = v
                    .as_str()
                    .ok_or_else(|| ctx.fail(key, "output \"kind\" must be a string"))?;
                let allowed = artefact.chart_kinds();
                if allowed.is_empty() {
                    return Err(ctx.fail(
                        key,
                        format!(
                            "output \"kind\" does not apply to the {} artefact \
                             (it has a single rendering)",
                            artefact.as_str()
                        ),
                    ));
                }
                if !allowed.contains(&kind) {
                    return Err(ctx.fail(
                        kind,
                        format!(
                            "unknown chart kind {kind:?} for {} (expected {})",
                            artefact.as_str(),
                            allowed.join(", ")
                        ),
                    ));
                }
                output.kind = Some(kind.to_string());
            }
            other => {
                return Err(ctx.fail(
                    other,
                    format!("unknown output field {other:?} (expected json or kind)"),
                ))
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_manifests_parse_to_the_artefact_defaults() {
        let spec = ExperimentSpec::parse("t", r#"{"artefact": "fig3"}"#).unwrap();
        assert_eq!(spec.artefact, ArtefactKind::Fig3);
        assert_eq!(spec.workloads, paper_workload_specs());
        assert_eq!(spec.chart(), "all");
        let spec = ExperimentSpec::parse("t", r#"{"artefact": "sensitivity"}"#).unwrap();
        assert_eq!(spec.workloads, sensitivity_workload_specs());
        assert_eq!(spec.axes.mvl, SENSITIVITY_MVLS.to_vec());
        assert_eq!(spec.chart(), "tables");
        let spec = ExperimentSpec::parse("t", r#"{"artefact": "ablation"}"#).unwrap();
        assert!(spec.workloads.is_empty());
        assert_eq!(spec.repeat, 1);
    }

    #[test]
    fn unknown_fields_and_names_carry_byte_offsets() {
        let text = r#"{"artefact": "fig3", "frobnicate": 1}"#;
        let err = ExperimentSpec::parse("t", text).unwrap_err();
        let offset = text.find("\"frobnicate\"").unwrap();
        assert!(
            err.contains("frobnicate") && err.contains(&format!("byte {offset}")),
            "{err}"
        );

        let text = r#"{"artefact": "fig3", "workloads": ["axpyz"]}"#;
        let err = ExperimentSpec::parse("t", text).unwrap_err();
        let offset = text.find("\"axpyz\"").unwrap();
        assert!(
            err.contains("axpyz") && err.contains(&format!("byte {offset}")),
            "{err}"
        );

        let err = ExperimentSpec::parse("t", r#"{"artefact": "fig9"}"#).unwrap_err();
        assert!(err.contains("fig9") && err.contains("byte"), "{err}");
    }

    #[test]
    fn malformed_json_reports_the_parser_offset() {
        let err = ExperimentSpec::parse("t", "{\"artefact\": ").unwrap_err();
        assert!(err.contains("manifest t:") && err.contains("byte"), "{err}");
    }

    #[test]
    fn artefact_scoped_fields_are_rejected_elsewhere() {
        for (text, needle) in [
            (r#"{"artefact": "fig3", "axes": {"mvl": [128]}}"#, "axes"),
            (r#"{"artefact": "fig3", "repeat": 2}"#, "repeat"),
            (
                r#"{"artefact": "ablation", "workloads": ["axpy"]}"#,
                "workloads",
            ),
            (r#"{"artefact": "fig4", "app": "axpy"}"#, "app"),
            (r#"{"artefact": "fig4", "output": {"kind": "all"}}"#, "kind"),
            (
                r#"{"artefact": "fig3", "output": {"kind": "tables"}}"#,
                "tables",
            ),
        ] {
            let err = ExperimentSpec::parse("t", text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn axis_values_are_validated_like_the_legacy_flags() {
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "sensitivity", "axes": {"mvl": [100]}}"#,
        )
        .unwrap_err();
        assert!(err.contains("multiples of") && err.contains("100"), "{err}");
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "sensitivity", "axes": {"vvrs": [16]}}"#,
        )
        .unwrap_err();
        assert!(err.contains("32 architectural registers"), "{err}");
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "sensitivity", "axes": {"l2_kib": []}}"#,
        )
        .unwrap_err();
        assert!(err.contains("at least one value"), "{err}");
    }

    #[test]
    fn solver_iters_is_scoped_to_the_solver_mix() {
        let spec = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "workloads": [{"name": "solver", "n": 512, "iters": 3}]}"#,
        )
        .unwrap();
        assert_eq!(spec.workloads[0].iters, Some(3));
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "workloads": [{"name": "axpy", "iters": 3}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("solver"), "{err}");
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "workloads": ["solver", {"name": "solver", "iters": 2}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("at most one"), "{err}");
    }

    #[test]
    fn execution_block_parses_and_cross_checks() {
        let spec = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "execution": {"threads": 2, "store": "d", "shard": "1/4",
                "store_gc_mib": 64, "resume": true, "program_cache": "p"}}"#,
        )
        .unwrap();
        assert_eq!(spec.execution.threads, Some(2));
        assert_eq!(spec.execution.shard, Some((1, 4)));
        assert!(spec.execution.resume);
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "execution": {"resume": true}}"#,
        )
        .unwrap_err();
        assert!(err.contains("require \"store\""), "{err}");
        let err = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "fig3", "execution": {"store": "d", "shard": "4/4"}}"#,
        )
        .unwrap_err();
        assert!(err.contains("shard"), "{err}");
    }

    #[test]
    fn specs_round_trip_through_their_json_form() {
        let texts = [
            r#"{"artefact": "fig3", "workloads": ["axpy", {"name": "solver", "n": 512, "iters": 2}],
                "app": "iterated", "output": {"json": "out.json", "kind": "perf"}}"#,
            r#"{"name": "vvr", "artefact": "sensitivity",
                "axes": {"mvl": [128], "l2_kib": [512], "vvrs": [32, 64]},
                "execution": {"threads": 1}}"#,
            r#"{"artefact": "ablation", "repeat": 3}"#,
            r#"{"artefact": "fig4"}"#,
        ];
        for text in texts {
            let spec = ExperimentSpec::parse("t", text).unwrap();
            let emitted = spec.to_json().to_string();
            let reparsed = ExperimentSpec::parse("t", &emitted).unwrap();
            assert_eq!(spec, reparsed, "round-trip changed the spec for {text}");
        }
    }

    #[test]
    fn scale_down_truncates_every_dimension() {
        let mut spec = ExperimentSpec::parse(
            "t",
            r#"{"artefact": "sensitivity",
                "axes": {"mvl": [128, 256, 512], "l2_kib": [256, 1024], "l1_kib": [16, 64]}}"#,
        )
        .unwrap();
        spec.scale_down();
        assert!(spec.reduced);
        assert_eq!(spec.workloads.len(), 1);
        assert_eq!(spec.axes.mvl, vec![128]);
        assert_eq!(spec.axes.l2_kib, vec![256]);
        assert_eq!(spec.axes.extra.l1_kib, vec![16]);
    }

    #[test]
    fn mix_registry_builds_kernels_and_mixes() {
        assert_eq!(
            MixRegistry::build(&WorkloadSpec::named("axpy"))
                .unwrap()
                .name(),
            "axpy"
        );
        assert_eq!(
            MixRegistry::build(&WorkloadSpec::sized("pipelined", 512))
                .unwrap()
                .name(),
            "pipelined"
        );
        let solver = MixRegistry::build(&WorkloadSpec {
            iters: Some(2),
            ..WorkloadSpec::sized("solver", 512)
        })
        .unwrap();
        assert_eq!(solver.name(), "iterated");
        assert!(MixRegistry::build(&WorkloadSpec::named("nope")).is_err());
        assert!(MixRegistry::names().contains(&"solver"));
    }

    #[test]
    fn flag_translation_matches_hand_written_manifests() {
        let from_flags =
            ExperimentSpec::fig3(Some("axpy".into()), "perf", "independent", None).unwrap();
        let from_text = ExperimentSpec::parse(
            "t",
            &format!(
                r#"{{"artefact": "fig3", "workloads": {},
                     "app": "axpy", "output": {{"kind": "perf"}}}}"#,
                Json::Arr(
                    paper_workload_specs()
                        .iter()
                        .map(WorkloadSpec::to_json)
                        .collect()
                )
            ),
        )
        .unwrap();
        assert_eq!(from_flags, from_text);

        assert!(ExperimentSpec::fig3(None, "all", "solver", None).is_ok());
        assert!(ExperimentSpec::fig3(None, "all", "independent", Some(3)).is_err());
        assert!(ExperimentSpec::fig3(None, "bogus", "independent", None).is_err());
    }
}
