//! Shared command-line plumbing for the figure/table binaries.
//!
//! Every binary parses its arguments through one [`BenchArgs`] pass: the
//! shared flags — `--json <path>`, `--threads <n>`, `--store <dir>`,
//! `--program-cache <dir>`, `--resume`, `--shard <k>/<n>` and
//! `--store-gc-mib <n>` — are recognised in one place,
//! and each binary pulls its own extensions (`--app`, `--chart`, `--mode`,
//! ...) out of the remainder with [`BenchArgs::take_value`] before calling
//! [`BenchArgs::finish`] to reject anything left over. New shared flags
//! therefore land once instead of nine times.
//!
//! The shared flags mean the same thing everywhere:
//!
//! * `--json <path>` — write the machine-readable form of the artefact to
//!   `<path>` (the human-readable tables keep going to stdout);
//! * `--threads <n>` — cap the sweep at `n` worker threads;
//! * `--store <dir>` — attach the content-addressed result store at `<dir>`
//!   (created if missing): points already stored are served from disk, fresh
//!   results are checkpointed as they finish;
//! * `--program-cache <dir>` — attach the persistent program cache at
//!   `<dir>` (created if missing): compilations already checkpointed there
//!   are served from disk (a warm cache compiles nothing), fresh ones are
//!   checkpointed as they happen;
//! * `--resume` — assert that `--store` points at an *existing* checkpoint
//!   directory (e.g. from a killed run) instead of silently starting cold;
//! * `--shard <k>/<n>` — run only shard `k` of `n` deterministic slices of
//!   the sweep grid: `n` processes pointed at one shared `--store` cover
//!   the grid exactly once, and a final unsharded `--resume` run merges
//!   the checkpoints into the complete report;
//! * `--store-gc-mib <n>` — after the sweep, cap the `--store` directory at
//!   `n` MiB by evicting the least-recently-written entries.
//!
//! Binaries that do not run sweeps reject the execution flags with a clear
//! message rather than ignoring them.

use std::path::Path;
use std::process::ExitCode;

use ava_sim::{DiskProgramCache, Json, ResultStore, SweepRunner};

/// The parsed shared flags plus each binary's unparsed extension arguments.
#[derive(Debug)]
pub struct BenchArgs {
    /// `--json <path>`: where to write the machine-readable artefact.
    pub json: Option<String>,
    /// `--threads <n>`: worker-thread cap for the sweep.
    pub threads: Option<usize>,
    /// `--store <dir>`: the opened result store.
    pub store: Option<ResultStore>,
    /// `--program-cache <dir>`: the opened persistent program cache.
    pub program_cache: Option<DiskProgramCache>,
    /// `--resume`: the user expects the store to hold a prior checkpoint.
    pub resume: bool,
    /// `--shard <k>/<n>`: run only shard `k` of `n` slices of the grid.
    pub shard: Option<(usize, usize)>,
    /// `--store-gc-mib <n>`: post-sweep size cap for the store, in MiB.
    pub store_gc_mib: Option<u64>,
    rest: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments: shared flags are consumed here,
    /// everything else is kept for [`BenchArgs::take_value`] /
    /// [`BenchArgs::take_switch`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when a shared flag is malformed, when
    /// `--resume` is given without `--store` (or the store directory does
    /// not exist yet — there is nothing to resume), or when the store
    /// directory cannot be created.
    pub fn parse() -> Result<Self, String> {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (the process arguments minus the
    /// program name). Public so in-process tests and the manifest driver can
    /// exercise exactly the binaries' argument path.
    ///
    /// # Errors
    ///
    /// As for [`BenchArgs::parse`].
    pub fn from_args(args: Vec<String>) -> Result<Self, String> {
        let mut json = None;
        let mut threads = None;
        let mut store_dir: Option<String> = None;
        let mut program_cache_dir: Option<String> = None;
        let mut resume = false;
        let mut shard = None;
        let mut store_gc_mib = None;
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--shard" => {
                    let v = it.next().ok_or("--shard requires a <k>/<n> value")?;
                    shard = Some(parse_shard(&v)?);
                }
                "--store-gc-mib" => {
                    let v = it.next().ok_or("--store-gc-mib requires a value")?;
                    store_gc_mib = Some(
                        v.parse()
                            .map_err(|_| format!("invalid --store-gc-mib value: {v}"))?,
                    );
                }
                "--json" => {
                    json = Some(it.next().ok_or("--json requires a path argument")?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads requires a value")?;
                    threads = Some(
                        v.parse()
                            .map_err(|_| format!("invalid --threads value: {v}"))?,
                    );
                }
                "--store" => {
                    store_dir = Some(it.next().ok_or("--store requires a directory argument")?);
                }
                "--program-cache" => {
                    program_cache_dir = Some(
                        it.next()
                            .ok_or("--program-cache requires a directory argument")?,
                    );
                }
                "--resume" => resume = true,
                _ => rest.push(arg),
            }
        }
        if resume && store_dir.is_none() {
            return Err("--resume requires --store <dir>".to_string());
        }
        if shard.is_some() && store_dir.is_none() {
            return Err(
                "--shard requires --store <dir>: without a shared store the shard's \
                 results are lost and cannot be merged"
                    .to_string(),
            );
        }
        if store_gc_mib.is_some() && store_dir.is_none() {
            return Err("--store-gc-mib requires --store <dir>".to_string());
        }
        let store = match store_dir {
            Some(dir) => {
                if resume && !Path::new(&dir).is_dir() {
                    return Err(format!(
                        "--resume: store directory {dir} does not exist — nothing to resume"
                    ));
                }
                Some(ResultStore::open(dir)?)
            }
            None => None,
        };
        let program_cache = match program_cache_dir {
            Some(dir) => Some(DiskProgramCache::open(dir)?),
            None => None,
        };
        Ok(Self {
            json,
            threads,
            store,
            program_cache,
            resume,
            shard,
            store_gc_mib,
            rest,
        })
    }

    /// Removes the binary-specific `flag <value>` pair from the remaining
    /// arguments and returns the value, if the flag is present.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the flag is present without a value.
    pub fn take_value(&mut self, flag: &str) -> Result<Option<String>, String> {
        let Some(pos) = self.rest.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        if pos + 1 >= self.rest.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = self.rest.remove(pos + 1);
        self.rest.remove(pos);
        Ok(Some(value))
    }

    /// Removes the binary-specific boolean `flag` from the remaining
    /// arguments, returning whether it was present.
    pub fn take_switch(&mut self, flag: &str) -> bool {
        match self.rest.iter().position(|a| a == flag) {
            Some(pos) => {
                self.rest.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Rejects any argument no extension consumed. Call after every
    /// [`BenchArgs::take_value`] / [`BenchArgs::take_switch`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the first unrecognised argument.
    pub fn finish(&self) -> Result<(), String> {
        match self.rest.first() {
            Some(other) => Err(format!("unrecognised argument: {other}")),
            None => Ok(()),
        }
    }

    /// For binaries that never run a sweep: rejects `--threads`, `--store`,
    /// `--program-cache`, `--resume`, `--shard` and `--store-gc-mib` with
    /// `reason` rather than silently ignoring them.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the offending flag and `reason`.
    pub fn reject_execution_flags(&self, reason: &str) -> Result<(), String> {
        if self.threads.is_some() {
            return Err(format!("--threads does not apply: {reason}"));
        }
        if self.store.is_some() || self.resume {
            return Err(format!("--store/--resume do not apply: {reason}"));
        }
        if self.program_cache.is_some() {
            return Err(format!("--program-cache does not apply: {reason}"));
        }
        if self.shard.is_some() {
            return Err(format!("--shard does not apply: {reason}"));
        }
        if self.store_gc_mib.is_some() {
            return Err(format!("--store-gc-mib does not apply: {reason}"));
        }
        Ok(())
    }

    /// For binaries with their own output scheme: rejects `--json` with
    /// `reason`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic containing `reason`.
    pub fn reject_json(&self, reason: &str) -> Result<(), String> {
        match self.json {
            Some(_) => Err(format!("--json does not apply: {reason}")),
            None => Ok(()),
        }
    }

    /// Applies the shared execution flags (`--threads`, `--store`,
    /// `--program-cache`, `--shard`) to a sweep runner.
    #[must_use]
    pub fn configure<'a>(&'a self, mut runner: SweepRunner<'a>) -> SweepRunner<'a> {
        if let Some(n) = self.threads {
            runner = runner.threads(n);
        }
        if let Some(store) = &self.store {
            runner = runner.store(store);
        }
        if let Some(cache) = &self.program_cache {
            runner = runner.program_cache(cache);
        }
        if let Some((index, of)) = self.shard {
            runner = runner.shard(index, of);
        }
        runner
    }

    /// Fills in execution options from a manifest's `execution` block.
    /// CLI flags win field by field: a field already set on `self` keeps
    /// its value, an unset one takes the manifest's. The merged result is
    /// re-checked against the same cross-flag constraints as
    /// [`BenchArgs::parse`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when a manifest store/program-cache directory
    /// cannot be opened, when `resume` points at a store directory that
    /// does not exist yet, or when the merged options violate a cross-flag
    /// constraint (`resume`/`shard`/`store_gc_mib` without a store).
    pub fn apply_execution(&mut self, exec: &crate::spec::ExecutionSpec) -> Result<(), String> {
        if self.threads.is_none() {
            self.threads = exec.threads;
        }
        self.resume = self.resume || exec.resume;
        if self.store.is_none() {
            if let Some(dir) = &exec.store {
                if self.resume && !Path::new(dir).is_dir() {
                    return Err(format!(
                        "resume: store directory {dir} does not exist — nothing to resume"
                    ));
                }
                self.store = Some(ResultStore::open(dir.clone())?);
            }
        }
        if self.program_cache.is_none() {
            if let Some(dir) = &exec.program_cache {
                self.program_cache = Some(DiskProgramCache::open(dir.clone())?);
            }
        }
        if self.shard.is_none() {
            self.shard = exec.shard;
        }
        if self.store_gc_mib.is_none() {
            self.store_gc_mib = exec.store_gc_mib;
        }
        if self.store.is_none() {
            if self.resume {
                return Err("--resume requires --store <dir>".to_string());
            }
            if self.shard.is_some() {
                return Err(
                    "--shard requires --store <dir>: without a shared store the shard's \
                     results are lost and cannot be merged"
                        .to_string(),
                );
            }
            if self.store_gc_mib.is_some() {
                return Err("--store-gc-mib requires --store <dir>".to_string());
            }
        }
        Ok(())
    }

    /// Runs the post-sweep store garbage collection when `--store-gc-mib`
    /// was given, printing a one-line eviction summary to stderr. A no-op
    /// without the flag; call after the sweep (and its JSON emission) so
    /// fresh checkpoints are the last-written entries.
    pub fn run_store_gc(&self) {
        let (Some(mib), Some(store)) = (self.store_gc_mib, &self.store) else {
            return;
        };
        let stats = store.gc(mib.saturating_mul(1024 * 1024));
        eprintln!(
            "store gc: evicted {} entr{} ({} bytes), {} remaining ({} bytes, cap {mib} MiB)",
            stats.evicted,
            if stats.evicted == 1 { "y" } else { "ies" },
            stats.evicted_bytes,
            stats.remaining,
            stats.remaining_bytes,
        );
    }
}

/// Parses a `--shard` value of the form `<k>/<n>` into `(k, n)`. Shared
/// with the manifest schema, which spells its `execution.shard` field the
/// same way.
pub(crate) fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let diag = || format!("invalid --shard value {value:?} (expected <k>/<n>, e.g. 0/4)");
    let (index, of) = value.split_once('/').ok_or_else(diag)?;
    let index: usize = index.parse().map_err(|_| diag())?;
    let of: usize = of.parse().map_err(|_| diag())?;
    if of == 0 {
        return Err(format!(
            "invalid --shard value {value:?}: shard count must be at least 1"
        ));
    }
    if index >= of {
        return Err(format!(
            "invalid --shard value {value:?}: shard index must be below the shard count"
        ));
    }
    Ok((index, of))
}

/// Prints `message` plus the usage line and returns the conventional
/// bad-invocation exit code. Binaries funnel every parse error through this.
#[must_use]
pub fn usage_error(usage: &str, message: &str) -> ExitCode {
    eprintln!("{message}");
    eprintln!("usage: {usage}");
    ExitCode::from(2)
}

/// Writes `value` to `path` as a single-line JSON document (with a trailing
/// newline, so the files are friendly to line-oriented tools).
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn write_json(path: &str, value: &Json) -> Result<(), String> {
    std::fs::write(path, format!("{value}\n"))
        .map_err(|e| format!("cannot write JSON report to {path}: {e}"))
}

/// Writes the JSON report when a path was requested, printing a
/// confirmation line to stderr; exits with failure on I/O errors. The
/// document is built lazily so the common no-`--json` invocation skips the
/// (potentially large) tree construction entirely.
#[must_use]
pub fn emit_json(path: Option<&str>, build: impl FnOnce() -> Json) -> ExitCode {
    let Some(path) = path else {
        return ExitCode::SUCCESS;
    };
    match write_json(path, &build()) {
        Ok(()) => {
            eprintln!("wrote JSON report to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_sim::json::object;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn shared_flags_are_extracted_and_the_rest_kept_in_order() {
        let args = BenchArgs::from_args(argv(&[
            "--app",
            "axpy",
            "--json",
            "out.json",
            "--threads",
            "3",
            "--chart",
            "perf",
        ]))
        .unwrap();
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert_eq!(args.threads, Some(3));
        assert!(args.store.is_none());
        assert!(!args.resume);
        assert_eq!(args.rest, argv(&["--app", "axpy", "--chart", "perf"]));
    }

    #[test]
    fn shared_flags_without_values_are_errors() {
        assert!(BenchArgs::from_args(argv(&["--json"])).is_err());
        assert!(BenchArgs::from_args(argv(&["--threads"])).is_err());
        assert!(BenchArgs::from_args(argv(&["--threads", "zero"])).is_err());
        assert!(BenchArgs::from_args(argv(&["--store"])).is_err());
    }

    #[test]
    fn resume_requires_an_existing_store() {
        let err = BenchArgs::from_args(argv(&["--resume"])).unwrap_err();
        assert!(err.contains("--resume requires --store"));

        let missing = std::env::temp_dir().join(format!(
            "ava-bencharg-missing-{}-resume",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&missing);
        let err = BenchArgs::from_args(argv(&["--store", missing.to_str().unwrap(), "--resume"]))
            .unwrap_err();
        assert!(err.contains("nothing to resume"), "{err}");

        // With the directory present, --resume opens the store normally.
        std::fs::create_dir_all(&missing).unwrap();
        let args = BenchArgs::from_args(argv(&["--store", missing.to_str().unwrap(), "--resume"]))
            .unwrap();
        assert!(args.store.is_some());
        assert!(args.resume);
        let _ = std::fs::remove_dir_all(&missing);
    }

    #[test]
    fn program_cache_flag_opens_creates_and_can_be_rejected() {
        let dir =
            std::env::temp_dir().join(format!("ava-bencharg-progcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = BenchArgs::from_args(argv(&["--program-cache", dir.to_str().unwrap()])).unwrap();
        assert!(args.program_cache.is_some());
        assert!(dir.is_dir(), "--program-cache must create the directory");
        let err = args
            .reject_execution_flags("table1 is analytic")
            .unwrap_err();
        assert!(err.contains("--program-cache"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);

        assert!(BenchArgs::from_args(argv(&["--program-cache"])).is_err());
    }

    #[test]
    fn store_flag_opens_and_creates_the_directory() {
        let dir = std::env::temp_dir().join(format!("ava-bencharg-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = BenchArgs::from_args(argv(&["--store", dir.to_str().unwrap()])).unwrap();
        assert!(args.store.is_some());
        assert!(dir.is_dir(), "--store must create the directory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_flag_parses_and_requires_a_store() {
        let err = BenchArgs::from_args(argv(&["--shard", "0/2"])).unwrap_err();
        assert!(err.contains("--shard requires --store"), "{err}");

        let dir = std::env::temp_dir().join(format!("ava-bencharg-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap();
        let args = BenchArgs::from_args(argv(&["--shard", "1/4", "--store", store])).unwrap();
        assert_eq!(args.shard, Some((1, 4)));
        let _ = std::fs::remove_dir_all(&dir);

        for bad in ["2", "a/b", "1/", "/4", "4/4", "9/4", "0/0"] {
            let got = BenchArgs::from_args(argv(&["--shard", bad, "--store", store]));
            assert!(got.is_err(), "--shard {bad} must be rejected");
        }
        assert!(BenchArgs::from_args(argv(&["--shard"])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_gc_flag_parses_and_requires_a_store() {
        let err = BenchArgs::from_args(argv(&["--store-gc-mib", "64"])).unwrap_err();
        assert!(err.contains("--store-gc-mib requires --store"), "{err}");

        let dir = std::env::temp_dir().join(format!("ava-bencharg-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap();
        let args = BenchArgs::from_args(argv(&["--store-gc-mib", "64", "--store", store])).unwrap();
        assert_eq!(args.store_gc_mib, Some(64));
        // A zero cap is legal: it empties the store after the sweep.
        args.run_store_gc();
        assert!(BenchArgs::from_args(argv(&["--store-gc-mib", "x", "--store", store])).is_err());
        assert!(BenchArgs::from_args(argv(&["--store-gc-mib"])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn extensions_take_values_and_finish_rejects_leftovers() {
        let mut args = BenchArgs::from_args(argv(&["--mode", "warn", "--bogus"])).unwrap();
        assert_eq!(args.take_value("--mode").unwrap().as_deref(), Some("warn"));
        assert_eq!(args.take_value("--mode").unwrap(), None);
        assert!(args.take_value("--bogus").is_err(), "flag without a value");
        let err = args.finish().unwrap_err();
        assert!(err.contains("--bogus"));
        assert!(!args.take_switch("--quiet"));
    }

    #[test]
    fn execution_flags_can_be_rejected_by_sweepless_binaries() {
        let args = BenchArgs::from_args(argv(&["--threads", "2"])).unwrap();
        let err = args
            .reject_execution_flags("table1 is analytic")
            .unwrap_err();
        assert!(err.contains("table1 is analytic"));
        let args = BenchArgs::from_args(argv(&[])).unwrap();
        assert!(args.reject_execution_flags("never triggers").is_ok());
        assert!(args.reject_json("never triggers").is_ok());
    }

    #[test]
    fn write_json_round_trips_through_the_filesystem() {
        let path = std::env::temp_dir().join("ava_cli_test.json");
        let path = path.to_str().unwrap();
        let value = object().field("k", "v").finish();
        write_json(path, &value).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"k\":\"v\"}\n");
        let _ = std::fs::remove_file(path);
    }
}
