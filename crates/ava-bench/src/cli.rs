//! Shared command-line plumbing for the figure/table binaries.
//!
//! Every binary accepts `--json <path>` in addition to its own flags: the
//! human-readable tables keep going to stdout, and the machine-readable
//! form of the same artefact is written to `<path>`. Extraction happens
//! before each binary's own argument loop so the flag works uniformly
//! across all of them.

use std::process::ExitCode;

use ava_sim::Json;

/// Removes `--json <path>` from `args` and returns the path, if present.
///
/// # Errors
///
/// Returns an error message if `--json` is present without a value.
pub fn take_json_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--json") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--json requires a path argument".to_string());
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(path))
}

/// Full argument handling for binaries whose only flag is `--json <path>`:
/// reads the process arguments, extracts the flag and rejects anything
/// else. On error, prints the problem plus `usage` and returns the exit
/// code to terminate with.
///
/// # Errors
///
/// Returns `ExitCode::from(2)` after printing a diagnostic when the flag is
/// malformed or an unrecognised argument is present.
pub fn json_only_args(usage: &str) -> Result<Option<String>, ExitCode> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_json_flag(&mut args).map_err(|e| {
        eprintln!("{e}");
        eprintln!("usage: {usage}");
        ExitCode::from(2)
    })?;
    if let Some(other) = args.first() {
        eprintln!("unrecognised argument: {other}");
        eprintln!("usage: {usage}");
        return Err(ExitCode::from(2));
    }
    Ok(json)
}

/// Writes `value` to `path` as a single-line JSON document (with a trailing
/// newline, so the files are friendly to line-oriented tools).
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn write_json(path: &str, value: &Json) -> Result<(), String> {
    std::fs::write(path, format!("{value}\n"))
        .map_err(|e| format!("cannot write JSON report to {path}: {e}"))
}

/// Writes the JSON report when a path was requested, printing a
/// confirmation line to stderr; exits with failure on I/O errors. The
/// document is built lazily so the common no-`--json` invocation skips the
/// (potentially large) tree construction entirely.
#[must_use]
pub fn emit_json(path: Option<&str>, build: impl FnOnce() -> Json) -> ExitCode {
    let Some(path) = path else {
        return ExitCode::SUCCESS;
    };
    match write_json(path, &build()) {
        Ok(()) => {
            eprintln!("wrote JSON report to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_sim::json::object;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn json_flag_is_extracted_and_removed() {
        let mut args = argv(&["--app", "axpy", "--json", "out.json", "--chart", "perf"]);
        let path = take_json_flag(&mut args).unwrap();
        assert_eq!(path.as_deref(), Some("out.json"));
        assert_eq!(args, argv(&["--app", "axpy", "--chart", "perf"]));
    }

    #[test]
    fn missing_flag_leaves_args_untouched() {
        let mut args = argv(&["--app", "axpy"]);
        assert_eq!(take_json_flag(&mut args).unwrap(), None);
        assert_eq!(args, argv(&["--app", "axpy"]));
    }

    #[test]
    fn json_flag_without_a_value_is_an_error() {
        let mut args = argv(&["--json"]);
        assert!(take_json_flag(&mut args).is_err());
    }

    #[test]
    fn write_json_round_trips_through_the_filesystem() {
        let path = std::env::temp_dir().join("ava_cli_test.json");
        let path = path.to_str().unwrap();
        let value = object().field("k", "v").finish();
        write_json(path, &value).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"k\":\"v\"}\n");
        let _ = std::fs::remove_file(path);
    }
}
