//! A minimal wall-clock micro-benchmark harness.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! benches under `benches/` cannot use Criterion. This module provides the
//! small subset the benches need: warm-up, a fixed measurement window, and a
//! per-iteration report on stdout. Every bench target sets `harness = false`
//! and drives this directly from `fn main`.

use std::time::{Duration, Instant};

/// Default measurement window per benchmark.
pub const MEASUREMENT: Duration = Duration::from_millis(500);

/// Default warm-up window per benchmark.
pub const WARM_UP: Duration = Duration::from_millis(100);

/// Runs `f` repeatedly for [`WARM_UP`] + [`MEASUREMENT`] and prints the mean
/// wall-clock time per iteration. The closure's result is passed through
/// [`std::hint::black_box`] so the compiler cannot elide the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let warm_end = Instant::now() + WARM_UP;
    while Instant::now() < warm_end {
        std::hint::black_box(f());
    }

    let mut iters = 0u64;
    let start = Instant::now();
    let end = start + MEASUREMENT;
    while Instant::now() < end {
        std::hint::black_box(f());
        iters += 1;
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {:>12.0} ns/iter ({iters} iters)", per_iter);
}

/// Prints the standard header for a bench binary.
pub fn header(suite: &str) {
    println!("bench suite: {suite}");
    println!("{:<40} {:>20}", "name", "mean");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure_and_reports() {
        let mut calls = 0u64;
        bench("test/no-op", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "the closure must actually run");
    }
}
