//! A minimal wall-clock micro-benchmark harness.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! benches under `benches/` cannot use Criterion. This module provides the
//! small subset the benches need: warm-up, a fixed measurement window, batched
//! iterations (so cheap closures do not pay a clock read per call), and a
//! min/mean report. Every bench target sets `harness = false` and drives this
//! directly from `fn main`; the `bench_baseline` binary collects the same
//! numbers as [`BenchResult`]s and persists them as `BENCH_*.json` for the
//! CI regression gate.

use std::time::{Duration, Instant};

/// Default measurement window per benchmark.
pub const MEASUREMENT: Duration = Duration::from_millis(500);

/// Default warm-up window per benchmark.
pub const WARM_UP: Duration = Duration::from_millis(100);

/// The number of batches the measurement window is divided into. The
/// per-batch minimum filters scheduler noise out of the headline number
/// while the mean keeps the honest long-run average.
const TARGET_BATCHES: u64 = 25;

/// The measured cost of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name ("suite/case").
    pub name: String,
    /// Total iterations measured (excluding warm-up).
    pub iters: u64,
    /// Best per-iteration time over any batch, in nanoseconds — the
    /// noise-resistant number the CI baselines compare.
    pub min_ns: f64,
    /// Mean per-iteration time over the whole window, in nanoseconds.
    pub mean_ns: f64,
}

/// Runs `f` repeatedly for [`WARM_UP`] + [`MEASUREMENT`] and returns the
/// per-iteration timing. Iterations run in batches sized from the warm-up
/// (clock reads happen once per batch, not once per iteration, so a
/// nanosecond-scale closure is not dominated by `Instant::now`). The
/// closure's result is passed through [`std::hint::black_box`] so the
/// compiler cannot elide the work.
pub fn measure<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up doubles as calibration: count how many iterations fit in the
    // warm-up window to size the measurement batches.
    let warm_start = Instant::now();
    let warm_end = warm_start + WARM_UP;
    let mut warm_iters = 0u64;
    while Instant::now() < warm_end {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    // Aim for TARGET_BATCHES batches over the measurement window. The
    // warm-up window is MEASUREMENT/5, so scale by 5; slow closures
    // (few warm-up iterations) degrade gracefully to batch size 1.
    let batch =
        (warm_iters * MEASUREMENT.as_nanos() as u64 / WARM_UP.as_nanos() as u64 / TARGET_BATCHES)
            .max(1);

    let mut iters = 0u64;
    let mut min_ns = f64::INFINITY;
    let start = Instant::now();
    let end = start + MEASUREMENT;
    loop {
        let batch_start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let batch_ns = batch_start.elapsed().as_nanos() as f64;
        iters += batch;
        min_ns = min_ns.min(batch_ns / batch as f64);
        if Instant::now() >= end {
            break;
        }
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    BenchResult {
        name: name.to_string(),
        iters,
        min_ns,
        mean_ns,
    }
}

/// Runs `f` under [`measure`] and prints the result in the standard table
/// format.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    print_result(&measure(name, f));
}

/// Prints one measured result in the standard table format.
pub fn print_result(r: &BenchResult) {
    println!(
        "{:<40} {:>12.0} ns/iter (min) {:>12.0} ns/iter (mean) ({} iters)",
        r.name, r.min_ns, r.mean_ns, r.iters
    );
}

/// Prints the standard header for a bench binary.
pub fn header(suite: &str) {
    println!("bench suite: {suite}");
    println!("{:<40} {:>20} {:>22}", "name", "min", "mean");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_the_closure_and_reports_sane_numbers() {
        let mut calls = 0u64;
        let r = measure("test/no-op", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "the closure must actually run");
        assert_eq!(r.name, "test/no-op");
        assert!(r.iters > 0);
        assert!(r.min_ns.is_finite() && r.min_ns >= 0.0);
        assert!(
            r.min_ns <= r.mean_ns,
            "a batch minimum cannot exceed the window mean: {} > {}",
            r.min_ns,
            r.mean_ns
        );
    }

    #[test]
    fn cheap_closures_amortise_the_clock_reads() {
        // A no-op closure must reach far more iterations than one clock
        // read per iteration would allow: batching keeps per-iteration cost
        // in the single-digit-nanosecond range rather than the ~20-30 ns a
        // syscall-backed Instant::now pair costs.
        let r = measure("test/batched", || 1u64);
        assert!(
            r.iters as f64 > MEASUREMENT.as_nanos() as f64 / 100.0,
            "expected >1 iteration per 100 ns of window, got {} iters",
            r.iters
        );
    }

    #[test]
    fn bench_prints_without_panicking() {
        bench("test/print", || 42u64);
    }
}
