//! Thin wrapper over [`ava_bench::suites`]: the McPAT-style area/energy
//! evaluation and the analytical post-PnR estimator behind Figure 4 and
//! Table V. The suite body lives in the library so the `bench_baseline`
//! recorder can persist the same numbers.

use ava_bench::microbench::{header, print_result};
use ava_bench::suites::run_suite;

fn main() {
    header("fig4_area");
    run_suite("fig4_area", print_result);
}
