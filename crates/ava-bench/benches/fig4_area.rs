//! Criterion benches behind Figure 4 and Table V: the McPAT-style area and
//! energy evaluation and the analytical post-PnR estimator.

use criterion::{criterion_group, criterion_main, Criterion};

use ava_energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
use ava_sim::{run_workload, SystemConfig};
use ava_workloads::Axpy;

fn bench_area_and_energy(c: &mut Criterion) {
    let params = EnergyParams::default();
    let sys = SystemConfig::ava_x(8);
    let report = run_workload(&Axpy::new(1024), &sys);

    c.bench_function("fig4/system_area", |b| {
        b.iter(|| std::hint::black_box(system_area(&sys.vpu)).total())
    });
    c.bench_function("fig3/energy_breakdown", |b| {
        b.iter(|| std::hint::black_box(energy_breakdown(&report, &sys.vpu, &params)).total())
    });
    c.bench_function("table5/pnr_estimate", |b| {
        b.iter(|| std::hint::black_box(pnr_estimate(&sys.vpu)).area_mm2)
    });
}

criterion_group!(benches, bench_area_and_energy);
criterion_main!(benches);
