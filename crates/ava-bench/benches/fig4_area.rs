//! Benches behind Figure 4 and Table V: the McPAT-style area and energy
//! evaluation and the analytical post-PnR estimator.

use ava_bench::microbench::{bench, header};
use ava_energy::{energy_breakdown, pnr_estimate, system_area, EnergyParams};
use ava_sim::{run_workload, SystemConfig};
use ava_workloads::Axpy;

fn main() {
    let params = EnergyParams::default();
    let sys = SystemConfig::ava_x(8);
    let report = run_workload(&Axpy::new(1024), &sys);

    header("fig4_area");
    bench("fig4/system_area", || system_area(&sys.vpu).total());
    bench("fig4/energy_breakdown", || {
        energy_breakdown(&report, &sys.vpu, &params).total()
    });
    bench("table5/pnr_estimate", || pnr_estimate(&sys.vpu).area_mm2);
}
