//! Memory-hierarchy benches: unit-stride and strided vector accesses through
//! the L2/DRAM timing model, and the M-VRF swap traffic path.

use criterion::{criterion_group, criterion_main, Criterion};

use ava_memory::{HierarchyConfig, MemoryHierarchy};

fn bench_vector_access(c: &mut Criterion) {
    c.bench_function("memory/unit_stride_128_elems", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let base = mem.allocate(128 * 8);
        b.iter(|| mem.vector_access(base, 128 * 8, false).total_cycles)
    });

    c.bench_function("memory/strided_128_elems", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let base = mem.allocate(128 * 512);
        let addrs: Vec<u64> = (0..128u64).map(|i| base + i * 512).collect();
        b.iter(|| mem.vector_access_elements(&addrs, false).total_cycles)
    });

    c.bench_function("memory/scalar_l1_hit", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let base = mem.allocate(64);
        mem.scalar_access(base, false);
        b.iter(|| mem.scalar_access(base, false))
    });
}

criterion_group!(benches, bench_vector_access);
criterion_main!(benches);
