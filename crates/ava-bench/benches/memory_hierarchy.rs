//! Memory-hierarchy benches: unit-stride and strided vector accesses through
//! the L2/DRAM timing model, and the scalar L1 hit path.

use ava_bench::microbench::{bench, header};
use ava_memory::{HierarchyConfig, MemoryHierarchy};

fn main() {
    header("memory_hierarchy");

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 8);
    bench("memory/unit_stride_128_elems", || {
        mem.vector_access(base, 128 * 8, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(128 * 512);
    let addrs: Vec<u64> = (0..128u64).map(|i| base + i * 512).collect();
    bench("memory/strided_128_elems", || {
        mem.vector_access_elements(&addrs, false).total_cycles
    });

    let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
    let base = mem.allocate(64);
    mem.scalar_access(base, false);
    bench("memory/scalar_l1_hit", || mem.scalar_access(base, false));
}
