//! Thin wrapper over [`ava_bench::suites`]: unit-stride and strided vector
//! accesses through the L2/DRAM timing model, and the scalar L1 hit path.
//! The suite body lives in the library so the `bench_baseline` recorder can
//! persist the same numbers.

use ava_bench::microbench::{header, print_result};
use ava_bench::suites::run_suite;

fn main() {
    header("memory_hierarchy");
    run_suite("memory_hierarchy", print_result);
}
