//! Thin wrapper over [`ava_bench::suites`]: the renaming unit, the Register
//! Access Counters, the Swap Logic victim selection, and the spilling
//! register allocator. The suite body lives in the library so the
//! `bench_baseline` recorder can persist the same numbers.

use ava_bench::microbench::{header, print_result};
use ava_bench::suites::run_suite;

fn main() {
    header("microarch");
    run_suite("microarch", print_result);
}
