//! Microarchitecture component benches: the renaming unit, the Register
//! Access Counters, the Swap Logic victim selection, and the register
//! allocator that produces spill code. These are the structures the paper
//! adds to the VPU, so their cost in the simulator is tracked explicitly.

use ava_bench::microbench::{bench, header};
use ava_compiler::{compile, CompileOptions, KernelBuilder};
use ava_isa::{Lmul, VReg};
use ava_vpu::rac::Rac;
use ava_vpu::rename::RenameUnit;
use ava_vpu::swap::SwapLogic;
use ava_vpu::vrf_mapping::VrfMapping;

fn bench_rename() {
    bench("microarch/rename_chain", || {
        let mut unit = RenameUnit::new(64);
        let mut released = Vec::new();
        for i in 0..1000u32 {
            let dst = VReg::new((i % 32) as u8);
            let renamed = unit.rename(Some(dst), &[]).unwrap();
            if let Some(old) = renamed.old_dst {
                released.push(old);
                if released.len() > 16 {
                    unit.release(released.remove(0));
                }
            }
        }
        unit.free_count()
    });
}

fn bench_swap_logic() {
    let mut mapping = VrfMapping::new(64, 8);
    let mut rac = Rac::new(64);
    for v in 0..8u16 {
        mapping.allocate_physical(v).unwrap();
        for _ in 0..=v {
            rac.increment(v);
        }
    }
    let logic = SwapLogic::new();
    bench("microarch/swap_victim_selection", || {
        logic.plan_free_register(&mapping, &rac, &[0, 1])
    });
}

fn bench_register_allocation() {
    // A kernel with 24 simultaneously-live values allocated onto the
    // 4-register LMUL=8 budget: the worst spill case of the evaluation.
    let mut builder = KernelBuilder::new("pressure");
    let vals: Vec<_> = (0..24).map(|i| builder.vload(64 * i as u64)).collect();
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = builder.vfadd(acc, v);
    }
    builder.vstore(acc, 0x10_0000);
    let kernel = builder.finish();
    bench("microarch/regalloc_spilling", || {
        let out = compile(&kernel, &CompileOptions::new(Lmul::M8, 0x40_0000, 1024));
        assert!(out.spill_stores > 0);
        out.program.len()
    });
}

fn main() {
    header("microarch");
    bench_rename();
    bench_swap_logic();
    bench_register_allocation();
}
