//! Thin wrapper over [`ava_bench::suites`]: end-to-end simulation of each
//! application on the key configurations. The suite body lives in the
//! library so the `bench_baseline` recorder can persist the same numbers.

use ava_bench::microbench::{header, print_result};
use ava_bench::suites::run_suite;

fn main() {
    header("fig3_kernels");
    run_suite("fig3_kernels", print_result);
}
