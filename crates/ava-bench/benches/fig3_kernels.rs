//! Criterion benches behind Figure 3: end-to-end simulation of each
//! application on the key configurations (NATIVE X1, NATIVE X8, AVA X8,
//! RG-LMUL8). Each benchmark measures the wall-clock cost of one full
//! compile + simulate + validate pass of the reproduction pipeline; the
//! *simulated* cycle numbers behind the figure are printed by the `fig3`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ava_bench::bench_workloads;
use ava_isa::Lmul;
use ava_sim::{run_workload, SystemConfig};

fn bench_fig3(c: &mut Criterion) {
    let systems = [
        SystemConfig::native_x(1),
        SystemConfig::native_x(8),
        SystemConfig::ava_x(8),
        SystemConfig::rg_lmul(Lmul::M8),
    ];
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for workload in bench_workloads() {
        for sys in &systems {
            let id = BenchmarkId::new(workload.name(), sys.label());
            group.bench_with_input(id, sys, |b, sys| {
                b.iter(|| {
                    let report = run_workload(workload.as_ref(), sys);
                    assert!(report.validated, "{:?}", report.validation_error);
                    report.cycles
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
