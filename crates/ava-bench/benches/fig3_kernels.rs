//! Benches behind Figure 3: end-to-end simulation of each application on
//! the key configurations (NATIVE X1, NATIVE X8, AVA X8, RG-LMUL8). Each
//! benchmark measures the wall-clock cost of one full compile + simulate +
//! validate pass of the reproduction pipeline; the *simulated* cycle numbers
//! behind the figure are printed by the `fig3` binary.

use ava_bench::bench_workloads;
use ava_bench::microbench::{bench, header};
use ava_isa::Lmul;
use ava_sim::{run_workload, SystemConfig};

fn main() {
    let systems = [
        SystemConfig::native_x(1),
        SystemConfig::native_x(8),
        SystemConfig::ava_x(8),
        SystemConfig::rg_lmul(Lmul::M8),
    ];
    header("fig3");
    for workload in bench_workloads() {
        for sys in &systems {
            bench(&format!("fig3/{}/{}", workload.name(), sys.label()), || {
                let report = run_workload(workload.as_ref(), sys);
                assert!(report.validated, "{:?}", report.validation_error);
                report.cycles
            });
        }
    }
}
