//! Axpy: `y[i] = a * x[i] + y[i]` (BLAS level 1).
//!
//! The paper's ideal case: only two vector registers are live, so no
//! configuration ever spills or swaps, and longer vectors translate directly
//! into fewer instructions (§V, Figure 3-a).

use ava_compiler::KernelBuilder;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

/// The Axpy workload.
#[derive(Debug, Clone, Copy)]
pub struct Axpy {
    n: usize,
    a: f64,
}

impl Axpy {
    /// Creates an Axpy over `n` elements with the default scaling factor.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "problem size must be positive");
        Self { n, a: 1.75 }
    }

    /// Problem size in elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the problem is empty (never constructible; provided for API
    /// completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Default for Axpy {
    fn default() -> Self {
        Self::new(2048)
    }
}

impl Workload for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn domain(&self) -> &'static str {
        "HPC (BLAS)"
    }

    fn elements(&self) -> usize {
        // Two loads, one fused multiply-add, one store per element.
        self.n * 4
    }

    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        l.input("x", self.n);
        l.inout("y", self.n);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let mut gen = DataGen::for_workload(self.name());
        let x = materialize_input(mem, plan, bindings, "x", || {
            gen.uniform_vec(self.n, -1.0, 1.0)
        });
        let y = materialize_input(mem, plan, bindings, "y", || {
            gen.uniform_vec(self.n, -1.0, 1.0)
        });
        let xa = plan.addr("x");
        let ya = plan.addr("y");

        let mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("axpy");
        let mut strips = 0u64;
        let mut i = 0usize;
        while i < self.n {
            let vl = mvl.min(self.n - i);
            b.set_vl(vl);
            let off = (8 * i) as u64;
            let vx = b.vload(xa + off);
            let vy = b.vload(ya + off);
            let r = b.vfmacc_scalar(vy, self.a, vx);
            b.vstore(r, ya + off);
            strips += 1;
            i += vl;
        }

        let y_out: Vec<f64> = (0..self.n).map(|i| self.a.mul_add(x[i], y[i])).collect();
        let checks = y_out
            .iter()
            .enumerate()
            .map(|(i, &expected)| Check {
                addr: ya + (8 * i) as u64,
                expected,
                tolerance: 0.0,
            })
            .collect();

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![OutputValues {
                name: "y".to_string(),
                base: ya,
                values: y_out,
            }],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_is_tiny() {
        let mut mem = MemoryHierarchy::default();
        let setup = Axpy::new(256).build(&mut mem, &VectorContext::with_mvl(16));
        let p = setup.kernel.max_pressure();
        assert!(p <= 3, "axpy pressure should be at most 3, got {p}");
    }

    #[test]
    fn instruction_mix_is_three_quarters_memory() {
        // 2 loads + 1 store per 1 arithmetic instruction (Figure 3-a2: 75 %).
        let mut mem = MemoryHierarchy::default();
        let setup = Axpy::new(256).build(&mut mem, &VectorContext::with_mvl(16));
        let mem_ops = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Memory)
            .count();
        let arith = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Arithmetic)
            .count();
        assert_eq!(mem_ops, 3 * arith);
    }

    #[test]
    fn longer_mvl_means_fewer_strips() {
        let mut mem = MemoryHierarchy::default();
        let short = Axpy::new(1024).build(&mut mem, &VectorContext::with_mvl(16));
        let long = Axpy::new(1024).build(&mut mem, &VectorContext::with_mvl(128));
        assert_eq!(short.strips, 64);
        assert_eq!(long.strips, 8);
        assert!(long.kernel.len() < short.kernel.len());
    }

    #[test]
    fn tail_strips_handle_non_multiple_sizes() {
        let mut mem = MemoryHierarchy::default();
        let setup = Axpy::new(100).build(&mut mem, &VectorContext::with_mvl(16));
        assert_eq!(setup.strips, 7);
        assert_eq!(setup.checks.len(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_is_rejected() {
        let _ = Axpy::new(0);
    }
}
