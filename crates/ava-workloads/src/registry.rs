//! Name-indexed constructors for the shipped kernels.
//!
//! The experiment-manifest layer (`ava-bench`'s `spec` module) describes
//! workloads as data — `{"name": "axpy", "n": 4096}` — and needs to turn
//! those entries back into [`SharedWorkload`] instances. This module is the
//! single place that mapping lives: every kernel of the suite is registered
//! here under its canonical name together with its default problem size, so
//! a manifest can name a kernel without repeating the sizes the evaluation
//! uses, and an unknown name is a diagnosable error rather than a panic.
//!
//! The composite mixes that combine kernels (`pipelined`, `solver`) are
//! *not* registered here — they are wiring, not kernels, and live with the
//! experiment harness in `ava-bench`.

use std::sync::Arc;

use crate::{
    Axpy, Blackscholes, Composite, LavaMd2, ParticleFilter, SharedWorkload, Somier, Swaptions,
};

/// The canonical kernel names [`build_kernel`] accepts, in suite order.
/// `composite` is the three-kernel cache-sharing mix of the sensitivity
/// study (axpy + blackscholes + somier on one warm hierarchy).
pub const KERNEL_NAMES: [&str; 7] = [
    "axpy",
    "blackscholes",
    "lavamd2",
    "particlefilter",
    "somier",
    "swaptions",
    "composite",
];

/// The default `(n, m)` parameters of a registered kernel: `n` is the
/// primary problem size (elements, options, particles, ...), `m` the
/// secondary one where the constructor takes two (LavaMD's neighbour count,
/// Particle Filter's grid size; `None` elsewhere). The defaults are the
/// paper-evaluation sizes of `ava_bench::paper_workloads`, except
/// `composite`, which defaults to the sensitivity-study mix size.
///
/// Returns `None` for names not in [`KERNEL_NAMES`].
#[must_use]
pub fn kernel_defaults(name: &str) -> Option<(usize, Option<usize>)> {
    match name {
        "axpy" => Some((4096, None)),
        "blackscholes" => Some((1024, None)),
        "lavamd2" => Some((48, Some(2))),
        "particlefilter" => Some((2048, Some(64))),
        "somier" => Some((4096, None)),
        "swaptions" => Some((1024, None)),
        "composite" => Some((16384, None)),
        _ => None,
    }
}

/// Builds a registered kernel by name. `n` and `m` override the defaults of
/// [`kernel_defaults`]; an `m` for a single-parameter kernel is rejected so
/// a manifest cannot silently carry a knob that does nothing.
///
/// The `composite` mix is parameterised by its axpy length `n`: it builds
/// `Composite::new([Axpy(n), Blackscholes(n/4), Somier(n/2)])`, which at the
/// default `n = 16384` reproduces the sensitivity-study mix exactly.
///
/// # Errors
///
/// Returns a diagnostic for an unknown name, a zero size, a stray `m`, or a
/// `composite` size too small to split across its three phases.
pub fn build_kernel(
    name: &str,
    n: Option<usize>,
    m: Option<usize>,
) -> Result<SharedWorkload, String> {
    let (default_n, default_m) = kernel_defaults(name).ok_or_else(|| {
        format!(
            "unknown workload {name:?} (known kernels: {})",
            KERNEL_NAMES.join(", ")
        )
    })?;
    if m.is_some() && default_m.is_none() {
        return Err(format!("workload {name:?} takes no second parameter m"));
    }
    let n = n.unwrap_or(default_n);
    if n == 0 {
        return Err(format!("workload {name:?} needs a non-zero size n"));
    }
    let m = m.or(default_m).unwrap_or(0);
    Ok(match name {
        "axpy" => Arc::new(Axpy::new(n)),
        "blackscholes" => Arc::new(Blackscholes::new(n)),
        "lavamd2" => Arc::new(LavaMd2::new(n, m)),
        "particlefilter" => Arc::new(ParticleFilter::new(n, m)),
        "somier" => Arc::new(Somier::new(n)),
        "swaptions" => Arc::new(Swaptions::new(n)),
        "composite" => {
            if n < 4 {
                return Err(format!(
                    "workload \"composite\" needs n >= 4 to split across its phases, got {n}"
                ));
            }
            Arc::new(Composite::new(vec![
                Arc::new(Axpy::new(n)),
                Arc::new(Blackscholes::new(n / 4)),
                Arc::new(Somier::new(n / 2)),
            ]))
        }
        _ => unreachable!("name was validated against KERNEL_NAMES"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn every_registered_name_builds_with_defaults() {
        for name in KERNEL_NAMES {
            let w = build_kernel(name, None, None).unwrap();
            assert_eq!(w.name(), name, "registry name must match Workload::name");
            assert!(w.elements() > 0);
        }
    }

    #[test]
    fn explicit_sizes_override_the_defaults() {
        let w = build_kernel("axpy", Some(256), None).unwrap();
        assert_eq!(w.elements(), Axpy::new(256).elements());
        let lava = build_kernel("lavamd2", Some(16), Some(2)).unwrap();
        assert_eq!(lava.name(), "lavamd2");
    }

    #[test]
    fn unknown_names_and_bad_parameters_are_diagnosed() {
        let err = build_kernel("axpyz", None, None).err().unwrap();
        assert!(
            err.contains("axpyz") && err.contains("known kernels"),
            "{err}"
        );
        let err = build_kernel("axpy", Some(0), None).err().unwrap();
        assert!(err.contains("non-zero"), "{err}");
        let err = build_kernel("axpy", None, Some(3)).err().unwrap();
        assert!(err.contains("no second parameter"), "{err}");
        let err = build_kernel("composite", Some(2), None).err().unwrap();
        assert!(err.contains("n >= 4"), "{err}");
    }

    #[test]
    fn composite_default_matches_the_sensitivity_mix() {
        let w = build_kernel("composite", None, None).unwrap();
        let reference = Composite::new(vec![
            Arc::new(Axpy::new(16384)),
            Arc::new(Blackscholes::new(4096)),
            Arc::new(Somier::new(8192)),
        ]);
        assert_eq!(w.elements(), reference.elements());
    }
}
