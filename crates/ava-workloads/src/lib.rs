//! # ava-workloads — the RiVEC-style benchmark kernels
//!
//! The paper evaluates AVA with six applications from the RiVEC Benchmark
//! Suite (Table IV): Axpy, Blackscholes, LavaMD2, Particle Filter, Somier
//! and Swaptions. This crate reproduces each of them as a hand-vectorised
//! kernel written against the intrinsics-style [`ava_compiler::KernelBuilder`],
//! together with an input generator and a scalar golden reference, so a
//! simulation run can be validated numerically as well as timed.
//!
//! The kernels are written to reproduce each application's *register
//! pressure* and *instruction mix*, the two properties the paper's results
//! hinge on: Axpy needs only a couple of registers, Blackscholes and
//! Swaptions keep more than 16 values live (forcing spill code under
//! register grouping), LavaMD2 operates on fixed 48-element vectors, Somier
//! is memory-bound with low pressure, and Particle Filter sits in between.
//!
//! ```
//! use ava_workloads::{Axpy, Workload};
//! use ava_isa::VectorContext;
//! use ava_memory::MemoryHierarchy;
//!
//! let mut mem = MemoryHierarchy::default();
//! let setup = Axpy::new(256).build(&mut mem, &VectorContext::with_mvl(16));
//! assert!(setup.kernel.len() > 0);
//! assert!(setup.strips >= 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axpy;
pub mod blackscholes;
pub mod composite;
pub mod data;
pub mod fingerprint;
pub mod lavamd;
pub mod layout;
pub mod particlefilter;
pub mod registry;
pub mod somier;
pub mod swaptions;

use ava_compiler::analysis::{analyze, AnalysisInput, AnalysisReport, Arena};
use ava_compiler::IrKernel;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

pub use ava_compiler::analysis;
pub use axpy::Axpy;
pub use blackscholes::Blackscholes;
pub use composite::Composite;
pub use fingerprint::Fingerprint;
pub use lavamd::LavaMd2;
pub use layout::{
    materialize_input, ArenaPlanner, BufferBindings, BufferRole, BufferSpec, DataLayout,
    PlannedBuffer, PlannedLayout,
};
pub use particlefilter::ParticleFilter;
pub use registry::{build_kernel, kernel_defaults, KERNEL_NAMES};
pub use somier::Somier;
pub use swaptions::Swaptions;

/// One expected output value, checked after simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Check {
    /// Address of the value in simulated memory.
    pub addr: u64,
    /// Expected value from the scalar golden reference.
    pub expected: f64,
    /// Absolute tolerance (0.0 for bit-exact expectations).
    pub tolerance: f64,
}

/// The golden-reference contents of one declared output buffer after the
/// kernel has run. A pipelined composite feeds these values to the next
/// phase's `BufferBindings`, chaining the scalar models.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputValues {
    /// Declared buffer name ("y", "vout", ...).
    pub name: String,
    /// Base address of the buffer in simulated memory.
    pub base: u64,
    /// Expected value of every element, in order.
    pub values: Vec<f64>,
}

impl OutputValues {
    /// Address range `[base, end)` covered by the buffer.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.base, self.base + (self.values.len() * 8) as u64)
    }
}

/// One phase boundary of a multi-kernel setup: the phase's display name and
/// the IR-instruction index at which the phase *ends* (exclusive). The
/// simulator uses these to report per-phase cycle/memory breakdowns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMark {
    /// Display name of the phase ("0:axpy" for pipeline stages,
    /// "it3:somier" for unrolled iterations).
    pub name: String,
    /// Iteration index for phases produced by unrolling an iterated
    /// composite (`None` for ordinary pipeline stages). Threaded into the
    /// per-phase report breakdowns so downstream consumers can group
    /// per-iteration costs.
    pub iter: Option<usize>,
    /// Exclusive IR-instruction end index of the phase.
    pub ir_end: usize,
}

/// Everything needed to run and validate one workload at one vector length:
/// the IR trace, the expected outputs and loop-shape metadata.
#[derive(Debug, Clone)]
pub struct WorkloadSetup {
    /// The vectorised kernel as an IR trace (before register allocation).
    pub kernel: IrKernel,
    /// Expected output values for validation.
    pub checks: Vec<Check>,
    /// Number of stripmined loop iterations (drives the scalar-core model).
    pub strips: u64,
    /// Golden-reference contents of every declared output buffer (the
    /// chaining surface for pipelined composites).
    pub outputs: Vec<OutputValues>,
    /// Planner-derived cache warm-up ranges: every planned buffer the run
    /// actually touches (bound placeholder inputs are excluded).
    pub warm_ranges: Vec<(u64, u64)>,
    /// Phase boundaries for multi-kernel setups (empty means one phase
    /// spanning the whole kernel; no per-phase breakdown is reported).
    pub phase_marks: Vec<PhaseMark>,
}

impl WorkloadSetup {
    /// Feeds this setup's golden-reference identity — the output checks
    /// (address, expected bits, tolerance bits), the stripmine count and the
    /// phase boundaries — into a result-store fingerprint. The kernel itself
    /// is fingerprinted separately from its *compiled* form (the program the
    /// simulator actually executes), so it is deliberately not fed here.
    pub fn fingerprint(&self, h: &mut Fingerprint) {
        h.write_u64(self.checks.len() as u64);
        for c in &self.checks {
            h.write_u64(c.addr);
            h.write_f64(c.expected);
            h.write_f64(c.tolerance);
        }
        h.write_u64(self.strips);
        h.write_u64(self.phase_marks.len() as u64);
        for m in &self.phase_marks {
            h.write_str(&m.name);
            h.write_u64(m.iter.map_or(u64::MAX, |i| i as u64));
            h.write_u64(m.ir_end as u64);
        }
    }

    /// The reference output buffer named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no output of that name exists.
    #[must_use]
    pub fn output(&self, name: &str) -> &OutputValues {
        self.outputs
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("no output buffer named {name:?}"))
    }
}

/// A vectorised benchmark application, expressed as a two-step protocol:
/// a [`DataLayout`] planning step declaring named input/output buffers, and
/// a [`Workload::build_with_bindings`] step that generates the IR and the
/// golden reference against the planned placement — with any subset of the
/// inputs externally bound to an upstream phase's output.
pub trait Workload {
    /// Short name used in reports ("axpy", "blackscholes", ...).
    fn name(&self) -> &'static str;

    /// Application domain, as listed in Table IV of the paper.
    fn domain(&self) -> &'static str;

    /// Approximate number of vector element operations one simulation of
    /// this workload executes: problem size scaled by a rough per-element
    /// kernel weight. The sweep scheduler uses this as its per-point cost
    /// estimate to start expensive points first; the estimate only orders
    /// work and can never change a result.
    fn elements(&self) -> usize;

    /// Step 1 of the build protocol: the named buffers this workload reads
    /// and writes, in placement order. Sizes depend only on the problem
    /// size, so composites can validate bindings without a machine context.
    fn data_layout(&self) -> DataLayout;

    /// Whether binding the input named `input` destroys the bound
    /// (upstream) buffer's contents at run time — i.e. whether this
    /// workload's kernel, once rebased onto the producer's array, writes
    /// into it. True for `InOut` inputs by default; [`Composite`] refines
    /// it (an iterated composite's carried input is written by the
    /// ping-pong swap even though its declared role is a plain `Input`).
    /// `Composite::pipelined` uses this to reject, at construction, a
    /// later link onto an output that no longer exists by the time it
    /// would be read.
    fn overwrites_bound_input(&self, input: &str) -> bool {
        self.data_layout()
            .get(input)
            .is_some_and(|b| b.role == BufferRole::InOut)
    }

    /// Step 2 of the build protocol: generates input data (for unbound
    /// inputs), the vector IR trace for the machine described by `ctx` (its
    /// effective MVL decides the stripmine length) and the golden
    /// reference, all against the planned buffer placement. Bound inputs
    /// take their reference values from `bindings` instead of generating
    /// data — the chaining mechanism of pipelined composites.
    ///
    /// Contract for binders: a bound input's data is *not* written to the
    /// planned buffer (the kernel is generated against the planned address
    /// regardless). The caller must ensure the bound values exist at run
    /// time at whatever address the kernel ends up reading — normally by
    /// rebasing the kernel's accesses onto a buffer an earlier phase
    /// writes ([`Composite::pipelined`] does this via
    /// `IrKernel::concat_remapped`), or by writing the values into memory
    /// itself. Passing bindings without arranging either leaves the kernel
    /// reading zeros while the reference expects the bound values, and
    /// validation fails.
    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup;

    /// Convenience wrapper running both protocol steps with no external
    /// bindings: plan the declared layout with a fresh [`ArenaPlanner`],
    /// then build against it.
    fn build(&self, mem: &mut MemoryHierarchy, ctx: &VectorContext) -> WorkloadSetup {
        let plan = ArenaPlanner::new().plan(mem, &self.data_layout());
        self.build_with_bindings(mem, ctx, &plan, &BufferBindings::none())
    }

    /// The planned buffers as [`analysis`] arenas, for the static verifier.
    /// The default maps every planned buffer to a plain arena; [`Composite`]
    /// overrides it to mark rebased consumer inputs as placeholders and
    /// iterated carry buffers as carried.
    fn analysis_arenas(&self, plan: &PlannedLayout) -> Vec<Arena> {
        plan.buffers()
            .iter()
            .map(|b| Arena::new(b.spec.name.clone(), b.base, b.bytes()))
            .collect()
    }

    /// Statically verifies this workload's kernel at the given maximum
    /// vector length: builds it against a fresh memory hierarchy and runs
    /// the full [`analysis`] suite (SSA well-formedness, VL-state lints and
    /// address-interval bounds checks against the planned arenas). No
    /// simulation runs — this is the `ava-lint` entry point used by tests,
    /// the `lint` binary and the composite constructors.
    fn verify(&self, mvl: usize) -> AnalysisReport {
        let mut mem = MemoryHierarchy::default();
        let ctx = VectorContext::with_mvl(mvl);
        let plan = ArenaPlanner::new().plan(&mut mem, &self.data_layout());
        let setup = self.build_with_bindings(&mut mem, &ctx, &plan, &BufferBindings::none());
        let input = AnalysisInput::new(Some(ctx.effective_mvl()))
            .with_arenas(self.analysis_arenas(&plan))
            .with_phase_ends(setup.phase_marks.iter().map(|m| m.ir_end).collect());
        analyze(&setup.kernel, &input)
    }
}

/// Validates the expected outputs of a finished run against the simulated
/// memory, returning a description of the first mismatch.
///
/// # Errors
///
/// Returns `Err` with a human-readable message naming the first mismatching
/// address, its expected and actual values.
pub fn validate(mem: &MemoryHierarchy, checks: &[Check]) -> Result<(), String> {
    for (i, c) in checks.iter().enumerate() {
        let actual = mem.read_f64(c.addr);
        let ok = if c.tolerance == 0.0 {
            actual == c.expected
        } else {
            (actual - c.expected).abs() <= c.tolerance.max(c.expected.abs() * c.tolerance)
        };
        if !ok {
            return Err(format!(
                "check {i} at {:#x}: expected {}, got {} (tolerance {})",
                c.addr, c.expected, actual, c.tolerance
            ));
        }
    }
    Ok(())
}

/// All six workloads at their default (test-sized) problem sizes, in the
/// order the paper presents them.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Axpy::default()),
        Box::new(Blackscholes::default()),
        Box::new(LavaMd2::default()),
        Box::new(ParticleFilter::default()),
        Box::new(Somier::default()),
        Box::new(Swaptions::default()),
    ]
}

/// A workload that can be shared across experiment threads (the sweep engine
/// runs one simulation per (workload, system) point in parallel).
pub type SharedWorkload = std::sync::Arc<dyn Workload + Send + Sync>;

/// All six workloads at their default problem sizes as [`SharedWorkload`]s,
/// in the order the paper presents them.
#[must_use]
pub fn all_workloads_shared() -> Vec<SharedWorkload> {
    vec![
        std::sync::Arc::new(Axpy::default()),
        std::sync::Arc::new(Blackscholes::default()),
        std::sync::Arc::new(LavaMd2::default()),
        std::sync::Arc::new(ParticleFilter::default()),
        std::sync::Arc::new(Somier::default()),
        std::sync::Arc::new(Swaptions::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_have_distinct_names_and_domains() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 6);
        let mut names: Vec<_> = ws.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate workload names");
        for w in &ws {
            assert!(!w.domain().is_empty());
        }
    }

    #[test]
    fn cost_hints_are_positive_and_scale_with_problem_size() {
        for w in all_workloads() {
            assert!(w.elements() > 0, "{} has a zero cost hint", w.name());
        }
        assert!(Axpy::new(4096).elements() > Axpy::new(256).elements());
        assert!(Blackscholes::new(1024).elements() > Blackscholes::new(64).elements());
        // Blackscholes is far heavier per element than Axpy at equal sizes.
        assert!(Blackscholes::new(1024).elements() > Axpy::new(1024).elements());
    }

    #[test]
    fn validate_accepts_exact_and_tolerant_matches() {
        let mut mem = MemoryHierarchy::default();
        let a = mem.allocate(16);
        mem.write_f64(a, 1.5);
        mem.write_f64(a + 8, 2.0 + 1e-12);
        let checks = vec![
            Check {
                addr: a,
                expected: 1.5,
                tolerance: 0.0,
            },
            Check {
                addr: a + 8,
                expected: 2.0,
                tolerance: 1e-9,
            },
        ];
        assert!(validate(&mem, &checks).is_ok());
    }

    #[test]
    fn validate_reports_the_first_mismatch() {
        let mut mem = MemoryHierarchy::default();
        let a = mem.allocate(16);
        mem.write_f64(a, 1.0);
        let checks = vec![Check {
            addr: a,
            expected: 2.0,
            tolerance: 0.0,
        }];
        let err = validate(&mem, &checks).unwrap_err();
        assert!(err.contains("expected 2"));
    }

    #[test]
    fn every_workload_builds_a_nonempty_kernel() {
        for w in all_workloads() {
            let mut mem = MemoryHierarchy::default();
            let setup = w.build(&mut mem, &VectorContext::with_mvl(16));
            assert!(
                !setup.kernel.is_empty(),
                "{} built an empty kernel",
                w.name()
            );
            assert!(
                !setup.checks.is_empty(),
                "{} has no output checks",
                w.name()
            );
            assert!(setup.strips >= 1);
        }
    }
}
