//! # ava-workloads — the RiVEC-style benchmark kernels
//!
//! The paper evaluates AVA with six applications from the RiVEC Benchmark
//! Suite (Table IV): Axpy, Blackscholes, LavaMD2, Particle Filter, Somier
//! and Swaptions. This crate reproduces each of them as a hand-vectorised
//! kernel written against the intrinsics-style [`ava_compiler::KernelBuilder`],
//! together with an input generator and a scalar golden reference, so a
//! simulation run can be validated numerically as well as timed.
//!
//! The kernels are written to reproduce each application's *register
//! pressure* and *instruction mix*, the two properties the paper's results
//! hinge on: Axpy needs only a couple of registers, Blackscholes and
//! Swaptions keep more than 16 values live (forcing spill code under
//! register grouping), LavaMD2 operates on fixed 48-element vectors, Somier
//! is memory-bound with low pressure, and Particle Filter sits in between.
//!
//! ```
//! use ava_workloads::{Axpy, Workload};
//! use ava_isa::VectorContext;
//! use ava_memory::MemoryHierarchy;
//!
//! let mut mem = MemoryHierarchy::default();
//! let setup = Axpy::new(256).build(&mut mem, &VectorContext::with_mvl(16));
//! assert!(setup.kernel.len() > 0);
//! assert!(setup.strips >= 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axpy;
pub mod blackscholes;
pub mod composite;
pub mod data;
pub mod lavamd;
pub mod particlefilter;
pub mod somier;
pub mod swaptions;

use ava_compiler::IrKernel;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

pub use axpy::Axpy;
pub use blackscholes::Blackscholes;
pub use composite::Composite;
pub use lavamd::LavaMd2;
pub use particlefilter::ParticleFilter;
pub use somier::Somier;
pub use swaptions::Swaptions;

/// One expected output value, checked after simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Check {
    /// Address of the value in simulated memory.
    pub addr: u64,
    /// Expected value from the scalar golden reference.
    pub expected: f64,
    /// Absolute tolerance (0.0 for bit-exact expectations).
    pub tolerance: f64,
}

/// Everything needed to run and validate one workload at one vector length:
/// the IR trace, the expected outputs and loop-shape metadata.
#[derive(Debug, Clone)]
pub struct WorkloadSetup {
    /// The vectorised kernel as an IR trace (before register allocation).
    pub kernel: IrKernel,
    /// Expected output values for validation.
    pub checks: Vec<Check>,
    /// Number of stripmined loop iterations (drives the scalar-core model).
    pub strips: u64,
}

/// A vectorised benchmark application.
pub trait Workload {
    /// Short name used in reports ("axpy", "blackscholes", ...).
    fn name(&self) -> &'static str;

    /// Application domain, as listed in Table IV of the paper.
    fn domain(&self) -> &'static str;

    /// Approximate number of vector element operations one simulation of
    /// this workload executes: problem size scaled by a rough per-element
    /// kernel weight. The sweep scheduler uses this as its per-point cost
    /// estimate to start expensive points first; the estimate only orders
    /// work and can never change a result.
    fn elements(&self) -> usize;

    /// Allocates inputs in `mem`, generates the vector IR trace for the
    /// machine described by `ctx` (its effective MVL decides the stripmine
    /// length) and returns the expected outputs.
    fn build(&self, mem: &mut MemoryHierarchy, ctx: &VectorContext) -> WorkloadSetup;
}

/// Validates the expected outputs of a finished run against the simulated
/// memory, returning a description of the first mismatch.
///
/// # Errors
///
/// Returns `Err` with a human-readable message naming the first mismatching
/// address, its expected and actual values.
pub fn validate(mem: &MemoryHierarchy, checks: &[Check]) -> Result<(), String> {
    for (i, c) in checks.iter().enumerate() {
        let actual = mem.read_f64(c.addr);
        let ok = if c.tolerance == 0.0 {
            actual == c.expected
        } else {
            (actual - c.expected).abs() <= c.tolerance.max(c.expected.abs() * c.tolerance)
        };
        if !ok {
            return Err(format!(
                "check {i} at {:#x}: expected {}, got {} (tolerance {})",
                c.addr, c.expected, actual, c.tolerance
            ));
        }
    }
    Ok(())
}

/// All six workloads at their default (test-sized) problem sizes, in the
/// order the paper presents them.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Axpy::default()),
        Box::new(Blackscholes::default()),
        Box::new(LavaMd2::default()),
        Box::new(ParticleFilter::default()),
        Box::new(Somier::default()),
        Box::new(Swaptions::default()),
    ]
}

/// A workload that can be shared across experiment threads (the sweep engine
/// runs one simulation per (workload, system) point in parallel).
pub type SharedWorkload = std::sync::Arc<dyn Workload + Send + Sync>;

/// All six workloads at their default problem sizes as [`SharedWorkload`]s,
/// in the order the paper presents them.
#[must_use]
pub fn all_workloads_shared() -> Vec<SharedWorkload> {
    vec![
        std::sync::Arc::new(Axpy::default()),
        std::sync::Arc::new(Blackscholes::default()),
        std::sync::Arc::new(LavaMd2::default()),
        std::sync::Arc::new(ParticleFilter::default()),
        std::sync::Arc::new(Somier::default()),
        std::sync::Arc::new(Swaptions::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_have_distinct_names_and_domains() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 6);
        let mut names: Vec<_> = ws.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate workload names");
        for w in &ws {
            assert!(!w.domain().is_empty());
        }
    }

    #[test]
    fn cost_hints_are_positive_and_scale_with_problem_size() {
        for w in all_workloads() {
            assert!(w.elements() > 0, "{} has a zero cost hint", w.name());
        }
        assert!(Axpy::new(4096).elements() > Axpy::new(256).elements());
        assert!(Blackscholes::new(1024).elements() > Blackscholes::new(64).elements());
        // Blackscholes is far heavier per element than Axpy at equal sizes.
        assert!(Blackscholes::new(1024).elements() > Axpy::new(1024).elements());
    }

    #[test]
    fn validate_accepts_exact_and_tolerant_matches() {
        let mut mem = MemoryHierarchy::default();
        let a = mem.allocate(16);
        mem.write_f64(a, 1.5);
        mem.write_f64(a + 8, 2.0 + 1e-12);
        let checks = vec![
            Check {
                addr: a,
                expected: 1.5,
                tolerance: 0.0,
            },
            Check {
                addr: a + 8,
                expected: 2.0,
                tolerance: 1e-9,
            },
        ];
        assert!(validate(&mem, &checks).is_ok());
    }

    #[test]
    fn validate_reports_the_first_mismatch() {
        let mut mem = MemoryHierarchy::default();
        let a = mem.allocate(16);
        mem.write_f64(a, 1.0);
        let checks = vec![Check {
            addr: a,
            expected: 2.0,
            tolerance: 0.0,
        }];
        let err = validate(&mem, &checks).unwrap_err();
        assert!(err.contains("expected 2"));
    }

    #[test]
    fn every_workload_builds_a_nonempty_kernel() {
        for w in all_workloads() {
            let mut mem = MemoryHierarchy::default();
            let setup = w.build(&mut mem, &VectorContext::with_mvl(16));
            assert!(
                !setup.kernel.is_empty(),
                "{} built an empty kernel",
                w.name()
            );
            assert!(
                !setup.checks.is_empty(),
                "{} has no output checks",
                w.name()
            );
            assert!(setup.strips >= 1);
        }
    }
}
