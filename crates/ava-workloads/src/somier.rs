//! Somier: spring–mass physics simulation (structured grid relaxation).
//!
//! A memory-bound kernel with low register pressure: every element update
//! reads three neighbouring positions and the velocity and writes the new
//! velocity and position. Only the most extreme grouping factor (LMUL=8,
//! four architectural registers) runs out of registers, matching the paper's
//! observation that spill/swap operations appear only for RG-LMUL8 / AVA X8
//! (§V, Figure 3-e).
//!
//! Two flavours share the kernel body:
//!
//! * [`Somier::new`] — the single-step kernel of the paper's Figure 3 grid
//!   (positions carry a read-only halo; outputs are interior-only).
//! * [`Somier::relaxation`] — the solver-loop body for
//!   [`Composite::iterated`]: the position output grows the same halo as
//!   the input (the kernel copies the fixed boundary through), so
//!   `xout → x` and `vout → v` carry links are size-compatible and the
//!   body can ping-pong across iterations.
//!
//! [`Composite::iterated`]: crate::Composite::iterated

use ava_compiler::KernelBuilder;
use ava_isa::VectorContext;
use ava_memory::MemoryHierarchy;

use crate::data::DataGen;
use crate::layout::{materialize_input, BufferBindings, DataLayout, PlannedLayout};
use crate::{Check, OutputValues, Workload, WorkloadSetup};

/// The Somier workload.
#[derive(Debug, Clone, Copy)]
pub struct Somier {
    nodes: usize,
    dt: f64,
    spring_k: f64,
    /// Whether `xout` carries the boundary halo (copied through from `x`),
    /// making the position output the same shape as the position input —
    /// the property an iterated carry link needs.
    halo_outputs: bool,
}

impl Somier {
    /// Creates a 1-D chain of `nodes` masses connected by springs.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 4, "need at least a few interior nodes");
        Self {
            nodes,
            dt: 0.001,
            spring_k: 4.0,
            halo_outputs: false,
        }
    }

    /// The relaxation-step flavour: like [`Somier::new`], but `xout` is
    /// declared with the same halo as `x` and the kernel copies the two
    /// boundary elements through unchanged. The resulting body is closed
    /// under iteration — `xout → x` and `vout → v` are size-compatible
    /// carry links for [`Composite::iterated`], modelling a fixed-boundary
    /// spring relaxation swept to convergence.
    ///
    /// [`Composite::iterated`]: crate::Composite::iterated
    #[must_use]
    pub fn relaxation(nodes: usize) -> Self {
        Self {
            halo_outputs: true,
            ..Self::new(nodes)
        }
    }
}

impl Default for Somier {
    fn default() -> Self {
        Self::new(2048)
    }
}

impl Workload for Somier {
    fn name(&self) -> &'static str {
        "somier"
    }

    fn domain(&self) -> &'static str {
        "Physics Simulation (Dense Linear Algebra)"
    }

    fn elements(&self) -> usize {
        // Three neighbour reads, the force computation and two writes per
        // node.
        self.nodes * 12
    }

    fn data_layout(&self) -> DataLayout {
        let mut l = DataLayout::new();
        // Positions include one halo element on each side so the interior
        // update never reads out of bounds.
        l.input("x", self.nodes + 2);
        l.input("v", self.nodes);
        if self.halo_outputs {
            l.output("xout", self.nodes + 2);
        } else {
            l.output("xout", self.nodes);
        }
        l.output("vout", self.nodes);
        l
    }

    fn build_with_bindings(
        &self,
        mem: &mut MemoryHierarchy,
        ctx: &VectorContext,
        plan: &PlannedLayout,
        bindings: &BufferBindings,
    ) -> WorkloadSetup {
        let n = self.nodes;
        let mut gen = DataGen::for_workload(self.name());
        let x = materialize_input(mem, plan, bindings, "x", || {
            gen.uniform_vec(n + 2, -1.0, 1.0)
        });
        let v = materialize_input(mem, plan, bindings, "v", || gen.uniform_vec(n, -0.1, 0.1));
        let a_x = plan.addr("x");
        let a_v = plan.addr("v");
        let a_xout = plan.addr("xout");
        let a_vout = plan.addr("vout");
        // With halo outputs the interior of `xout` starts one element in,
        // mirroring the interior of `x`.
        let xout_off = if self.halo_outputs { 8 } else { 0 };

        let mvl = ctx.effective_mvl();
        let mut b = KernelBuilder::new("somier");
        // vsetvlmax preamble: splats must cover the full register whatever
        // VL a previously-run kernel left behind.
        b.set_vl(mvl);
        // The spring constant and time step stay in vector registers for the
        // whole kernel, as the RiVEC source keeps its splatted coefficients.
        let c_k = b.vsplat(self.spring_k);
        let c_dt = b.vsplat(self.dt);
        let mut strips = 0u64;
        if self.halo_outputs {
            // The fixed boundary passes through: two single-element strips
            // copy the halo positions so the output array is a complete
            // next-iteration input.
            b.set_vl(1);
            let left = b.vload(a_x);
            b.vstore(left, a_xout);
            let right = b.vload(a_x + (8 * (n + 1)) as u64);
            b.vstore(right, a_xout + (8 * (n + 1)) as u64);
            strips += 2;
        }
        let mut i = 0usize;
        while i < n {
            let vl = mvl.min(n - i);
            b.set_vl(vl);
            // Interior node j = i + 1 .. i + vl (positions are offset by the
            // left halo element).
            let off_center = (8 * (i + 1)) as u64;
            let xl = b.vload(a_x + off_center - 8);
            let xc = b.vload(a_x + off_center);
            let xr = b.vload(a_x + off_center + 8);
            // Spring force: F = k * (x[l] + x[r] - 2 x[c]).
            let sum_lr = b.vfadd(xl, xr);
            let f = b.vfmadd(xc, -2.0, sum_lr);
            let force = b.vfmul(f, c_k);
            // Velocity and position update (explicit Euler).
            let vv = b.vload(a_v + (8 * i) as u64);
            let vnew = b.vfmadd(force, c_dt, vv);
            let xnew = b.vfmadd(vnew, c_dt, xc);
            b.vstore(vnew, a_vout + (8 * i) as u64);
            b.vstore(xnew, a_xout + xout_off + (8 * i) as u64);
            strips += 1;
            i += vl;
        }

        let mut checks = Vec::with_capacity(2 * n + 2);
        let mut vouts = Vec::with_capacity(n);
        let mut xouts = Vec::with_capacity(n + 2);
        if self.halo_outputs {
            xouts.push(x[0]);
            checks.push(Check {
                addr: a_xout,
                expected: x[0],
                tolerance: 0.0,
            });
        }
        for j in 0..n {
            let force = self.spring_k * (-2.0f64).mul_add(x[j + 1], x[j] + x[j + 2]);
            let vnew = force.mul_add(self.dt, v[j]);
            let xnew = vnew.mul_add(self.dt, x[j + 1]);
            checks.push(Check {
                addr: a_vout + (8 * j) as u64,
                expected: vnew,
                tolerance: 1e-12,
            });
            checks.push(Check {
                addr: a_xout + xout_off + (8 * j) as u64,
                expected: xnew,
                tolerance: 1e-12,
            });
            vouts.push(vnew);
            xouts.push(xnew);
        }
        if self.halo_outputs {
            xouts.push(x[n + 1]);
            checks.push(Check {
                addr: a_xout + (8 * (n + 1)) as u64,
                expected: x[n + 1],
                tolerance: 0.0,
            });
        }

        WorkloadSetup {
            kernel: b.finish(),
            checks,
            strips,
            outputs: vec![
                OutputValues {
                    name: "xout".to_string(),
                    base: a_xout,
                    values: xouts,
                },
                OutputValues {
                    name: "vout".to_string(),
                    base: a_vout,
                    values: vouts,
                },
            ],
            warm_ranges: plan.warm_ranges(bindings),
            phase_marks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_fits_lmul4_but_not_lmul8() {
        let mut mem = MemoryHierarchy::default();
        let setup = Somier::new(256).build(&mut mem, &VectorContext::with_mvl(16));
        let p = setup.kernel.max_pressure();
        assert!(
            p > 4 && p <= 8,
            "somier pressure should exceed the LMUL8 budget but fit LMUL4, got {p}"
        );
    }

    #[test]
    fn kernel_is_memory_heavy() {
        let mut mem = MemoryHierarchy::default();
        let setup = Somier::new(256).build(&mut mem, &VectorContext::with_mvl(16));
        let mem_ops = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Memory)
            .count();
        let arith = setup
            .kernel
            .instrs
            .iter()
            .filter(|i| i.kind() == ava_isa::InstrKind::Arithmetic)
            .count();
        assert!(mem_ops > arith, "memory {mem_ops} vs arithmetic {arith}");
    }

    #[test]
    fn checks_cover_positions_and_velocities() {
        let mut mem = MemoryHierarchy::default();
        let setup = Somier::new(64).build(&mut mem, &VectorContext::with_mvl(32));
        assert_eq!(setup.checks.len(), 128);
        assert_eq!(setup.strips, 2);
    }

    #[test]
    fn relaxation_outputs_close_over_the_inputs() {
        // The relaxation flavour's xout mirrors x (halo included) so carry
        // links are size-compatible; the interior update is unchanged.
        let w = Somier::relaxation(64);
        let layout = w.data_layout();
        assert_eq!(
            layout.get("xout").unwrap().elems,
            layout.get("x").unwrap().elems
        );
        assert_eq!(
            layout.get("vout").unwrap().elems,
            layout.get("v").unwrap().elems
        );

        let mut mem = MemoryHierarchy::default();
        let setup = w.build(&mut mem, &VectorContext::with_mvl(32));
        // 2 checks per node plus the two halo pass-throughs; 2 extra
        // single-element halo strips.
        assert_eq!(setup.checks.len(), 2 * 64 + 2);
        assert_eq!(setup.strips, 4);

        // Interior values equal the single-step flavour's; the halo passes
        // through unchanged.
        let mut mem2 = MemoryHierarchy::default();
        let plain = Somier::new(64).build(&mut mem2, &VectorContext::with_mvl(32));
        let xout = setup.output("xout");
        assert_eq!(xout.values.len(), 66);
        assert_eq!(&xout.values[1..65], plain.output("xout").values.as_slice());
        assert_eq!(setup.output("vout").values, plain.output("vout").values);
        let mut gen = DataGen::for_workload("somier");
        let x = gen.uniform_vec(66, -1.0, 1.0);
        assert_eq!(xout.values[0], x[0]);
        assert_eq!(xout.values[65], x[65]);
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn tiny_chains_are_rejected() {
        let _ = Somier::new(2);
    }
}
