//! The data-layout planning layer of the two-step workload protocol.
//!
//! Workloads no longer allocate their arrays imperatively while generating
//! code. Instead every workload first *declares* its named input/output
//! buffers ([`DataLayout`], step 1), a shared [`ArenaPlanner`] places them in
//! the simulated address space, and only then does the workload generate its
//! IR and golden reference against the resolved [`PlannedLayout`] (step 2,
//! [`Workload::build_with_bindings`]).
//!
//! The split is what makes *dataflow composites* expressible: a pipelined
//! composite can bind one phase's declared output buffer to the next phase's
//! declared input — the consumer then skips generating its own input data,
//! computes its golden reference over the producer's reference values
//! ([`BufferBindings`]), and reads the producer's real output at run time.
//! The planner also becomes the single source of truth for cache warm-up
//! ranges, replacing the hand-maintained whole-region warming.
//!
//! [`Workload::build_with_bindings`]: crate::Workload::build_with_bindings

use std::collections::BTreeMap;

use ava_memory::MemoryHierarchy;

/// How a workload uses a declared buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRole {
    /// Read-only input data (bindable in a pipelined composite).
    Input,
    /// Output written by the kernel (exposable to a downstream phase).
    Output,
    /// Read *and* written in place (bindable and exposable; e.g. Axpy's `y`).
    InOut,
    /// Input data the workload derives internally from its other inputs
    /// (e.g. ParticleFilter's gather-index buffer, computed from the
    /// positions): planned and warmed like an input, but neither bindable
    /// nor exposable — `Composite::pipelined` rejects links onto it at
    /// construction.
    Internal,
}

impl BufferRole {
    /// Whether a pipelined composite may bind this buffer to an upstream
    /// phase's output.
    #[must_use]
    pub fn is_bindable(self) -> bool {
        matches!(self, BufferRole::Input | BufferRole::InOut)
    }

    /// Whether a downstream phase may consume this buffer as its input.
    #[must_use]
    pub fn is_exposable(self) -> bool {
        matches!(self, BufferRole::Output | BufferRole::InOut)
    }
}

/// One declared buffer: a name, a size in `f64` elements and a role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpec {
    /// Buffer name, unique within one workload's layout ("x", "vout", ...).
    pub name: String,
    /// Size in 8-byte elements.
    pub elems: usize,
    /// How the kernel uses the buffer.
    pub role: BufferRole,
}

/// The declared data layout of a workload: its named buffers, in the order
/// they should be placed (placement order is part of the contract — it fixes
/// the simulated addresses and therefore the cache behaviour).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataLayout {
    /// Declared buffers in placement order.
    pub buffers: Vec<BufferSpec>,
}

impl DataLayout {
    /// An empty layout to be filled with the `declare_*` methods.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: impl Into<String>, elems: usize, role: BufferRole) {
        let name = name.into();
        assert!(elems > 0, "buffer {name} must have at least one element");
        assert!(
            !self.buffers.iter().any(|b| b.name == name),
            "duplicate buffer name {name}"
        );
        self.buffers.push(BufferSpec { name, elems, role });
    }

    /// Declares an input buffer of `elems` elements.
    pub fn input(&mut self, name: impl Into<String>, elems: usize) {
        self.declare(name, elems, BufferRole::Input);
    }

    /// Declares an output buffer of `elems` elements.
    pub fn output(&mut self, name: impl Into<String>, elems: usize) {
        self.declare(name, elems, BufferRole::Output);
    }

    /// Declares an in-place input/output buffer of `elems` elements.
    pub fn inout(&mut self, name: impl Into<String>, elems: usize) {
        self.declare(name, elems, BufferRole::InOut);
    }

    /// Declares an internally-derived buffer of `elems` elements (planned
    /// and warmed, but not bindable or exposable).
    pub fn internal(&mut self, name: impl Into<String>, elems: usize) {
        self.declare(name, elems, BufferRole::Internal);
    }

    /// The declared buffer named `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&BufferSpec> {
        self.buffers.iter().find(|b| b.name == name)
    }
}

/// A declared buffer with its resolved base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBuffer {
    /// The declared spec.
    pub spec: BufferSpec,
    /// Base address in the simulated address space.
    pub base: u64,
}

impl PlannedBuffer {
    /// Size of the buffer in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.spec.elems * 8) as u64
    }

    /// Address range `[base, base + bytes)` of the buffer.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.base, self.base + self.bytes())
    }
}

/// A workload's declared layout after placement by the [`ArenaPlanner`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlannedLayout {
    buffers: Vec<PlannedBuffer>,
}

impl PlannedLayout {
    /// All planned buffers, in placement order.
    #[must_use]
    pub fn buffers(&self) -> &[PlannedBuffer] {
        &self.buffers
    }

    /// Feeds this layout's full identity — buffer names, sizes, roles and
    /// resolved base addresses, in placement order — into a result-store
    /// fingerprint. Any change that moves or resizes a buffer changes the
    /// simulated cache behaviour, so it must change the fingerprint too.
    pub fn fingerprint(&self, h: &mut crate::fingerprint::Fingerprint) {
        h.write_u64(self.buffers.len() as u64);
        for b in &self.buffers {
            h.write_str(&b.spec.name);
            h.write_u64(b.spec.elems as u64);
            h.write_u64(match b.spec.role {
                BufferRole::Input => 0,
                BufferRole::Output => 1,
                BufferRole::InOut => 2,
                BufferRole::Internal => 3,
            });
            h.write_u64(b.base);
        }
    }

    /// The planned buffer named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no buffer of that name was declared.
    #[must_use]
    pub fn buffer(&self, name: &str) -> &PlannedBuffer {
        self.buffers
            .iter()
            .find(|b| b.spec.name == name)
            .unwrap_or_else(|| panic!("no buffer named {name:?} in the planned layout"))
    }

    /// Base address of the buffer named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no buffer of that name was declared.
    #[must_use]
    pub fn addr(&self, name: &str) -> u64 {
        self.buffer(name).base
    }

    /// Extracts the sub-layout whose buffer names start with `prefix`,
    /// stripping the prefix (used by composites, whose union layout prefixes
    /// each phase's buffers with `p{i}.`).
    #[must_use]
    pub fn subset(&self, prefix: &str) -> PlannedLayout {
        PlannedLayout {
            buffers: self
                .buffers
                .iter()
                .filter_map(|b| {
                    b.spec.name.strip_prefix(prefix).map(|name| PlannedBuffer {
                        spec: BufferSpec {
                            name: name.to_string(),
                            elems: b.spec.elems,
                            role: b.spec.role,
                        },
                        base: b.base,
                    })
                })
                .collect(),
        }
    }

    /// Cache warm-up ranges for this layout: every buffer's address range
    /// except the buffers named in `bindings` — a bound input buffer is a
    /// dead placeholder (the kernel's accesses to it are rebased onto the
    /// upstream phase's output), so warming it would only pollute the cache.
    #[must_use]
    pub fn warm_ranges(&self, bindings: &BufferBindings) -> Vec<(u64, u64)> {
        self.buffers
            .iter()
            .filter(|b| !bindings.is_bound(&b.spec.name))
            .map(PlannedBuffer::range)
            .collect()
    }
}

/// The shared allocator of the planning step: turns declared [`DataLayout`]s
/// into [`PlannedLayout`]s by placing every buffer in the hierarchy's bump
/// allocator, in declaration order. One planner instance serves a whole
/// run (a composite plans all its phases through the same planner), so the
/// full set of planned ranges is known in one place.
#[derive(Debug, Default)]
pub struct ArenaPlanner {
    planned: Vec<(u64, u64)>,
}

impl ArenaPlanner {
    /// A fresh planner with no placements.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Places every declared buffer of `layout` in `mem`'s allocator, in
    /// declaration order, and returns the resolved layout.
    pub fn plan(&mut self, mem: &mut MemoryHierarchy, layout: &DataLayout) -> PlannedLayout {
        let buffers = layout
            .buffers
            .iter()
            .map(|spec| {
                let base = mem.allocate((spec.elems * 8) as u64);
                self.planned.push((base, base + (spec.elems * 8) as u64));
                PlannedBuffer {
                    spec: spec.clone(),
                    base,
                }
            })
            .collect();
        PlannedLayout { buffers }
    }

    /// Every range `[start, end)` this planner has placed, in placement
    /// order.
    #[must_use]
    pub fn planned_ranges(&self) -> &[(u64, u64)] {
        &self.planned
    }
}

/// Externally-bound input buffers of one `build_with_bindings` call: for
/// each bound input name, the *reference* values the upstream phase leaves
/// in the buffer the input is rebased onto. A bound input generates no data
/// of its own — its golden reference is computed over these values, chaining
/// the scalar models across phases.
#[derive(Debug, Clone, Default)]
pub struct BufferBindings {
    values: BTreeMap<String, Vec<f64>>,
}

impl BufferBindings {
    /// No bindings: every input generates its own data (the classic
    /// stand-alone build).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Binds the input named `name` to the given upstream reference values.
    pub fn bind(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.values.insert(name.into(), values);
    }

    /// Whether the input named `name` is bound.
    #[must_use]
    pub fn is_bound(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// The bound reference values for `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.values.get(name).map(Vec::as_slice)
    }
}

/// Materialises one input buffer of a planned layout: a bound input returns
/// the upstream reference values (the data already lives — or will live, by
/// the time this phase runs — at the address the kernel is rebased onto,
/// which is the *binder's* responsibility to arrange); an unbound input
/// generates its data with `gen` and writes it into the functional memory
/// at the planned address.
///
/// The generator closure is invoked (and its output discarded) even for a
/// bound input, so a workload's shared random stream stays at the same
/// position for every later buffer — the phase's remaining unbound inputs
/// receive exactly the data a stand-alone run would, and a pipelined-vs-
/// independent comparison differs only in the bound buffers.
///
/// # Panics
///
/// Panics if a bound value vector does not match the declared buffer size,
/// or if the buffer's role is not bindable.
pub fn materialize_input(
    mem: &mut MemoryHierarchy,
    plan: &PlannedLayout,
    bindings: &BufferBindings,
    name: &str,
    gen: impl FnOnce() -> Vec<f64>,
) -> Vec<f64> {
    let buf = plan.buffer(name);
    if let Some(bound) = bindings.get(name) {
        assert!(
            buf.spec.role.is_bindable(),
            "buffer {name:?} has role {:?} and cannot be bound",
            buf.spec.role
        );
        assert_eq!(
            bound.len(),
            buf.spec.elems,
            "binding for {name:?} carries {} values but the buffer holds {} elements",
            bound.len(),
            buf.spec.elems
        );
        let _ = gen();
        return bound.to_vec();
    }
    let values = gen();
    assert_eq!(
        values.len(),
        buf.spec.elems,
        "generated {} values for {name:?} but the buffer holds {} elements",
        values.len(),
        buf.spec.elems
    );
    mem.memory_mut().write_f64_slice(buf.base, &values);
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> DataLayout {
        let mut l = DataLayout::new();
        l.input("x", 16);
        l.inout("y", 16);
        l.output("z", 8);
        l
    }

    #[test]
    fn planner_places_buffers_in_declaration_order() {
        let mut mem = MemoryHierarchy::default();
        let mut planner = ArenaPlanner::new();
        let plan = planner.plan(&mut mem, &layout());
        assert!(plan.addr("x") < plan.addr("y"));
        assert!(plan.addr("y") < plan.addr("z"));
        assert_eq!(plan.buffer("z").bytes(), 64);
        assert_eq!(planner.planned_ranges().len(), 3);
    }

    #[test]
    fn warm_ranges_skip_bound_inputs() {
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &layout());
        let mut bindings = BufferBindings::none();
        bindings.bind("x", vec![0.0; 16]);
        let warm = plan.warm_ranges(&bindings);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm[0], plan.buffer("y").range());
    }

    #[test]
    fn materialize_writes_generated_data_but_not_bound_data() {
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &layout());
        let mut bindings = BufferBindings::none();
        bindings.bind("y", vec![7.0; 16]);
        let x = materialize_input(&mut mem, &plan, &bindings, "x", || vec![3.0; 16]);
        let mut gen_ran = false;
        let y = materialize_input(&mut mem, &plan, &bindings, "y", || {
            // The generator still runs (its draws keep the shared random
            // stream aligned with a stand-alone build) but is discarded.
            gen_ran = true;
            vec![9.0; 16]
        });
        assert_eq!(x, vec![3.0; 16]);
        assert_eq!(y, vec![7.0; 16]);
        assert!(gen_ran);
        assert_eq!(mem.read_f64(plan.addr("x")), 3.0);
        // Bound inputs are not written: the upstream phase's run produces
        // the real data at the rebased address.
        assert_eq!(mem.read_f64(plan.addr("y")), 0.0);
    }

    #[test]
    fn binding_does_not_shift_the_stream_for_later_buffers() {
        use crate::data::DataGen;
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &layout());

        // Stand-alone: both buffers draw from one stream.
        let mut gen = DataGen::from_seed(42);
        let _x_alone = gen.uniform_vec(16, 0.0, 1.0);
        let y_alone = gen.uniform_vec(16, 0.0, 1.0);

        // With "x" bound, "y" must still receive the second draw block.
        let mut bindings = BufferBindings::none();
        bindings.bind("x", vec![0.5; 16]);
        let mut gen = DataGen::from_seed(42);
        let _ = materialize_input(&mut mem, &plan, &bindings, "x", || {
            gen.uniform_vec(16, 0.0, 1.0)
        });
        let y = materialize_input(&mut mem, &plan, &bindings, "y", || {
            gen.uniform_vec(16, 0.0, 1.0)
        });
        assert_eq!(y, y_alone);
    }

    #[test]
    fn subset_strips_the_phase_prefix() {
        let mut union = DataLayout::new();
        union.input("p0.x", 4);
        union.output("p0.y", 4);
        union.input("p1.x", 4);
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &union);
        let p1 = plan.subset("p1.");
        assert_eq!(p1.buffers().len(), 1);
        assert_eq!(p1.addr("x"), plan.addr("p1.x"));
    }

    #[test]
    #[should_panic(expected = "duplicate buffer name")]
    fn duplicate_names_are_rejected() {
        let mut l = DataLayout::new();
        l.input("x", 4);
        l.input("x", 8);
    }

    #[test]
    #[should_panic(expected = "cannot be bound")]
    fn binding_an_output_is_rejected() {
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &layout());
        let mut bindings = BufferBindings::none();
        bindings.bind("z", vec![0.0; 8]);
        let _ = materialize_input(&mut mem, &plan, &bindings, "z", || vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "carries 4 values")]
    fn size_mismatched_bindings_are_rejected() {
        let mut mem = MemoryHierarchy::default();
        let plan = ArenaPlanner::new().plan(&mut mem, &layout());
        let mut bindings = BufferBindings::none();
        bindings.bind("x", vec![0.0; 4]);
        let _ = materialize_input(&mut mem, &plan, &bindings, "x", || unreachable!());
    }
}
